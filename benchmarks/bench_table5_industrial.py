"""E7 — Table V: industrial circuits, Simulated Annealing vs DNN-Opt.

Reproduces the paper's protocol: start at the designer nominal, prune to
critical devices with sensitivity analysis (Eq. 7), optimize with
``stop_when_feasible`` and report simulations to meet all constraints.
The expected shape — DNN-Opt needs substantially fewer simulations than
the SA baseline on every circuit — should hold at any scale.
"""

from repro.experiments import run_industrial_comparison

from _shared import bench_scale


def test_bench_table5_industrial(benchmark):
    result = benchmark.pedantic(
        lambda: run_industrial_comparison(scale=bench_scale()),
        rounds=1, iterations=1)
    print("\n" + result["table"])

    def sims_value(label: str, column: int) -> float:
        row = next(r for r in result["rows"] if r[0] == label)
        text = row[column]
        return float(text[1:]) if text.startswith(">") else float(text)

    wins = sum(1 for label in ("Inverter Chain", "Level Shifter", "LDO", "CTLE")
               if sims_value(label, 4) <= sims_value(label, 3))
    assert wins >= 3, "DNN-Opt should beat SA on (almost) every industrial circuit"
