"""SPICE hot-path benchmark: compiled stamping plans vs the legacy restamp loop.

Times the full folded-cascode evaluation loop (DC operating points, AC sweep,
CMRR/PSRR spurs, noise, settling transient — exactly what every optimizer
query pays for) and the StrongARM latch transient testbench, once with the
legacy per-device restamp path ("before") and once with the compiled
stamping plans ("after").  Alongside wall-clock sims/sec it reports Newton
iterations/sec and AC solves/sec from the process-global hot-path counters
(:mod:`repro.spice.profile`), plus the per-sim assemble/solve split.

    PYTHONPATH=src python benchmarks/bench_spice_hotpath.py            # full
    PYTHONPATH=src python benchmarks/bench_spice_hotpath.py --quick    # CI smoke

Results are written to ``BENCH_spice.json`` (override with ``--out``) so the
perf trajectory is tracked across PRs.  ``--check BASELINE.json`` turns the
run into a regression gate: it fails when the measured plan-vs-legacy
*speedup ratio* drops more than 30% below the committed baseline's ratio.
The ratio — not absolute sims/sec — is the guarded metric because absolute
throughput varies wildly across host machines while both modes share the
same host in one run.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from time import perf_counter

from repro.circuits import FoldedCascodeOTA, StrongArmLatch
from repro.spice import profile, stamping

#: fraction of the baseline speedup the measured speedup must retain.
#: The folded-cascode loop (the acceptance metric) is timing-stable across
#: repeated runs; the StrongARM entry is one long transient per rep and
#: shows occasional 1.5x-2.6x swings even on an idle host, so it gets a
#: looser floor that still catches a real (2x-class) regression.
REGRESSION_FLOOR = {"folded_cascode": 0.7, "strongarm_latch": 0.5}


def time_mode(circuit, params: dict, reps: int, mode: str) -> dict:
    """sims/sec and hot-path counter rates for ``reps`` measure() calls.

    ``sims_per_sec`` comes from the *best* rep (classic anti-noise
    benchmarking: a scheduler hiccup can only slow a rep down, never speed
    it up), so the CI gate tolerates noisy shared runners; counter rates
    average over the whole window.
    """
    with stamping(mode):
        circuit.measure(params)  # warm-up: page caches, lazy plan build
        before = profile.snapshot()
        rep_seconds = []
        for _ in range(reps):
            t0 = perf_counter()
            circuit.measure(params)
            rep_seconds.append(perf_counter() - t0)
        delta = profile.delta(before)
    elapsed = sum(rep_seconds)
    best = min(rep_seconds)
    return {
        "reps": reps,
        "seconds_per_sim": best,
        "seconds_per_sim_mean": elapsed / reps,
        "sims_per_sec": 1.0 / best,
        "newton_iterations_per_sec": delta["newton_iterations"] / elapsed,
        "ac_solves_per_sec": delta["ac_solves"] / elapsed,
        "assemble_s_per_sim": delta["assemble_s"] / reps,
        "solve_s_per_sim": delta["solve_s"] / reps,
        "ac_solve_s_per_sim": delta["ac_solve_s"] / reps,
    }


def bench_circuit(circuit, params: dict, reps: int) -> dict:
    before = time_mode(circuit, params, reps, "legacy")
    after = time_mode(circuit, params, reps, "plan")
    return {
        "before": before,
        "after": after,
        "speedup_sims_per_sec": after["sims_per_sec"] / before["sims_per_sec"],
    }


def run(quick: bool) -> dict:
    fc_reps, latch_reps = (3, 2) if quick else (6, 3)
    results = {
        "benchmark": "bench_spice_hotpath",
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "metric_note": ("'speedup_sims_per_sec' (plan vs legacy on one host) is "
                        "the machine-portable guarded metric; absolute "
                        "sims/sec values are host-dependent."),
    }
    fc = FoldedCascodeOTA()
    print(f"folded-cascode evaluation loop ({fc_reps} reps/mode)...", flush=True)
    results["folded_cascode"] = bench_circuit(fc, fc.nominal(), fc_reps)
    latch = StrongArmLatch()
    print(f"StrongARM latch testbench ({latch_reps} reps/mode)...", flush=True)
    results["strongarm_latch"] = bench_circuit(latch, latch.nominal(), latch_reps)
    results["speedup"] = results["folded_cascode"]["speedup_sims_per_sec"]
    return results


def report(results: dict) -> None:
    for name in ("folded_cascode", "strongarm_latch"):
        entry = results[name]
        before, after = entry["before"], entry["after"]
        print(f"\n{name}:")
        print(f"  before (legacy): {before['sims_per_sec']:8.2f} sims/s  "
              f"{before['newton_iterations_per_sec']:10.0f} newton-iters/s  "
              f"{before['ac_solves_per_sec']:8.0f} ac-solves/s")
        print(f"  after  (plan):   {after['sims_per_sec']:8.2f} sims/s  "
              f"{after['newton_iterations_per_sec']:10.0f} newton-iters/s  "
              f"{after['ac_solves_per_sec']:8.0f} ac-solves/s")
        print(f"  speedup: {entry['speedup_sims_per_sec']:.2f}x   "
              f"(assemble {after['assemble_s_per_sim'] * 1e3:.1f} ms/sim, "
              f"solve {after['solve_s_per_sim'] * 1e3:.1f} ms/sim)")


def check_against(results: dict, baseline_path: Path) -> int:
    baseline = json.loads(baseline_path.read_text())
    failures = 0
    for name in ("folded_cascode", "strongarm_latch"):
        base = baseline.get(name, {}).get("speedup_sims_per_sec")
        if base is None:
            continue
        floor = REGRESSION_FLOOR[name] * base
        measured = results[name]["speedup_sims_per_sec"]
        verdict = "ok" if measured >= floor else "REGRESSION"
        print(f"check {name}: speedup {measured:.2f}x vs baseline {base:.2f}x "
              f"(floor {floor:.2f}x) -> {verdict}")
        if measured < floor:
            failures += 1
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small rep counts for the CI perf smoke")
    parser.add_argument("--out", default="BENCH_spice.json",
                        help="where to write the results JSON")
    parser.add_argument("--check", metavar="BASELINE",
                        help="fail if the speedup regresses >30%% vs this "
                             "committed baseline JSON")
    args = parser.parse_args(argv)

    results = run(args.quick)
    report(results)
    out_path = Path(args.out)
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {out_path}")

    if args.check:
        failures = check_against(results, Path(args.check))
        if failures:
            print(f"{failures} perf regression(s) vs {args.check}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
