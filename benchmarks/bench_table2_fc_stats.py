"""E2 — Table II: folded-cascode statistics for DE / BO-wEI / GASPAD / DNN-Opt.

Prints the same rows as the paper: success rate, simulations to first
feasible design, min/max/mean power of the final feasible designs, and
modeling/simulation time.  The expected *shape* (DNN-Opt most sample
efficient, DE most simulation hungry, BO modeling time largest) should hold
at any scale; absolute values depend on the substitute simulator.
"""

from repro.experiments import render_stats_table

from _shared import folded_cascode_comparison


def test_bench_table2_folded_cascode(benchmark):
    result = benchmark.pedantic(folded_cascode_comparison, rounds=1, iterations=1)
    table = render_stats_table(result["stats"], objective_label="power (mW)",
                               unit_scale=1e-3,
                               title="Table II: folded-cascode OTA "
                                     f"({result['scale'].label})")
    print("\n" + table)
    stats = result["stats"]
    assert set(stats) == {"DE", "BO-wEI", "GASPAD", "DNN-Opt"}
    # Modeling time ordering: the DNN surrogate must be far cheaper than BO.
    assert stats["DNN-Opt"].mean_modeling_time_s < stats["BO-wEI"].mean_modeling_time_s
