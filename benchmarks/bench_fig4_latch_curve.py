"""E6 — Figure 4: average FoM convergence on the StrongARM latch."""

import numpy as np

from repro.experiments import render_fom_figure

from _shared import latch_comparison


def test_bench_fig4_fom_curves(benchmark):
    result = benchmark.pedantic(latch_comparison, rounds=1, iterations=1)
    curves = result["curves"]
    print("\n" + render_fom_figure(curves, "Figure 4: StrongARM latch average FoM "
                                           "(lower is better)"))
    for curve in curves.values():
        assert np.all(np.diff(curve) <= 1e-9)
