"""Wall-clock benchmark: parallel trials on the folded-cascode comparison.

Measures ``run_trials`` on the FoldedCascodeOTA sizing problem, serial vs
process-pool workers.  Because the bundled SPICE engine is pure CPU-bound
python, the speedup tracks the number of *physical cores*; pass
``--latency MS`` to model an external batch simulator (license queue /
subprocess SPICE), where trials are wait-bound and the pool overlaps the
waits even on a single core.

    PYTHONPATH=src python benchmarks/bench_parallel_speedup.py --workers 4

This is a script, not a pytest module — the timing assertions live in
CHANGES.md as measured notes, not in CI.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.baselines import RandomSearch
from repro.circuits import FoldedCascodeOTA
from repro.core import DNNOpt
from repro.experiments import run_trials
from repro.problems import LatencyProblem


def _factory(kind: str):
    if kind == "dnnopt":
        return lambda p, b, s: DNNOpt(p, b, s, n_init=10, n_elite=6,
                                      critic_epochs=8, actor_epochs=10,
                                      critic_hidden=(32, 32), actor_hidden=(32, 32),
                                      max_pseudo=1500)
    return lambda p, b, s: RandomSearch(p, b, s)


def bench(workers: int, *, budget: int, n_trials: int, latency_ms: float,
          optimizer: str) -> tuple[float, list]:
    def problem_factory():
        problem = FoldedCascodeOTA().problem()
        if latency_ms > 0:
            problem = LatencyProblem(problem, latency_ms / 1e3)
        return problem

    start = time.perf_counter()
    histories = run_trials(_factory(optimizer), problem_factory, budget=budget,
                           n_trials=n_trials, base_seed=0, workers=workers)
    return time.perf_counter() - start, histories


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--budget", type=int, default=30)
    parser.add_argument("--trials", type=int, default=4)
    parser.add_argument("--latency", type=float, default=0.0,
                        help="per-simulation latency in ms (external-sim model)")
    parser.add_argument("--optimizer", choices=["random", "dnnopt"],
                        default="dnnopt")
    args = parser.parse_args()

    common = dict(budget=args.budget, n_trials=args.trials,
                  latency_ms=args.latency, optimizer=args.optimizer)
    t_serial, h_serial = bench(1, **common)
    t_parallel, h_parallel = bench(args.workers, **common)

    identical = all(np.array_equal(a.X, b.X) and np.array_equal(a.F, b.F)
                    for a, b in zip(h_serial, h_parallel))
    print(f"folded-cascode {args.optimizer}, {args.trials} trials x "
          f"budget {args.budget}, latency {args.latency:g} ms/sim")
    print(f"  serial (workers=1):        {t_serial:8.2f} s")
    print(f"  parallel (workers={args.workers}):     {t_parallel:8.2f} s")
    print(f"  speedup:                   {t_serial / t_parallel:8.2f}x")
    print(f"  histories identical:       {identical}")
