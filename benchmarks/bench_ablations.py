"""A1/A2/A3 — ablations of DNN-Opt design choices.

* elite-population size (the paper's population-based search-space control);
* exploration noise and the boundary penalty lambda (Eq. 5-6);
* sensitivity threshold for the industrial recipe (Eq. 7).
"""

import numpy as np

from repro.circuits import LDORegulator
from repro.core import DNNOpt
from repro.experiments import render_table
from repro.problems import ConstrainedSphere
from repro.sensitivity import reduce_problem, sensitivity_analysis

BUDGET = 40
SEEDS = (0,)


def _run_dnnopt(problem, seed, **kw):
    defaults = dict(n_init=10, n_elite=8, critic_epochs=10, actor_epochs=12,
                    max_pseudo=2000)
    defaults.update(kw)
    return DNNOpt(problem, BUDGET, seed, **defaults).run()


def _mean_best_fom(**kw):
    values = [_run_dnnopt(ConstrainedSphere(5), seed, **kw).best_fom
              for seed in SEEDS]
    return float(np.mean(values))


def test_bench_elite_size_ablation(benchmark):
    def run():
        return [(n, _mean_best_fom(n_elite=n)) for n in (4, 8, 16)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + render_table(["n_elite", "mean best FoM"], rows,
                              title="A1: elite-population size"))
    assert all(np.isfinite(v) for _, v in rows)


def test_bench_noise_and_penalty_ablation(benchmark):
    def run():
        rows = []
        for noise in (0.0, 0.1, 0.3):
            rows.append((f"noise={noise}", _mean_best_fom(exploration_noise=noise)))
        for lam in (0.0, 100.0):
            rows.append((f"lambda={lam:g}",
                         _mean_best_fom(boundary_penalty=max(lam, 1e-9))))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + render_table(["setting", "mean best FoM"], rows,
                              title="A2: exploration noise / boundary penalty"))
    assert all(np.isfinite(v) for _, v in rows)


def test_bench_sensitivity_threshold_ablation(benchmark):
    """A3: looser thresholds keep more variables; sims-to-feasible reacts."""
    circuit = LDORegulator()
    problem = circuit.problem()
    nominal = np.array([circuit.nominal()[n] for n in problem.space.names])

    def run():
        sens = sensitivity_analysis(problem, nominal, step=0.1)
        rows = []
        for threshold in (0.01, 0.1, 1.0):
            reduced = reduce_problem(problem, sens, threshold=threshold, min_keep=2)
            history = DNNOpt(reduced, BUDGET, seed=1, n_init=8, n_elite=5,
                             critic_epochs=8, actor_epochs=10, max_pseudo=1000,
                             initial_designs=nominal[reduced.keep_columns][None, :],
                             stop_when_feasible=True).run()
            first = history.evals_to_first_feasible
            rows.append((threshold, reduced.dim,
                         str(first) if first else f">{history.n_evals}"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + render_table(["threshold", "kept vars", "sims to feasible"], rows,
                              title="A3: sensitivity threshold (LDO)"))
    dims = [dim for _, dim, _ in rows]
    assert dims == sorted(dims, reverse=True), "higher threshold keeps fewer vars"
