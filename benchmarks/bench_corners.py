"""Scenario subsystem benchmark: gating savings + parallel corner fan-out.

Two figures of merit for :class:`~repro.scenarios.CornerProblem`:

* **gating_sims_ratio** — simulations a full 4-corner fan-out would cost
  divided by what the adaptive gate actually spends on a seeded
  ``ConstrainedSphere`` run (nominal-first screening; only promising
  designs fan out).  Deterministic — seeded optimizer, exact counter —
  so CI can guard it tightly.
* **parallel_vs_serial** — wall-clock speedup of the same corner fan-out
  on a 4-worker thread engine over the serial engine, measured on a
  latency-modeled problem (the external-simulator regime where dispatch
  overlap, not CPU count, sets throughput).  The fan-out submits every
  corner batch before gathering any, so corners of a design overlap.

    PYTHONPATH=src python benchmarks/bench_corners.py
    PYTHONPATH=src python benchmarks/bench_corners.py --quick

Results go to ``BENCH_corners.json`` (override with ``--out``); ``--check
BASELINE.json`` fails when either metric drops more than 40% below the
committed baseline's.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.baselines import RandomSearch
from repro.core import EvalEngine, Study
from repro.problems import ConstrainedSphere, LatencyProblem, Sphere
from repro.scenarios import CornerProblem, ScenarioSet

#: fraction of the baseline a measured metric must retain.
REGRESSION_FLOOR = 0.6


def bench_gating(budget: int) -> tuple[float, dict]:
    """Sims spent by the adaptive gate vs an ungated full fan-out."""
    scenarios = ScenarioSet.typical()
    problem = CornerProblem(ConstrainedSphere(4), scenarios,
                            gate_margin=0.5, gate_warmup=8)
    with EvalEngine() as engine:
        history = Study(RandomSearch(problem, budget, seed=0),
                        engine=engine).run()
        spent = int(engine.counters_snapshot()["n_sim_calls"])
    stats = history.summary()["scenarios"]
    full = budget * len(scenarios)  # every design at every corner
    assert spent == budget + stats["corner_sims"]
    return round(full / spent, 3), {
        "designs": budget,
        "full_fanout_sims": full,
        "gated_sims": spent,
        "sims_saved": stats["corner_sims_saved"],
        "gated_designs": stats["gated"],
    }


def bench_parallel(batch: int, latency_ms: float, workers: int) -> tuple[float, dict]:
    """Wall-clock: corner fan-out on a thread engine vs the serial engine."""
    scenarios = ScenarioSet.typical()
    rng = np.random.default_rng(0)

    def timed(backend_kwargs) -> float:
        problem = CornerProblem(LatencyProblem(Sphere(4), latency_ms / 1e3),
                                scenarios)
        X = problem.space.sample(rng, batch)
        with EvalEngine(**backend_kwargs) as engine:
            t0 = perf_counter()
            engine.evaluate_batch(problem, X)
            return perf_counter() - t0

    serial_s = timed({})
    parallel_s = timed({"backend": "thread", "workers": workers})
    return round(serial_s / parallel_s, 3), {
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "corner_sims": batch * len(scenarios),
    }


def run(args) -> dict:
    gating_ratio, gating = bench_gating(args.budget)
    print(f"  gating: {gating['gated_sims']} sims vs "
          f"{gating['full_fanout_sims']} full fan-out "
          f"({gating['sims_saved']} saved) -> {gating_ratio:.2f}x")
    parallel_ratio, parallel = bench_parallel(args.batch, args.latency,
                                              args.workers)
    print(f"  fan-out: serial {parallel['serial_s']:.3f} s vs "
          f"{args.workers}-worker thread {parallel['parallel_s']:.3f} s "
          f"-> {parallel_ratio:.2f}x")
    return {
        "host": {"machine": platform.machine(),
                 "python": platform.python_version(), "cpus": os.cpu_count()},
        "config": {"budget": args.budget, "batch": args.batch,
                   "latency_ms": args.latency, "workers": args.workers,
                   "quick": args.quick},
        "results": {"gating": gating, "parallel": parallel},
        "speedup": {"gating_sims_ratio": gating_ratio,
                    "parallel_vs_serial": parallel_ratio},
    }


def check(report: dict, baseline_path: str) -> int:
    baseline = json.loads(Path(baseline_path).read_text())
    failures = 0
    for name in ("gating_sims_ratio", "parallel_vs_serial"):
        floor = REGRESSION_FLOOR * baseline["speedup"][name]
        got = report["speedup"][name]
        status = "ok" if got >= floor else "REGRESSION"
        print(f"  check {name}: {got:.2f}x vs floor {floor:.2f}x "
              f"(baseline {baseline['speedup'][name]:.2f}x) -> {status}")
        if got < floor:
            failures += 1
    if failures:
        print(f"FAIL: {failures} scenario metric(s) below the baseline floor")
        return 1
    print("scenario gating + fan-out within baseline envelope")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", type=int, default=64,
                        help="designs for the gating run")
    parser.add_argument("--batch", type=int, default=24,
                        help="designs per wall-clock fan-out phase")
    parser.add_argument("--latency", type=float, default=20.0,
                        help="modeled per-evaluation latency in ms")
    parser.add_argument("--workers", type=int, default=4,
                        help="thread-engine workers for the parallel phase")
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke")
    parser.add_argument("--out", default="BENCH_corners.json")
    parser.add_argument("--check", metavar="BASELINE.json",
                        help="fail if a metric regresses vs this baseline")
    args = parser.parse_args()
    if args.quick:
        args.budget, args.batch, args.latency = 48, 12, 10.0

    print(f"corners: {args.budget}-design gated run + "
          f"{args.batch}x4-corner fan-out at {args.latency:g} ms latency")
    report = run(args)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.check:
        sys.exit(check(report, args.check))
