"""Shared state for the benchmark suite.

The Table II / Figure 3 pair (and Table IV / Figure 4) are two views of the
same multi-trial experiment; this module caches the comparison so the data
is produced once per pytest session.  Scales are the smoke defaults unless
``REPRO_FULL=1``.
"""

from __future__ import annotations

import functools
import os

from repro.circuits import FoldedCascodeOTA, StrongArmLatch
from repro.experiments import ExperimentScale, run_building_block_comparison


def bench_scale() -> ExperimentScale:
    """Benchmark-suite scale: tiny by default, paper-scale with REPRO_FULL=1."""
    if os.environ.get("REPRO_FULL") == "1":
        return ExperimentScale(n_trials=10, budget=500, de_budget=10_000,
                               industrial_budget=200, sa_budget=1200)
    return ExperimentScale(n_trials=2, budget=50, de_budget=150,
                           industrial_budget=60, sa_budget=150)


def bench_workers() -> int:
    """Trial-level parallelism knob: ``REPRO_WORKERS=N`` (default serial).

    Results are worker-count independent (per-trial seeding); only
    wall-clock changes, so set it to the machine's core count for the
    paper-scale ``REPRO_FULL=1`` runs.
    """
    return max(1, int(os.environ.get("REPRO_WORKERS", "1")))


def bench_pipeline() -> int:
    """Per-trial ask/tell pipelining knob: ``REPRO_PIPELINE=D`` (default 1).

    Unlike ``REPRO_WORKERS`` this *may* change trajectories — pipelined
    proposals condition on a slightly stale archive — so it stays at 1 (the
    paper protocol) unless a throughput run explicitly opts in.
    """
    return max(1, int(os.environ.get("REPRO_PIPELINE", "1")))


@functools.lru_cache(maxsize=1)
def folded_cascode_comparison():
    return run_building_block_comparison(FoldedCascodeOTA, scale=bench_scale(),
                                         workers=bench_workers(),
                                         pipeline_depth=bench_pipeline())


@functools.lru_cache(maxsize=1)
def latch_comparison():
    scale = bench_scale()
    if os.environ.get("REPRO_FULL") != "1":
        # The latch simulates ~3x slower; trim the smoke run further.
        scale = ExperimentScale(n_trials=1, budget=40, de_budget=100,
                                industrial_budget=scale.industrial_budget,
                                sa_budget=scale.sa_budget)
    return run_building_block_comparison(StrongArmLatch, scale=scale,
                                         workers=bench_workers(),
                                         pipeline_depth=bench_pipeline())
