"""E4 — Table III: StrongARM latch design parameters and ranges."""

from repro.circuits import StrongArmLatch
from repro.experiments import run_parameter_table


def test_bench_table3_parameter_ranges(benchmark):
    table = benchmark(run_parameter_table, StrongArmLatch())
    print("\n" + table)
    assert "CL_finger" in table
