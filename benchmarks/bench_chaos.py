"""Hedged re-dispatch benchmark: tail latency under an injected straggler.

Runs the same fleet workload twice against 2 in-process workers, one of
them behind a :class:`~repro.core.chaos.ChaosProxy` that delays every
second eval reply (the deterministic straggler model — a shard whose
simulator intermittently stalls), and compares chunk-completion tail
latency:

* **no hedging** — a straggling chunk is simply waited out; its delay
  lands in the tail of the latency distribution;
* **hedging** (``hedge_factor``) — a chunk in flight past the straggler
  threshold is speculatively re-dispatched to the healthy host; the first
  reply wins and the delayed duplicate is discarded.

The figure of merit is ``no_hedge_vs_hedged_p99``: p99 chunk latency
without hedging over p99 with hedging.  Hedging should cut the tail by
roughly ``delay / (threshold + eval)``; a broken hedge path (never fires,
fires on the same host, loses the first-reply race) drags the ratio
towards 1.0.

    PYTHONPATH=src python benchmarks/bench_chaos.py
    PYTHONPATH=src python benchmarks/bench_chaos.py --quick

Results go to ``BENCH_chaos.json`` (override with ``--out``); ``--check
BASELINE.json`` fails when the measured ratio drops more than 50% below
the committed baseline's.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.core.chaos import ChaosProxy, FaultPlan, FaultSpec
from repro.core.fleet import FleetCoordinator
from repro.core.service import EvalWorkerServer
from repro.problems import LatencyProblem, Sphere

#: fraction of the baseline ratio a measured ratio must retain.
REGRESSION_FLOOR = 0.5


def run_phase(worker_address, healthy_address, problem, rounds, *,
              args, hedge: bool) -> dict:
    """One measured phase: fresh straggler proxy, fresh coordinator.

    Every reply through the proxy is delayed (the faulted shard *is* the
    straggler), and each round is followed by a settle sleep slightly
    longer than the delay so the stale replies drain and the straggler's
    slots are free again — every measured round then exposes the tail to
    the straggler instead of accidentally bypassing a host whose slots are
    still blocked on the previous round's delays.
    """
    from time import sleep
    plan = FaultPlan([FaultSpec("delay", every=1, delay_s=args.delay)])
    kwargs = dict(hosts=None, poll_interval=0.05)
    if hedge:
        kwargs.update(hedge_factor=args.hedge_factor,
                      hedge_min_s=args.hedge_min_s)
    settle = args.delay + 0.2
    with ChaosProxy(worker_address, plan) as proxy:
        kwargs["hosts"] = [proxy.address, healthy_address]
        with FleetCoordinator(**kwargs) as fleet:
            engine = fleet.engine("bench")
            n_skip = 0
            t0 = perf_counter()
            for i, X in enumerate(rounds):
                if i == args.warmup:
                    n_skip = len(fleet.chunk_latencies())
                engine.evaluate_batch(problem, X)
                sleep(settle)
            wall = perf_counter() - t0
            latencies = fleet.chunk_latencies()[n_skip:]
            stats = fleet.stats()
            engine.close()
    return {
        "wall_s": round(wall, 4),
        "chunks": len(latencies),
        "p50_s": round(float(np.percentile(latencies, 50)), 4),
        "p99_s": round(float(np.percentile(latencies, 99)), 4),
        "hedges": stats["hedges"],
        "hedge_discards": stats["hedge_discards"],
        "requeues": stats["requeues"],
        "delays_fired": plan.fired.get("delay", 0),
    }


def run(args) -> dict:
    problem = LatencyProblem(Sphere(6), args.latency / 1e3)
    rng = np.random.default_rng(0)
    # Distinct designs per phase/round: the workers persist across phases,
    # so any reuse would be answered from their caches for free.
    phases = [[problem.space.sample(rng, args.batch)
               for _ in range(args.rounds)] for _ in range(2)]

    servers, threads = [], []
    for _ in range(2):
        server = EvalWorkerServer(port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append(server)
        threads.append(thread)
    try:
        plain = run_phase(servers[0].address, servers[1].address, problem,
                          phases[0], args=args, hedge=False)
        hedged = run_phase(servers[0].address, servers[1].address, problem,
                           phases[1], args=args, hedge=True)
    finally:
        for server in servers:
            server.close()
        for thread in threads:
            thread.join(timeout=5)

    ratio = round(plain["p99_s"] / hedged["p99_s"], 3)
    print(f"  no hedging: p99 {plain['p99_s']:6.3f} s  "
          f"(p50 {plain['p50_s']:6.3f} s, {plain['chunks']} chunks)")
    print(f"  hedging:    p99 {hedged['p99_s']:6.3f} s  "
          f"(p50 {hedged['p50_s']:6.3f} s, {hedged['hedges']} hedges, "
          f"{hedged['hedge_discards']} discards)")
    print(f"  no_hedge_vs_hedged_p99: {ratio:.2f}x")
    return {
        "host": {"machine": platform.machine(),
                 "python": platform.python_version(), "cpus": os.cpu_count()},
        "config": {"batch": args.batch, "rounds": args.rounds,
                   "warmup": args.warmup, "latency_ms": args.latency,
                   "delay_s": args.delay, "hedge_factor": args.hedge_factor,
                   "hedge_min_s": args.hedge_min_s, "quick": args.quick},
        "results": {"no_hedge": plain, "hedged": hedged},
        "speedup": {"no_hedge_vs_hedged_p99": ratio},
    }


def check(report: dict, baseline_path: str) -> int:
    baseline = json.loads(Path(baseline_path).read_text())
    name = "no_hedge_vs_hedged_p99"
    floor = REGRESSION_FLOOR * baseline["speedup"][name]
    got = report["speedup"][name]
    status = "ok" if got >= floor else "REGRESSION"
    print(f"  check {name}: {got:.2f}x vs floor {floor:.2f}x "
          f"(baseline {baseline['speedup'][name]:.2f}x) -> {status}")
    if got < floor:
        print(f"FAIL: {name} {got:.2f}x below floor {floor:.2f}x")
        return 1
    print("hedged tail latency within baseline envelope")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch", type=int, default=8,
                        help="designs per round (small: stragglers must be "
                             "hedgeable, not buried in a saturated queue)")
    parser.add_argument("--rounds", type=int, default=8,
                        help="sequential batches per phase")
    parser.add_argument("--warmup", type=int, default=3,
                        help="rounds excluded from the latency window "
                             "(hedging arms on observed latencies)")
    parser.add_argument("--latency", type=float, default=10.0,
                        help="modeled per-evaluation latency in ms")
    parser.add_argument("--delay", type=float, default=0.8,
                        help="injected straggler delay per faulted reply (s)")
    parser.add_argument("--hedge-factor", type=float, default=2.0)
    parser.add_argument("--hedge-min-s", type=float, default=0.1)
    parser.add_argument("--quick", action="store_true",
                        help="smaller rounds for CI smoke")
    parser.add_argument("--out", default="BENCH_chaos.json")
    parser.add_argument("--check", metavar="BASELINE.json",
                        help="fail if the ratio regresses vs this baseline")
    args = parser.parse_args()
    if args.quick:
        args.batch, args.rounds, args.warmup = 6, 5, 2
        args.latency, args.delay = 5.0, 0.6

    print(f"chaos: {args.rounds} x {args.batch} designs, "
          f"{args.latency:g} ms evals, straggler delay {args.delay:g} s "
          f"on every faulted-host reply, hedging off vs on")
    report = run(args)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.check:
        sys.exit(check(report, args.check))
