"""E3 — Figure 3: average FoM convergence on the folded-cascode OTA."""

import os

import numpy as np

from repro.experiments import curve_table, render_fom_figure, render_table

from _shared import folded_cascode_comparison


def test_bench_fig3_fom_curves(benchmark):
    result = benchmark.pedantic(folded_cascode_comparison, rounds=1, iterations=1)
    curves = result["curves"]
    print("\n" + render_fom_figure(curves, "Figure 3: folded-cascode average FoM "
                                           "(lower is better)"))
    rows = curve_table(curves, stride=max(1, len(next(iter(curves.values()))) // 10))
    print(render_table(["n_sims"] + list(curves), rows, title="FoM samples"))
    for name, curve in curves.items():
        assert np.all(np.diff(curve) <= 1e-9), f"{name} curve must be non-increasing"
    dnn = curves["DNN-Opt"]
    assert dnn[-1] < dnn[0], "DNN-Opt must improve over its initial samples"
    if os.environ.get("REPRO_FULL") == "1":
        # The paper's shape claim needs the full protocol; at smoke scale
        # (2 trials, budget 50) the ranking between the model-based methods
        # is within noise.
        final = {name: curve[-1] for name, curve in curves.items()}
        assert final["DNN-Opt"] <= min(final["BO-wEI"], final["GASPAD"]) + 0.25
