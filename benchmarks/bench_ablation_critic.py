"""E8 — critic-accuracy ablation (the paper's Bayesmark study, Section II-B).

The paper reports that the 2d-input critic trained on pseudo-samples is
significantly more accurate than a d-input network trained on the raw
archive.  We reproduce the study on the synthetic suite: both models are
asked to predict f(x + dx) for fresh displacements; the d-input model can
only evaluate at the anchor x, which is exactly the handicap Eq. 2 removes.
"""

import numpy as np

from repro.core import Critic, generate_pseudo_samples
from repro.experiments import render_table
from repro.nn import MLP, Adam, StandardScaler, Tensor, mse_loss
from repro.problems import Ackley, Hartmann6, Rosenbrock, Sphere

PROBLEMS = {"sphere": Sphere, "rosenbrock": Rosenbrock,
            "ackley": Ackley, "hartmann6": Hartmann6}
N_ARCHIVE = 40
N_TEST = 200


def _fit_plain_net(Xn, Yn, rng):
    """d-input baseline: same capacity/epochs, raw samples only."""
    net = MLP(Xn.shape[1], Yn.shape[1], (64, 64), rng=rng)
    scaler = StandardScaler()
    targets = scaler.fit_transform(Yn)
    optimizer = Adam(net.parameters(), lr=1e-3)
    for _ in range(200):
        prediction = net(Tensor(Xn))
        loss = mse_loss(prediction, Tensor(targets))
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return lambda X: scaler.inverse_transform(net.predict(X))


def _rmse_pair(problem_cls, seed):
    problem = problem_cls() if problem_cls is not Hartmann6 else Hartmann6()
    rng = np.random.default_rng(seed)
    space = problem.space
    X = space.sample(rng, N_ARCHIVE)
    Xn = space.normalize(X)
    Yn = problem.normalize(problem.evaluate_batch(X))

    critic = Critic(space.dim, Yn.shape[1], epochs=40, rng=rng)
    inputs, targets = generate_pseudo_samples(Xn, Yn, rng=rng, max_pairs=4000)
    critic.fit(inputs, targets)
    plain = _fit_plain_net(Xn, Yn, rng)

    anchors = space.normalize(space.sample(rng, N_TEST))
    moves = rng.uniform(-0.15, 0.15, size=anchors.shape)
    displaced = np.clip(anchors + moves, 0.0, 1.0)
    truth = problem.normalize(problem.evaluate_batch(space.denormalize(displaced)))

    rmse_critic = float(np.sqrt(np.mean(
        (critic.predict(anchors, displaced - anchors) - truth) ** 2)))
    # The d-input baseline is queried directly at the displaced point; the
    # critic's edge comes from the N^2 pseudo-sample augmentation (Eq. 2),
    # not from hiding information from the baseline.
    rmse_plain = float(np.sqrt(np.mean((plain(displaced) - truth) ** 2)))
    return rmse_critic, rmse_plain


def run_ablation():
    rows = []
    for name, cls in PROBLEMS.items():
        pairs = [_rmse_pair(cls, seed=seed) for seed in (0, 1)]
        rmse_critic = float(np.mean([p[0] for p in pairs]))
        rmse_plain = float(np.mean([p[1] for p in pairs]))
        rows.append((name, rmse_critic, rmse_plain, rmse_plain / max(rmse_critic, 1e-12)))
    return rows


def test_bench_critic_ablation(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print("\n" + render_table(
        ["problem", "2d critic RMSE", "d-input RMSE", "plain/critic ratio"],
        rows, title="Critic ablation: pseudo-samples + (x, dx) input "
                    "vs plain d-input network (see EXPERIMENTS.md E8)"))
    # Reproduction finding: on smooth low-d synthetics the two are comparable
    # (the paper's Bayesmark advantage does not clearly reproduce here); the
    # critic must at least stay in the same accuracy class.
    comparable = sum(1 for _, rc, rp, _ in rows if rc <= 1.5 * rp)
    assert comparable >= 3, "the 2d critic must be competitive with the d-input net"
