"""E5 — Table IV: StrongARM latch statistics for the four algorithms."""

from repro.experiments import render_stats_table

from _shared import latch_comparison


def test_bench_table4_strongarm_latch(benchmark):
    result = benchmark.pedantic(latch_comparison, rounds=1, iterations=1)
    table = render_stats_table(result["stats"], objective_label="power (uW)",
                               unit_scale=1e-6,
                               title="Table IV: StrongARM latch "
                                     f"({result['scale'].label})")
    print("\n" + table)
    assert set(result["stats"]) == {"DE", "BO-wEI", "GASPAD", "DNN-Opt"}
