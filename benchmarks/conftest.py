"""Make the benchmark helpers importable and show printed tables."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
