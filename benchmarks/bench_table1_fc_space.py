"""E1 — Table I: folded-cascode design parameters and ranges."""

from repro.circuits import FoldedCascodeOTA
from repro.experiments import run_parameter_table


def test_bench_table1_parameter_ranges(benchmark):
    table = benchmark(run_parameter_table, FoldedCascodeOTA())
    print("\n" + table)
    assert "W1" in table and "MCAP" in table and "Cf" in table
