"""Multi-tenant fleet benchmark: aggregate throughput under fair sharing.

Times a latency-modeled batch (each evaluation sleeps ``--latency`` ms —
the external-simulator model where dispatch overlap, not CPU count, sets
throughput) through one :class:`~repro.core.fleet.FleetCoordinator` over
2 locally-spawned worker processes, twice:

* **single tenant** — one Study-sized batch from one engine, the PR-5
  fixed-fleet setup;
* **two tenants** — the same total number of designs split across two
  concurrent engines, scheduled by the weighted deficit round-robin.

The figure of merit is ``two_tenant_vs_single``: aggregate two-tenant
sims/sec over single-tenant sims/sec.  Fair chunk interleaving costs only
scheduling overhead, so the ratio should stay near 1.0 — a scheduler that
serializes tenants (or thrashes the connections) drags it down.

    PYTHONPATH=src python benchmarks/bench_fleet.py
    PYTHONPATH=src python benchmarks/bench_fleet.py --quick

Results go to ``BENCH_fleet.json`` (override with ``--out``); ``--check
BASELINE.json`` fails when the measured ratio drops more than 40% below
the committed baseline's.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import threading
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.core.fleet import FleetCoordinator
from repro.core.service import spawn_local_worker
from repro.problems import LatencyProblem, Sphere

#: fraction of the baseline ratio a measured ratio must retain.
REGRESSION_FLOOR = 0.6


def time_single_tenant(fleet, problem, X) -> float:
    """Wall seconds for one tenant evaluating the whole batch."""
    engine = fleet.engine("bench-single")
    try:
        t0 = perf_counter()
        engine.evaluate_batch(problem, X)
        return perf_counter() - t0
    finally:
        engine.close()


def time_two_tenants(fleet, problem, X_a, X_b) -> float:
    """Wall seconds for two concurrent tenants sharing the fleet."""
    engine_a = fleet.engine("bench-a")
    engine_b = fleet.engine("bench-b")
    barrier = threading.Barrier(3)

    def tenant(engine, X):
        barrier.wait()
        engine.evaluate_batch(problem, X)

    threads = [threading.Thread(target=tenant, args=(engine_a, X_a)),
               threading.Thread(target=tenant, args=(engine_b, X_b))]
    for thread in threads:
        thread.start()
    barrier.wait()
    t0 = perf_counter()
    for thread in threads:
        thread.join()
    elapsed = perf_counter() - t0
    engine_a.close()
    engine_b.close()
    return elapsed


def run(args) -> dict:
    problem = LatencyProblem(Sphere(6), args.latency / 1e3)
    rng = np.random.default_rng(0)
    # Distinct designs per phase: the worker processes persist across the
    # phases, so reuse would be answered from their caches for free.
    X_single = problem.space.sample(rng, args.batch)
    X_a = problem.space.sample(rng, args.batch // 2)
    X_b = problem.space.sample(rng, args.batch - args.batch // 2)

    procs = []
    try:
        hosts = []
        for _ in range(args.shards):
            proc, host = spawn_local_worker()
            procs.append(proc)
            hosts.append(host)
        with FleetCoordinator(hosts=hosts) as fleet:
            single_s = time_single_tenant(fleet, problem, X_single)
            two_s = time_two_tenants(fleet, problem, X_a, X_b)
            requeues = fleet.stats()["requeues"]
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()

    single_rate = args.batch / single_s
    two_rate = args.batch / two_s
    ratio = round(two_rate / single_rate, 3)
    print(f"  single tenant: {single_s:7.3f} s  ({single_rate:8.1f} sims/s)")
    print(f"  two tenants:   {two_s:7.3f} s  ({two_rate:8.1f} sims/s aggregate)")
    print(f"  two_tenant_vs_single: {ratio:.2f}x  (requeues: {requeues})")
    return {
        "host": {"machine": platform.machine(),
                 "python": platform.python_version(), "cpus": os.cpu_count()},
        "config": {"batch": args.batch, "latency_ms": args.latency,
                   "shards": args.shards, "quick": args.quick},
        "results": {"single_tenant_s": round(single_s, 4),
                    "two_tenant_s": round(two_s, 4),
                    "single_sims_per_sec": round(single_rate, 2),
                    "two_tenant_sims_per_sec": round(two_rate, 2),
                    "requeues": requeues},
        "speedup": {"two_tenant_vs_single": ratio},
    }


def check(report: dict, baseline_path: str) -> int:
    baseline = json.loads(Path(baseline_path).read_text())
    name = "two_tenant_vs_single"
    floor = REGRESSION_FLOOR * baseline["speedup"][name]
    got = report["speedup"][name]
    status = "ok" if got >= floor else "REGRESSION"
    print(f"  check {name}: {got:.2f}x vs floor {floor:.2f}x "
          f"(baseline {baseline['speedup'][name]:.2f}x) -> {status}")
    if got < floor:
        print(f"FAIL: {name} {got:.2f}x below floor {floor:.2f}x")
        return 1
    print("fleet multi-tenant throughput within baseline envelope")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch", type=int, default=64,
                        help="total designs per phase")
    parser.add_argument("--latency", type=float, default=20.0,
                        help="modeled per-evaluation latency in ms")
    parser.add_argument("--shards", type=int, default=2,
                        help="local worker server processes")
    parser.add_argument("--quick", action="store_true",
                        help="small batch for CI smoke")
    parser.add_argument("--out", default="BENCH_fleet.json")
    parser.add_argument("--check", metavar="BASELINE.json",
                        help="fail if the ratio regresses vs this baseline")
    args = parser.parse_args()
    if args.quick:
        args.batch, args.latency = 32, 10.0

    print(f"fleet: batch {args.batch} x {args.latency:g} ms latency, "
          f"{args.shards} workers, 1 vs 2 tenants")
    report = run(args)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.check:
        sys.exit(check(report, args.check))
