"""Pipelined vs. barrier dispatch benchmark for the Study driver.

Measures what the ask/tell inversion bought: with ``Study(pipeline_depth=2)``
the optimizer's *proposal* work overlaps the batch in flight on the engine,
so one iteration costs ``max(ask, eval)`` instead of ``ask + eval``.

Two measurements:

* **latency-modeled** (guarded) — a proposer that sleeps ``--ask-latency``
  per batch (standing in for actor/critic retraining) over a problem that
  sleeps ``--latency`` per evaluation (the external-simulator model), on the
  async backend.  Both sides are wait-bound, so the measured *ratio* is
  machine-portable, like ``BENCH_service.json``; the ideal is 2.0x when the
  two latencies match.
* **DNN-Opt** (reported, not guarded) — the real optimizer with its real
  retraining cost on the same latency-modeled problem.  The ratio depends
  on how fast this host trains the networks, so it is informative only.

Pipelined proposals may condition on a one-batch-stale archive; the bench
asserts the recorded histories still *replay* — every row equals the
deterministic evaluation of its design — and that the latency-modeled
(stateless) histories are bit-identical across modes.

    PYTHONPATH=src python benchmarks/bench_pipeline.py
    PYTHONPATH=src python benchmarks/bench_pipeline.py --quick

Results go to ``BENCH_pipeline.json`` (override with ``--out``); ``--check
BASELINE.json`` fails when the pipelined-vs-barrier speedup drops more than
40% below the committed baseline — a driver that stops overlapping (lost
submit/gather path, serialized pipeline) shows up immediately.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.core import DNNOpt, EvalEngine, Optimizer, Study
from repro.problems import LatencyProblem, Sphere

#: fraction of the baseline speedup a measured speedup must retain.
REGRESSION_FLOOR = 0.6


class SlowProposer(Optimizer):
    """Latency-modeled asker: every batch costs a fixed proposal delay.

    Stands in for any model-based optimizer whose retraining dominates its
    ask — proposals themselves are random (independent of pending tells),
    so histories are bit-identical at any pipeline depth and the bench can
    assert correctness alongside the timing.
    """

    name = "SlowProposer"

    def __init__(self, problem, budget, seed=0, *, ask_latency_s=0.05,
                 batch=8, engine=None):
        super().__init__(problem, budget, seed, engine=engine)
        self.ask_latency_s = float(ask_latency_s)
        self.batch = int(batch)

    def _ask(self, k):
        time.sleep(self.ask_latency_s)
        count = self.batch if k is None else k
        return np.vstack([self.problem.space.sample(self.rng, 1)
                          for _ in range(count)])


def time_study(make_optimizer, make_engine, depth: int):
    """Wall-clock one full study run; returns (seconds, history)."""
    with make_engine() as engine:
        optimizer = make_optimizer(engine)
        study = Study(optimizer, pipeline_depth=depth)
        t0 = perf_counter()
        history = study.run()
        return perf_counter() - t0, history


def run(args) -> dict:
    problem = LatencyProblem(Sphere(6), args.latency / 1e3)
    make_engine = lambda: EvalEngine("async", workers=args.batch, cache_size=0)

    # -- latency-modeled proposer (the guarded, portable ratio) ------------
    make_proposer = lambda engine: SlowProposer(
        problem, args.budget, seed=0, ask_latency_s=args.ask_latency / 1e3,
        batch=args.batch, engine=engine)
    barrier_s, h_barrier = time_study(make_proposer, make_engine, depth=1)
    pipelined_s, h_pipelined = time_study(make_proposer, make_engine, depth=2)
    identical = (np.array_equal(h_barrier.X, h_pipelined.X)
                 and np.array_equal(h_barrier.F, h_pipelined.F))
    replays = bool(np.array_equal(problem.evaluate_batch(h_pipelined.X),
                                  h_pipelined.F))
    speedup = barrier_s / pipelined_s
    print(f"  modeled  barrier  : {barrier_s:7.3f} s")
    print(f"  modeled  pipelined: {pipelined_s:7.3f} s  ({speedup:.2f}x, "
          f"ideal {(args.ask_latency + args.latency) / max(args.ask_latency, args.latency):.2f}x)")
    print(f"  histories identical across modes: {identical}; replay ok: {replays}")

    # -- real DNN-Opt retraining overlapped with modeled sim latency -------
    dnn = {}
    if not args.skip_dnnopt:
        make_dnn = lambda engine: DNNOpt(
            problem, args.dnn_budget, seed=0, n_init=2 * args.batch,
            batch_size=args.batch, critic_epochs=8, actor_epochs=8,
            critic_hidden=(32, 32), actor_hidden=(32, 32), max_pseudo=2000,
            engine=engine)
        dnn_barrier_s, hd1 = time_study(make_dnn, make_engine, depth=1)
        dnn_pipelined_s, hd2 = time_study(make_dnn, make_engine, depth=2)
        dnn_replays = bool(np.array_equal(problem.evaluate_batch(hd2.X), hd2.F))
        dnn = {
            "dnnopt_barrier_s": round(dnn_barrier_s, 4),
            "dnnopt_pipelined_s": round(dnn_pipelined_s, 4),
            "dnnopt_speedup": round(dnn_barrier_s / dnn_pipelined_s, 3),
            "dnnopt_replays": dnn_replays,
        }
        print(f"  DNN-Opt  barrier  : {dnn_barrier_s:7.3f} s")
        print(f"  DNN-Opt  pipelined: {dnn_pipelined_s:7.3f} s  "
              f"({dnn['dnnopt_speedup']:.2f}x); replay ok: {dnn_replays}")

    return {
        "host": {"machine": platform.machine(), "python": platform.python_version(),
                 "cpus": os.cpu_count()},
        "config": {"budget": args.budget, "batch": args.batch,
                   "latency_ms": args.latency, "ask_latency_ms": args.ask_latency,
                   "dnn_budget": args.dnn_budget, "quick": args.quick},
        "results": {"barrier_s": round(barrier_s, 4),
                    "pipelined_s": round(pipelined_s, 4), **dnn},
        "speedup": {"pipelined_vs_barrier": round(speedup, 3)},
        "identical": identical,
        "replays": replays,
    }


def check(report: dict, baseline_path: str) -> int:
    baseline = json.loads(Path(baseline_path).read_text())
    failures = []
    if not report["identical"]:
        failures.append("pipelined history diverged from barrier history")
    if not report["replays"]:
        failures.append("pipelined history does not replay to its evaluations")
    floor = REGRESSION_FLOOR * baseline["speedup"]["pipelined_vs_barrier"]
    got = report["speedup"]["pipelined_vs_barrier"]
    status = "ok" if got >= floor else "REGRESSION"
    print(f"  check pipelined_vs_barrier: {got:.2f}x vs floor {floor:.2f}x "
          f"(baseline {baseline['speedup']['pipelined_vs_barrier']:.2f}x) -> {status}")
    if got < floor:
        failures.append(f"pipelined_vs_barrier {got:.2f}x below floor {floor:.2f}x")
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print("pipelined dispatch speedup within baseline envelope")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", type=int, default=64,
                        help="simulations per latency-modeled study")
    parser.add_argument("--batch", type=int, default=8,
                        help="designs per ask batch (= async pool size)")
    parser.add_argument("--latency", type=float, default=60.0,
                        help="modeled per-evaluation latency in ms")
    parser.add_argument("--ask-latency", type=float, default=60.0,
                        help="modeled per-batch proposal latency in ms")
    parser.add_argument("--dnn-budget", type=int, default=48,
                        help="simulations for the DNN-Opt measurement")
    parser.add_argument("--skip-dnnopt", action="store_true",
                        help="only run the guarded latency-modeled ratio")
    parser.add_argument("--quick", action="store_true",
                        help="small budgets for CI smoke")
    parser.add_argument("--out", default="BENCH_pipeline.json")
    parser.add_argument("--check", metavar="BASELINE.json",
                        help="fail if the speedup regresses vs this baseline")
    args = parser.parse_args()
    if args.quick:
        args.budget, args.latency, args.ask_latency = 32, 40.0, 40.0
        args.dnn_budget = 32

    print(f"pipeline dispatch: budget {args.budget}, batch {args.batch}, "
          f"{args.latency:g} ms/eval + {args.ask_latency:g} ms/ask")
    report = run(args)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.check:
        sys.exit(check(report, args.check))
