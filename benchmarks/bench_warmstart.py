"""Warm-start transfer + persistent-cache benchmark.

Measures the two things PR 5 bought:

* **evals-to-donor-best, cold vs warm** (guarded) — a donor DNN-Opt run
  leaves its archive; a warm-started DNN-Opt (same problem, new seed)
  must re-find a design at least as good as the donor's best in
  measurably fewer *fresh* simulations than a cold run with the same
  seed.  The warm run tells the donor archive before its first ask, so
  its critic/actor start pre-trained on the donor data and its LHS block
  disappears.  Counts are fully seeded (no wall clock), so the ratio is
  deterministic on a given numpy/BLAS stack.
* **disk-cache hit-rate on rerun** (guarded, boolean) — the same study
  rerun against the same ``cache_dir`` with a fresh engine must answer
  every design from disk (zero simulations) with a bit-identical history.

    PYTHONPATH=src python benchmarks/bench_warmstart.py
    PYTHONPATH=src python benchmarks/bench_warmstart.py --check BENCH_warmstart.json

Results go to ``BENCH_warmstart.json`` (override with ``--out``);
``--check BASELINE.json`` fails when the cold/warm speedup drops more
than 60% below the committed baseline, when the warm run stops beating
the cold run outright, or when the disk-cache rerun stops being free.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.baselines import RandomSearch
from repro.core import DNNOpt, EvalEngine, Study, WarmStart
from repro.problems import ConstrainedSphere

#: fraction of the baseline speedup a measured speedup must retain.  The
#: eval counts are seeded, but actor/critic training crosses BLAS, so tiny
#: float differences can shift a proposal — keep the floor generous.
REGRESSION_FLOOR = 0.4


def make_dnnopt(problem, budget, seed):
    return DNNOpt(problem, budget, seed, n_init=12, n_elite=6,
                  critic_epochs=6, actor_epochs=6, critic_hidden=(24, 24),
                  actor_hidden=(24, 24), max_pseudo=1000)


def evals_to_target(history, target: float) -> int | None:
    """1-based count of *fresh* evaluations until the running best of the
    fresh rows reaches ``target`` (donor knowledge does not count)."""
    fresh = history.fom[history.n_warm:]
    reached = np.nonzero(np.minimum.accumulate(fresh) <= target)[0]
    return int(reached[0]) + 1 if len(reached) else None


def run(args) -> dict:
    problem_factory = lambda: ConstrainedSphere(args.dim)

    # -- donor --------------------------------------------------------------
    donor = Study(make_dnnopt(problem_factory(), args.donor_budget,
                              args.donor_seed)).run()
    target = donor.best_fom
    print(f"  donor: {donor.n_evals} evals, best FoM {target:.6f}")

    # -- cold vs warm -------------------------------------------------------
    cold = Study(make_dnnopt(problem_factory(), args.budget, args.seed)).run()
    cold_evals = evals_to_target(cold, target)
    warm_engine = EvalEngine("serial")
    warm = Study(make_dnnopt(problem_factory(), args.budget, args.seed),
                 engine=warm_engine,
                 warm_start=WarmStart.from_history(donor)).run()
    warm_evals = evals_to_target(warm, target)
    # the donor archive itself must never be re-simulated
    fresh_sims = warm.engine_stats["misses"]
    over = args.budget + 1
    speedup = (cold_evals or over) / (warm_evals or over)
    print(f"  cold: evals-to-donor-best {cold_evals} "
          f"(best {cold.best_fom:.6f})")
    print(f"  warm: evals-to-donor-best {warm_evals} "
          f"(best {warm.best_fom:.6f}, n_warm {warm.n_warm}, "
          f"fresh sims {fresh_sims})  -> {speedup:.2f}x fewer")

    # -- disk-cache rerun ---------------------------------------------------
    cache_dir = tempfile.mkdtemp(prefix="bench_warmstart_cache_")
    try:
        make_rs = lambda: RandomSearch(problem_factory(), args.cache_budget, 3)
        with EvalEngine(cache_dir=cache_dir) as e1:
            h1 = Study(make_rs(), engine=e1).run()
        with EvalEngine(cache_dir=cache_dir) as e2:
            h2 = Study(make_rs(), engine=e2).run()
        rerun = dict(h2.engine_stats)
        identical = bool(np.array_equal(h1.X, h2.X)
                         and np.array_equal(h1.F, h2.F))
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    print(f"  disk rerun: misses {rerun['misses']}, disk hits "
          f"{rerun['disk_hits']}/{args.cache_budget}, identical: {identical}")

    return {
        "host": {"machine": platform.machine(),
                 "python": platform.python_version(), "cpus": os.cpu_count()},
        "config": {"dim": args.dim, "donor_budget": args.donor_budget,
                   "budget": args.budget, "cache_budget": args.cache_budget,
                   "donor_seed": args.donor_seed, "seed": args.seed},
        "results": {
            "donor_best_fom": target,
            "cold_evals_to_donor_best": cold_evals,
            "warm_evals_to_donor_best": warm_evals,
            "warm_fresh_simulations": fresh_sims,
            "disk_rerun_misses": rerun["misses"],
            "disk_rerun_hits": rerun["disk_hits"],
            "disk_rerun_identical": identical,
        },
        "speedup": {"cold_vs_warm_evals": round(speedup, 3)},
    }


def check(report: dict, baseline_path: str) -> int:
    baseline = json.loads(Path(baseline_path).read_text())
    results = report["results"]
    failures = []
    if results["warm_evals_to_donor_best"] is None:
        failures.append("warm run never reached the donor best FoM")
    elif (results["cold_evals_to_donor_best"] is not None
          and results["warm_evals_to_donor_best"]
          > results["cold_evals_to_donor_best"]):
        failures.append("warm start needs MORE fresh evals than a cold run")
    floor = REGRESSION_FLOOR * baseline["speedup"]["cold_vs_warm_evals"]
    got = report["speedup"]["cold_vs_warm_evals"]
    status = "ok" if got >= floor else "REGRESSION"
    print(f"  check cold_vs_warm_evals: {got:.2f}x vs floor {floor:.2f}x "
          f"(baseline {baseline['speedup']['cold_vs_warm_evals']:.2f}x) "
          f"-> {status}")
    if got < floor:
        failures.append(f"cold_vs_warm_evals {got:.2f}x below floor {floor:.2f}x")
    if results["disk_rerun_misses"] != 0:
        failures.append("disk-cache rerun paid simulations")
    if results["disk_rerun_hits"] < report["config"]["cache_budget"]:
        failures.append("disk-cache rerun was not fully answered from disk")
    if not results["disk_rerun_identical"]:
        failures.append("disk-cache rerun history diverged")
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print("warm-start transfer + disk cache within baseline envelope")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dim", type=int, default=3)
    parser.add_argument("--donor-budget", type=int, default=40,
                        help="simulations in the donor run")
    parser.add_argument("--budget", type=int, default=80,
                        help="simulations for the cold/warm runs")
    parser.add_argument("--cache-budget", type=int, default=30,
                        help="simulations in the disk-cache rerun study")
    parser.add_argument("--donor-seed", type=int, default=0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--out", default="BENCH_warmstart.json")
    parser.add_argument("--check", metavar="BASELINE.json",
                        help="fail if the transfer win regresses vs this baseline")
    args = parser.parse_args()

    print(f"warm-start transfer: ConstrainedSphere({args.dim}), donor "
          f"{args.donor_budget} evals, cold/warm {args.budget} evals")
    report = run(args)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.check:
        sys.exit(check(report, args.check))
