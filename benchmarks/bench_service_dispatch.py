"""Dispatch benchmark for the evaluation-service backends.

Times one large de-duplicated batch (the engine's post-cache hot path)
through ``serial``, ``thread``, ``async`` and ``remote`` (2 locally-spawned
worker server processes) on a latency-modeled problem: each evaluation
sleeps ``--latency`` ms before computing, the external-simulator model
(license queue, subprocess SPICE, simulation farm RPC) where dispatch
overlap — not CPU count — sets the speedup.  That makes the measured
*ratios* portable across hosts, unlike CPU-bound throughput:

    PYTHONPATH=src python benchmarks/bench_service_dispatch.py
    PYTHONPATH=src python benchmarks/bench_service_dispatch.py --quick

Results are written to ``BENCH_service.json`` (override with ``--out``) so
the dispatch-efficiency trajectory is tracked across PRs.  ``--check
BASELINE.json`` turns the run into a regression gate: it fails when the
measured async-vs-serial or remote-vs-serial speedup drops more than 40%
below the committed baseline's — a dispatcher that stops overlapping the
waits (lost work stealing, serialized chunks) shows up immediately.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.core import EvalEngine
from repro.core.service import spawn_local_worker
from repro.problems import LatencyProblem, Sphere

#: fraction of the baseline speedup a measured speedup must retain.
REGRESSION_FLOOR = 0.6


def time_backend(make_engine, problem, batches: list[np.ndarray]) -> tuple[float, np.ndarray]:
    """Best-of-reps seconds for one full batch dispatch.

    Every rep gets a fresh engine *and* a fresh design batch, so no rep is
    ever answered from a cache — neither the coordinator's nor a persistent
    remote worker's — and the backends stay comparable.
    """
    best, rows = float("inf"), []
    for X in batches:
        with make_engine() as engine:
            t0 = perf_counter()
            rows.append(engine.evaluate_batch(problem, X))
            best = min(best, perf_counter() - t0)
    return best, np.vstack(rows)


def run(args) -> dict:
    problem = LatencyProblem(Sphere(6), args.latency / 1e3)
    batches = [problem.space.sample(np.random.default_rng(rep), args.batch)
               for rep in range(args.reps)]

    procs = []
    try:
        hosts = []
        for _ in range(args.shards):
            proc, host = spawn_local_worker()
            procs.append(proc)
            hosts.append(host)

        backends = {
            "serial": lambda: EvalEngine("serial"),
            "thread": lambda: EvalEngine("thread", workers=args.workers),
            "async": lambda: EvalEngine("async", workers=args.workers),
            "remote": lambda: EvalEngine("remote", hosts=hosts),
        }
        results: dict[str, float] = {}
        reference = None
        identical = True
        for name, make_engine in backends.items():
            seconds, rows = time_backend(make_engine, problem, batches)
            results[f"{name}_s"] = round(seconds, 4)
            if reference is None:
                reference = rows
            else:
                identical = identical and np.array_equal(reference, rows)
            print(f"  {name:>7}: {seconds:7.3f} s  "
                  f"({args.batch / seconds:8.1f} designs/s)")
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()

    speedup = {
        "async_vs_serial": round(results["serial_s"] / results["async_s"], 3),
        "remote_vs_serial": round(results["serial_s"] / results["remote_s"], 3),
        "thread_vs_serial": round(results["serial_s"] / results["thread_s"], 3),
    }
    print(f"  rows identical across backends: {identical}")
    for name, ratio in speedup.items():
        print(f"  {name}: {ratio:.2f}x")
    return {
        "host": {"machine": platform.machine(), "python": platform.python_version(),
                 "cpus": os.cpu_count()},
        "config": {"batch": args.batch, "latency_ms": args.latency,
                   "workers": args.workers, "shards": args.shards,
                   "reps": args.reps, "quick": args.quick},
        "results": results,
        "speedup": speedup,
        "identical": identical,
    }


def check(report: dict, baseline_path: str) -> int:
    baseline = json.loads(Path(baseline_path).read_text())
    failures = []
    if not report["identical"]:
        failures.append("backends disagreed on the evaluated rows")
    for name in ("async_vs_serial", "remote_vs_serial"):
        floor = REGRESSION_FLOOR * baseline["speedup"][name]
        got = report["speedup"][name]
        status = "ok" if got >= floor else "REGRESSION"
        print(f"  check {name}: {got:.2f}x vs floor {floor:.2f}x "
              f"(baseline {baseline['speedup'][name]:.2f}x) -> {status}")
        if got < floor:
            failures.append(f"{name} {got:.2f}x below floor {floor:.2f}x")
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print("service dispatch speedups within baseline envelope")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch", type=int, default=64,
                        help="designs per dispatched batch")
    parser.add_argument("--latency", type=float, default=20.0,
                        help="modeled per-evaluation latency in ms")
    parser.add_argument("--workers", type=int, default=8,
                        help="thread/async pool size")
    parser.add_argument("--shards", type=int, default=2,
                        help="local worker server processes for remote")
    parser.add_argument("--reps", type=int, default=2,
                        help="repetitions per backend (best rep is kept)")
    parser.add_argument("--quick", action="store_true",
                        help="small batch for CI smoke")
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument("--check", metavar="BASELINE.json",
                        help="fail if speedups regress vs this baseline")
    args = parser.parse_args()
    if args.quick:
        args.batch, args.latency, args.reps = 32, 10.0, 1

    print(f"service dispatch: batch {args.batch} x {args.latency:g} ms latency, "
          f"{args.workers} pool workers, {args.shards} shards")
    report = run(args)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if args.check:
        sys.exit(check(report, args.check))
