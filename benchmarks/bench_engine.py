"""P1 — engine micro-benchmarks: simulator, GP and critic primitives.

These are true pytest-benchmark timings (multiple rounds) of the hot paths
the experiment harness exercises thousands of times.
"""

import numpy as np

from repro.circuits import FoldedCascodeOTA
from repro.core import Critic, generate_pseudo_samples
from repro.gp import GaussianProcess
from repro.spice import ac_analysis, operating_point, transient


def test_bench_ota_operating_point(benchmark):
    ota = FoldedCascodeOTA()
    circuit = ota.build(ota.nominal())
    nodeset = ota._nodeset()

    result = benchmark(lambda: operating_point(circuit, nodeset=nodeset))
    assert result.v("vout") > 0.5


def test_bench_ota_ac_sweep(benchmark):
    ota = FoldedCascodeOTA()
    circuit = ota.build(ota.nominal())
    op = operating_point(circuit, nodeset=ota._nodeset())
    freqs = np.logspace(1, 9, 61)

    result = benchmark(lambda: ac_analysis(circuit, op, freqs))
    assert len(result.freqs) == 61


def test_bench_latch_transient(benchmark):
    from repro.circuits import StrongArmLatch

    latch = StrongArmLatch()
    circuit = latch.build(latch.nominal())

    result = benchmark.pedantic(
        lambda: transient(circuit, 40e-12, 26e-9,
                          ics={"vdd": 1.2, "q1": 1.2, "q2": 1.2, "x1": 1.2, "x2": 1.2}),
        rounds=3, iterations=1)
    assert len(result.t) > 100


def test_bench_critic_training(benchmark):
    rng = np.random.default_rng(0)
    X = rng.uniform(size=(60, 20))
    Y = rng.normal(size=(60, 30))
    inputs, targets = generate_pseudo_samples(X, Y, rng=rng, max_pairs=3000)

    def train():
        critic = Critic(20, 30, epochs=10, rng=np.random.default_rng(1))
        critic.fit(inputs, targets)
        return critic

    critic = benchmark.pedantic(train, rounds=3, iterations=1)
    assert critic.predict(X[:2], np.zeros((2, 20))).shape == (2, 30)


def test_bench_gp_fit(benchmark):
    rng = np.random.default_rng(2)
    X = rng.uniform(size=(100, 10))
    y = np.sin(X.sum(axis=1))

    def fit():
        return GaussianProcess(dim=10).fit(X, y, restarts=1, rng=np.random.default_rng(3))

    gp = benchmark.pedantic(fit, rounds=3, iterations=1)
    mean, _ = gp.predict(X[:5])
    assert mean.shape == (5,)
