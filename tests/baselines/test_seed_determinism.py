"""Seed-determinism regression suite for every optimizer.

Same seed -> same final ``history.fom`` trajectory, pinned for all five
baselines and DNN-Opt (serial and batched).  These tests freeze behaviour
across refactors of the evaluation path: any change that perturbs the RNG
stream or the evaluation order shows up here first.
"""

import numpy as np
import pytest

from repro.baselines import (
    BOwEI,
    DifferentialEvolution,
    GASPAD,
    RandomSearch,
    SimulatedAnnealing,
)
from repro.core import DNNOpt, EvalEngine
from repro.problems import ConstrainedSphere, Sphere

ALL_OPTIMIZERS = [
    ("Random", lambda p, b, s: RandomSearch(p, b, s)),
    ("DE", lambda p, b, s: DifferentialEvolution(p, b, s, pop_size=8)),
    ("SA", lambda p, b, s: SimulatedAnnealing(p, b, s)),
    ("BO-wEI", lambda p, b, s: BOwEI(p, b, s, n_init=8, pool_size=64,
                                     local_points=16)),
    ("GASPAD", lambda p, b, s: GASPAD(p, b, s, n_init=8, pop_size=6)),
    ("DNN-Opt", lambda p, b, s: DNNOpt(p, b, s, n_init=8, n_elite=5,
                                       critic_epochs=4, actor_epochs=4,
                                       critic_hidden=(16, 16),
                                       actor_hidden=(16, 16), max_pseudo=400)),
    ("DNN-Opt-batch3", lambda p, b, s: DNNOpt(p, b, s, n_init=8, n_elite=5,
                                              critic_epochs=4, actor_epochs=4,
                                              critic_hidden=(16, 16),
                                              actor_hidden=(16, 16),
                                              max_pseudo=400, batch_size=3)),
]


@pytest.mark.parametrize("name,factory", ALL_OPTIMIZERS, ids=[n for n, _ in ALL_OPTIMIZERS])
def test_same_seed_same_fom_trajectory(name, factory):
    h1 = factory(Sphere(3), 18, 21).run()
    h2 = factory(Sphere(3), 18, 21).run()
    np.testing.assert_array_equal(h1.fom, h2.fom)
    np.testing.assert_array_equal(h1.X, h2.X)
    np.testing.assert_array_equal(h1.fom_curve(), h2.fom_curve())


@pytest.mark.parametrize("name,factory", ALL_OPTIMIZERS, ids=[n for n, _ in ALL_OPTIMIZERS])
def test_different_seed_different_trajectory(name, factory):
    h1 = factory(Sphere(3), 18, 21).run()
    h2 = factory(Sphere(3), 18, 22).run()
    assert not np.array_equal(h1.X, h2.X)


@pytest.mark.parametrize("name,factory", ALL_OPTIMIZERS, ids=[n for n, _ in ALL_OPTIMIZERS])
def test_constrained_trajectory_reproducible(name, factory):
    h1 = factory(ConstrainedSphere(2), 15, 5).run()
    h2 = factory(ConstrainedSphere(2), 15, 5).run()
    np.testing.assert_array_equal(h1.fom, h2.fom)
    np.testing.assert_array_equal(h1.feasible, h2.feasible)


@pytest.mark.parametrize("name,factory", ALL_OPTIMIZERS[:5], ids=[n for n, _ in ALL_OPTIMIZERS[:5]])
def test_engine_backend_does_not_change_trajectory(name, factory):
    """Baselines run through a thread-pool engine keep their exact trajectory."""
    serial = factory(Sphere(2), 15, 8).run()
    with EvalEngine("thread", workers=2) as engine:
        optimizer = factory(Sphere(2), 15, 8)
        optimizer.engine = engine
        with_threads = optimizer.run()
    np.testing.assert_array_equal(serial.fom, with_threads.fom)
    np.testing.assert_array_equal(serial.X, with_threads.X)
