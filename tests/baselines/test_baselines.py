"""Baseline optimizers: budget discipline and basic optimization power."""

import numpy as np
import pytest

from repro.baselines import (
    BOwEI,
    DifferentialEvolution,
    GASPAD,
    RandomSearch,
    SimulatedAnnealing,
)
from repro.problems import ConstrainedSphere, Sphere


ALL_BASELINES = [
    (RandomSearch, {}),
    (DifferentialEvolution, {"pop_size": 10}),
    (SimulatedAnnealing, {}),
    (BOwEI, {"n_init": 8, "pool_size": 128, "local_points": 32}),
    (GASPAD, {"n_init": 8, "pop_size": 8}),
]


@pytest.mark.parametrize("cls,kwargs", ALL_BASELINES)
def test_budget_respected(cls, kwargs):
    history = cls(Sphere(3), 22, seed=0, **kwargs).run()
    assert history.n_evals == 22


@pytest.mark.parametrize("cls,kwargs", ALL_BASELINES)
def test_reproducible_with_seed(cls, kwargs):
    h1 = cls(Sphere(2), 15, seed=5, **kwargs).run()
    h2 = cls(Sphere(2), 15, seed=5, **kwargs).run()
    np.testing.assert_allclose(h1.X, h2.X)


@pytest.mark.parametrize("cls,kwargs", [
    (DifferentialEvolution, {"pop_size": 10}),
    (SimulatedAnnealing, {}),
    (BOwEI, {"n_init": 10, "pool_size": 256, "local_points": 64}),
    (GASPAD, {"n_init": 10, "pop_size": 10}),
])
def test_improves_over_initial_samples(cls, kwargs):
    problem = Sphere(3)
    history = cls(problem, 60, seed=1, **kwargs).run()
    first10 = history.F[:10, 0].min()
    overall = history.F[:, 0].min()
    assert overall <= first10


def test_de_beats_random_given_generations():
    problem = Sphere(4)
    de = DifferentialEvolution(problem, 300, seed=3, pop_size=15).run()
    rng = np.random.default_rng(3)
    random_best = problem.evaluate_batch(problem.space.sample(rng, 300))[:, 0].min()
    assert de.F[:, 0].min() < random_best


def test_bo_wei_handles_constraints():
    problem = ConstrainedSphere(2)
    history = BOwEI(problem, 30, seed=2, n_init=10, pool_size=256,
                    local_points=64).run()
    assert history.any_feasible


def test_gaspad_handles_constraints():
    problem = ConstrainedSphere(2)
    history = GASPAD(problem, 30, seed=2, n_init=10, pop_size=8).run()
    assert history.any_feasible


def test_sa_warm_start_used():
    problem = Sphere(3)
    x0 = np.array([1.0, -2.0, 0.5])
    history = SimulatedAnnealing(problem, 10, seed=4, x0=x0).run()
    np.testing.assert_allclose(history.X[0], x0)


def test_sa_invalid_cooling():
    with pytest.raises(ValueError):
        SimulatedAnnealing(Sphere(2), 10, cooling=1.5)


def test_de_needs_minimum_population():
    with pytest.raises(ValueError):
        DifferentialEvolution(Sphere(2), 10, pop_size=3)


def test_modeling_time_tracked_by_surrogate_methods():
    problem = Sphere(2)
    bo = BOwEI(problem, 16, seed=6, n_init=8, pool_size=64, local_points=16).run()
    assert bo.modeling_time > 0
    gaspad = GASPAD(problem, 16, seed=6, n_init=8, pop_size=6).run()
    assert gaspad.modeling_time > 0
    de = DifferentialEvolution(problem, 16, seed=6, pop_size=8).run()
    assert de.modeling_time == 0.0
