"""Sensitivity analysis (Eq. 7) and problem reduction."""

import numpy as np
import pytest

from repro.problems import DesignSpace, Objective, OptimizationProblem, Spec, Variable
from repro.sensitivity import ReducedProblem, reduce_problem, sensitivity_analysis


class LinearProblem(OptimizationProblem):
    """f0 = 3 a + 0 b + 0.5 c ; constraint metric = 10 b."""

    def __init__(self):
        space = DesignSpace([Variable("a", 0.0, 1.0), Variable("b", 0.0, 1.0),
                             Variable("c", 0.0, 1.0)])
        super().__init__(space, Objective("obj", scale=1.0),
                         [Spec("g", "max", 1.0)])

    def _evaluate(self, x):
        return [3.0 * x[0] + 0.5 * x[2], 10.0 * x[1]]


def test_linear_sensitivities_exact():
    problem = LinearProblem()
    result = sensitivity_analysis(problem, np.array([0.5, 0.5, 0.5]))
    # d(obj)/d(a) in normalized coords: 3.0 (range 1, scale 1)
    np.testing.assert_allclose(result.matrix[0], [3.0, 0.0, 0.5], atol=1e-6)
    # constraint g normalized by bound 1.0: d/d(b) = 10
    np.testing.assert_allclose(result.matrix[1], [0.0, 10.0, 0.0], atol=1e-6)
    assert result.n_evaluations == 1 + 2 * 3


def test_critical_variables_threshold():
    problem = LinearProblem()
    result = sensitivity_analysis(problem, np.array([0.5, 0.5, 0.5]))
    assert result.critical_variables(threshold=1.0) == ["a", "b"]
    assert result.critical_variables(threshold=20.0, min_keep=1) == ["b"]


def test_metric_restriction():
    problem = LinearProblem()
    result = sensitivity_analysis(problem, np.array([0.5, 0.5, 0.5]))
    only_g = result.critical_variables(threshold=0.1, metrics=["g"])
    assert only_g == ["b"]
    with pytest.raises(KeyError):
        result.variable_scores(metrics=["nope"])


def test_ranking_sorted_descending():
    problem = LinearProblem()
    result = sensitivity_analysis(problem, np.array([0.5, 0.5, 0.5]))
    ranking = result.ranking()
    assert [name for name, _ in ranking] == ["b", "a", "c"]
    scores = [s for _, s in ranking]
    assert scores == sorted(scores, reverse=True)


def test_nominal_at_bound_still_works():
    problem = LinearProblem()
    result = sensitivity_analysis(problem, np.array([0.0, 1.0, 0.5]))
    assert np.all(np.isfinite(result.matrix))
    assert result.matrix[1, 1] == pytest.approx(10.0, rel=1e-3)


def test_reduced_problem_freezes_and_expands():
    problem = LinearProblem()
    nominal = np.array([0.3, 0.7, 0.9])
    reduced = ReducedProblem(problem, ["b"], nominal)
    assert reduced.dim == 1
    row = reduced.evaluate(np.array([0.2]))
    expected_obj = 3.0 * 0.3 + 0.5 * 0.9
    assert row[0] == pytest.approx(expected_obj)
    assert row[1] == pytest.approx(2.0)
    np.testing.assert_allclose(reduced.expand(np.array([0.2])), [0.3, 0.2, 0.9])


def test_reduce_problem_from_sensitivity():
    problem = LinearProblem()
    sens = sensitivity_analysis(problem, np.array([0.5, 0.5, 0.5]))
    reduced = reduce_problem(problem, sens, threshold=1.0)
    assert set(reduced.space.names) == {"a", "b"}
    assert "reduced 2/3" in reduced.name


def test_reduced_problem_validates_inputs():
    problem = LinearProblem()
    with pytest.raises(ValueError):
        ReducedProblem(problem, [], np.zeros(3))
    with pytest.raises(ValueError):
        ReducedProblem(problem, ["zzz"], np.zeros(3))
    with pytest.raises(ValueError):
        ReducedProblem(problem, ["a"], np.zeros(2))


def test_describe_contains_ranking():
    problem = LinearProblem()
    sens = sensitivity_analysis(problem, np.array([0.5, 0.5, 0.5]))
    text = sens.describe(top=2)
    assert "b" in text and "7 simulations" in text
