"""Suite-wide wiring for the runtime lock sanitizer.

``REPRO_SANITIZE=1 pytest tests/core`` runs the normal tests with every
lock of the concurrency stack wrapped (see :mod:`repro.tools.sanitize`),
then fails the session if

* an observed lock-order edge is missing from the static RP06 graph
  (the linter would be blind to that ordering), or
* repo code touched a ``# guarded by:`` attribute without its lock.

Instrumentation must happen at collection time — before any test module
imports the classes — so it lives here rather than in a fixture.
"""

import os

_SANITIZE = bool(os.environ.get("REPRO_SANITIZE"))

if _SANITIZE:
    from repro.tools import sanitize

    sanitize.install()


def pytest_sessionfinish(session, exitstatus):
    if not _SANITIZE:
        return
    from repro.tools import sanitize

    problems = sanitize.check_against_static()
    problems += [f"guarded-by violation: {v.render()}"
                 for v in sanitize.drain_violations()]
    edges = sanitize.observed_edges()
    print(f"\n[sanitize] {len(edges)} observed lock-order edge(s), "
          f"{len(problems)} problem(s)")
    for (src, dst), site in sorted(edges.items()):
        print(f"[sanitize]   {src} -> {dst}  (first at {site})")
    if problems:
        for p in problems:
            print(f"[sanitize] FAIL: {p}")
        session.exitstatus = 1
