"""Benchmark circuits: nominal measurements land in plausible ranges and
every problem adapter is complete and robust."""

import numpy as np
import pytest

from repro.circuits import (
    CTLE,
    CircuitSizingProblem,
    FoldedCascodeOTA,
    InverterChain,
    LDORegulator,
    LevelShifter,
    StrongArmLatch,
)

ALL_CIRCUITS = [FoldedCascodeOTA, StrongArmLatch, InverterChain, LevelShifter,
                LDORegulator, CTLE]


@pytest.fixture(scope="module")
def nominal_measurements():
    """Measure every circuit once at nominal (shared across tests)."""
    out = {}
    for cls in ALL_CIRCUITS:
        circuit = cls()
        out[cls.__name__] = (circuit, circuit.measure(circuit.nominal()))
    return out


@pytest.mark.parametrize("cls", ALL_CIRCUITS)
def test_measure_covers_all_metrics(cls, nominal_measurements):
    circuit, result = nominal_measurements[cls.__name__]
    problem = circuit.problem()
    for metric in problem.metric_names:
        assert metric in result, f"{cls.__name__} missing {metric}"
        assert np.isfinite(result[metric])


@pytest.mark.parametrize("cls", ALL_CIRCUITS)
def test_problem_adapter_evaluates(cls, nominal_measurements):
    circuit, result = nominal_measurements[cls.__name__]
    problem = circuit.problem()
    x = np.array([circuit.nominal()[name] for name in problem.space.names])
    row = problem.evaluate(x)
    assert row.shape == (1 + problem.num_constraints,)
    assert row[0] == pytest.approx(result[problem.objective.name], rel=1e-6)


@pytest.mark.parametrize("cls", ALL_CIRCUITS)
def test_parameter_table_matches_space(cls):
    circuit = cls()
    table = circuit.parameter_table()
    assert len(table) == circuit.space().dim


def test_folded_cascode_paper_structure():
    """Table I: 20 variables; Eq. 9: 29 constraints."""
    ota = FoldedCascodeOTA()
    assert ota.space().dim == 20
    assert len(ota.specs()) == 29
    sat_specs = [s for s in ota.specs() if s.name.startswith("satmargin")]
    assert len(sat_specs) == 20


def test_folded_cascode_nominal_is_a_real_amplifier(nominal_measurements):
    _, result = nominal_measurements["FoldedCascodeOTA"]
    assert result["dc_gain_db"] > 60.0
    assert result["ugf_hz"] > 10e6
    assert result["cmrr_db"] > 60.0
    assert result["psrr_db"] > 60.0
    assert 0.1e-3 < result["power_w"] < 10e-3
    assert result["static_error_pct"] < 1.0
    assert 0 < result["output_noise_vrms"] < 10e-3


def test_strongarm_paper_structure():
    """Table III: 13 variables; Eq. 10: 10 constraints."""
    latch = StrongArmLatch()
    assert latch.space().dim == 13
    assert len(latch.specs()) == 10


def test_strongarm_nominal_regenerates(nominal_measurements):
    _, result = nominal_measurements["StrongArmLatch"]
    assert result["diff_set_v"] > 1.15          # full regeneration
    assert result["set_delay_s"] < 5e-9
    assert result["diff_reset_v"] < 1e-6        # clean reset
    assert 1e-6 < result["power_w"] < 100e-6


def test_strongarm_decision_follows_input_polarity():
    latch = StrongArmLatch(vdiff=-10e-3)  # flip the input
    tran_spec = latch.measure(latch.nominal())
    assert tran_spec["diff_set_v"] > 1.15  # still regenerates fully


def test_inverter_chain_has_8_variables(nominal_measurements):
    circuit, result = nominal_measurements["InverterChain"]
    assert circuit.space().dim == 8
    assert 5e-12 < result["delay_rise_s"] < 100e-12


def test_level_shifter_translates_levels(nominal_measurements):
    _, result = nominal_measurements["LevelShifter"]
    assert result["output_high_v"] > 1.7
    assert result["output_low_v"] < 0.05
    assert result["static_current_a"] < 1e-6


def test_ldo_regulates(nominal_measurements):
    _, result = nominal_measurements["LDORegulator"]
    assert result["vout_error_v"] < 30e-3
    assert result["dc_gain_db"] > 40.0
    assert result["psrr_db"] > 30.0


def test_ctle_equalizes(nominal_measurements):
    _, result = nominal_measurements["CTLE"]
    assert result["peaking_db"] > 3.0
    assert result["fpeak_hz"] > 1e9
    assert result["bw_3db_hz"] > result["fpeak_hz"]


def test_failure_on_convergence_is_penalized():
    """A pathological sizing must yield the penalty row, not an exception."""
    ota = FoldedCascodeOTA()
    problem = ota.problem()
    x = problem.space.lower.copy()  # minimum everything: likely broken amp
    row = problem.evaluate(x)
    assert np.all(np.isfinite(row))


def test_circuit_problem_is_deterministic():
    problem = CTLE().problem()
    x = np.array([CTLE().nominal()[n] for n in problem.space.names])
    r1 = problem.evaluate(x)
    r2 = problem.evaluate(x)
    np.testing.assert_allclose(r1, r2)
