"""Scenario subsystem: PVT corner fan-out, mismatch Monte Carlo, gating.

Load-bearing contracts pinned here:

* corner transforms apply at compile time through the ``circuit_transform``
  seam — no circuit class changes — and run exactly once per circuit;
* two corner variants of the same base problem *never* share engine
  cache/dedup/disk entries (distinct content fingerprints), while the same
  corner re-fingerprints identically in a separate interpreter;
* corner fan-out through ``EvalEngine.submit``/``gather`` is bit-identical
  across the serial, thread, async and fleet backends;
* seeded mismatch Monte Carlo is reproducible (same seed → same rows);
* adaptive-gating decisions derive only from told rows, so a checkpoint
  resume replays them exactly (bit-identical finished history).
"""

import os
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.baselines import RandomSearch
from repro.circuits import LDORegulator
from repro.core import EvalEngine, Study
from repro.core import service
from repro.core.fleet import FleetCoordinator
from repro.scenarios import (
    Corner,
    CornerProblem,
    CornerVariant,
    MonteCarloProblem,
    ScenarioSet,
    corner_transform,
    process_corner,
)
from repro.spice.netlist import circuit_transform


def ldo_problem():
    return LDORegulator().problem()


def nominal_x(problem):
    nominal = LDORegulator().nominal()
    return np.array([nominal[v.name] for v in problem.space.variables],
                    dtype=np.float64)


# ----------------------------------------------------------------------
# corner transforms at the compile seam
# ----------------------------------------------------------------------
def test_corner_transform_adjusts_models_and_supplies_once():
    corner = process_corner("ss_lo_hot", "ss", supply_scale=0.9, temp_c=125.0)
    circuit = LDORegulator().build(LDORegulator().nominal())
    nominal_models = {d.name: d.model for d in circuit.devices
                      if hasattr(getattr(d, "model", None), "polarity")}
    with circuit_transform(corner_transform(corner)):
        circuit.compile()
        circuit._compiled = None  # force a recompile, netlist unchanged
        circuit.compile()  # transform is sticky: applied exactly once

    assert circuit["VDD"].waveform.level == pytest.approx(1.8 * 0.9)
    assert circuit["VREF"].waveform.level == pytest.approx(0.9)  # not a supply
    for name, model in nominal_models.items():
        adjusted = circuit[name].model
        # ss: less drive; hot: mobility derating compounds it
        assert adjusted.kp < 0.9 * model.kp
        if model.polarity == "n":
            assert adjusted.vto < model.vto + 0.03  # tempco pulls back down
        expected = corner.model_params(model)
        assert adjusted.kp == pytest.approx(expected["kp"])
        assert adjusted.vto == pytest.approx(expected["vto"])


def test_nominal_corner_is_identity():
    assert Corner("nom").is_nominal
    assert not process_corner("ff", "ff").is_nominal
    assert not Corner("hot", temp_c=125.0).is_nominal
    model_like = type("M", (), {"polarity": "n", "kp": 2e-4, "vto": 0.4})()
    params = Corner("nom").model_params(model_like)
    assert params["kp"] == pytest.approx(2e-4)
    assert params["vto"] == pytest.approx(0.4)


def test_scenario_set_constructors():
    typical = ScenarioSet.typical()
    assert typical.names == ("nom", "ss_lo_hot", "ff_hi_cold", "fs_lo_cold")
    assert typical[0].is_nominal and not typical[1].is_nominal
    pvt = ScenarioSet.pvt()
    assert len(pvt) == 27
    assert pvt[0].is_nominal  # nominal moved first for gating
    with pytest.raises(ValueError):
        ScenarioSet((Corner("a"), Corner("a")))


def test_corner_rows_differ_from_nominal():
    problem = ldo_problem()
    x = nominal_x(problem)
    nominal_row = problem.evaluate(x)
    corner = ScenarioSet.typical()[1]  # ss, low supply, hot
    corner_row = CornerVariant(problem, corner).evaluate(x)
    assert corner_row.shape == nominal_row.shape
    assert not np.array_equal(corner_row, nominal_row)


def test_aggregate_is_oriented_worst_case_and_quantile():
    problem = ldo_problem()
    wrapper = CornerProblem(problem, [Corner("nom")])
    kinds = [spec.kind for spec in problem.specs]
    rng = np.random.default_rng(0)
    rows = rng.normal(size=(5, 1 + len(kinds)))
    worst = wrapper._aggregate(rows)
    assert worst[0] == pytest.approx(rows[:, 0].max())  # objective: larger=worse
    for i, kind in enumerate(kinds):
        col = rows[:, 1 + i]
        assert worst[1 + i] == pytest.approx(
            col.min() if kind == "min" else col.max())
    median = CornerProblem(problem, [Corner("nom")],
                           aggregate=0.5)._aggregate(rows)
    assert median[0] == pytest.approx(np.quantile(rows[:, 0], 0.5))
    with pytest.raises(ValueError):
        CornerProblem(problem, [Corner("nom")], aggregate=1.5)
    with pytest.raises(ValueError):  # no nesting
        CornerProblem(wrapper, [Corner("nom")])


# ----------------------------------------------------------------------
# fingerprint regression: corners never alias in any cache tier
# ----------------------------------------------------------------------
def test_corner_variants_have_distinct_fingerprints():
    problem = ldo_problem()
    scenarios = ScenarioSet.typical()
    prints = {EvalEngine._fingerprint(CornerVariant(problem, corner))
              for corner in scenarios if not corner.is_nominal}
    prints.add(EvalEngine._fingerprint(problem))
    assert None not in prints
    assert len(prints) == len(scenarios)  # base + 3 corners, all distinct
    # MC samples and seeds are distinct identities too
    mc_prints = {EvalEngine._fingerprint(v)
                 for v in MonteCarloProblem(problem, n_samples=3).variants[1:]}
    mc_prints |= {EvalEngine._fingerprint(v) for v in
                  MonteCarloProblem(problem, n_samples=3, seed=1).variants[1:]}
    assert len(mc_prints) == 6


def test_two_corner_variants_never_share_cache_entries(tmp_path):
    problem = ldo_problem()
    x = nominal_x(problem).reshape(1, -1)
    a = CornerVariant(problem, process_corner("ss", "ss"))
    b = CornerVariant(problem, process_corner("ff", "ff"))
    with EvalEngine(cache_dir=str(tmp_path)) as engine:
        row_a = engine.evaluate_batch(a, x)
        row_b = engine.evaluate_batch(b, x)
        counters = engine.counters_snapshot()
        assert counters["n_sim_calls"] == 2  # same design, two sims — no aliasing
        assert counters["n_cache_hits"] == 0 and counters["n_disk_hits"] == 0
        assert not np.array_equal(row_a, row_b)
        # re-asking the same variant *does* hit the memory tier
        engine.evaluate_batch(a, x)
        assert engine.counters_snapshot()["n_cache_hits"] == 1
    # a fresh engine on the same disk store answers each under its own key
    with EvalEngine(cache_dir=str(tmp_path)) as engine:
        np.testing.assert_array_equal(engine.evaluate_batch(a, x), row_a)
        np.testing.assert_array_equal(engine.evaluate_batch(b, x), row_b)
        counters = engine.counters_snapshot()
        assert counters["n_disk_hits"] == 2
        assert counters["n_sim_calls"] == 0


def test_wrapper_fingerprint_stable_across_gate_state():
    problem = CornerProblem(ldo_problem(), ScenarioSet.typical(),
                            gate_margin=0.5, gate_warmup=2)
    before = EvalEngine._fingerprint(problem)
    x = nominal_x(problem).reshape(1, -1)
    problem.scenario_observe(x, np.zeros((1, 1 + problem.num_constraints)))
    assert EvalEngine._fingerprint(problem) == before  # runtime is stripped


_FINGERPRINT_CHILD = """
import sys
from repro.circuits import LDORegulator
from repro.core import EvalEngine
from repro.scenarios import CornerProblem, CornerVariant, ScenarioSet

problem = LDORegulator().problem()
scenarios = ScenarioSet.typical()
prints = [EvalEngine._fingerprint(CornerVariant(problem, c)).hex()
          for c in scenarios if not c.is_nominal]
prints.append(EvalEngine._fingerprint(
    CornerProblem(problem, scenarios, gate_margin=0.5)).hex())
print(":".join(prints))
"""


def _child_fingerprints():
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.abspath(src) + os.pathsep
                         + env.get("PYTHONPATH", ""))
    out = subprocess.run([sys.executable, "-c", _FINGERPRINT_CHILD],
                         capture_output=True, text=True, env=env, timeout=120)
    assert out.returncode == 0, out.stderr
    return out.stdout.strip().splitlines()[-1].split(":")


def test_corner_fingerprints_identical_across_processes():
    # Same corner → same content fingerprint in a genuinely separate
    # interpreter (the disk tier may answer it); distinct corners stay
    # distinct there too.
    child_a = _child_fingerprints()
    child_b = _child_fingerprints()
    assert child_a == child_b
    assert len(set(child_a)) == len(child_a)
    problem = ldo_problem()
    scenarios = ScenarioSet.typical()
    local = [EvalEngine._fingerprint(CornerVariant(problem, c)).hex()
             for c in scenarios if not c.is_nominal]
    local.append(EvalEngine._fingerprint(
        CornerProblem(problem, scenarios, gate_margin=0.5)).hex())
    assert child_a == local


# ----------------------------------------------------------------------
# engine fan-out: determinism across backends
# ----------------------------------------------------------------------
def make_corner_study(engine):
    problem = CornerProblem(ldo_problem(), ScenarioSet.typical(),
                            gate_margin=1.0, gate_warmup=2)
    return Study(RandomSearch(problem, 8, seed=3), engine=engine)


@pytest.fixture()
def two_local_servers():
    servers, threads = [], []
    for _ in range(2):
        server = service.EvalWorkerServer(port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append(server)
        threads.append(thread)
    yield servers
    for server in servers:
        server.close()
    for thread in threads:
        thread.join(timeout=5)


def test_corner_fanout_bit_identical_across_backends(two_local_servers):
    reference = make_corner_study(None).run()
    assert reference.n_evals == 8

    backends = {}
    with EvalEngine("thread", workers=4) as engine:
        backends["thread"] = make_corner_study(engine).run()
    with EvalEngine("async", workers=4) as engine:
        backends["async"] = make_corner_study(engine).run()
    hosts = [server.address for server in two_local_servers]
    with FleetCoordinator(hosts=hosts) as fleet:
        engine = fleet.engine("corner-study")
        backends["fleet"] = make_corner_study(engine).run()
        engine.close()

    for name, history in backends.items():
        np.testing.assert_array_equal(reference.X, history.X, err_msg=name)
        np.testing.assert_array_equal(reference.F, history.F, err_msg=name)


def test_folded_cascode_fleet_fanout_matches_serial(two_local_servers):
    # Acceptance pin: a 4-corner CornerProblem over the folded-cascode OTA
    # optimized on a 2-worker fleet produces a history bit-identical to
    # the serial backend.
    from repro.circuits import FoldedCascodeOTA

    def run(engine):
        problem = CornerProblem(FoldedCascodeOTA().problem(),
                                ScenarioSet.typical(),
                                gate_margin=1.0, gate_warmup=2)
        return Study(RandomSearch(problem, 6, seed=5), engine=engine).run()

    serial = run(None)
    hosts = [server.address for server in two_local_servers]
    with FleetCoordinator(hosts=hosts) as fleet:
        engine = fleet.engine("fcota-corners")
        fleet_history = run(engine)
        engine.close()
    np.testing.assert_array_equal(serial.X, fleet_history.X)
    np.testing.assert_array_equal(serial.F, fleet_history.F)


def test_direct_evaluate_matches_engine_fanout():
    problem = CornerProblem(ldo_problem(), ScenarioSet.typical())
    x = nominal_x(problem)
    direct = problem.evaluate(x)  # no engine, no gating
    with EvalEngine() as engine:
        via_engine = engine.evaluate_batch(problem, x.reshape(1, -1))[0]
        rows = problem.variant_rows(engine, x)
    np.testing.assert_array_equal(direct, via_engine)
    assert rows.shape == (4, direct.shape[0])
    np.testing.assert_array_equal(problem._aggregate(rows), direct)


def test_gating_summary_and_sims_saved():
    problem = CornerProblem(ldo_problem(), ScenarioSet.typical(),
                            gate_margin=0.25, gate_warmup=4)
    with EvalEngine() as engine:
        history = Study(RandomSearch(problem, 12, seed=0),
                        engine=engine).run()
    stats = history.summary()["scenarios"]
    assert stats["corners"] == 4
    assert stats["designs"] == 12
    assert stats["fanned_out"] + stats["gated"] == 12
    assert stats["gated"] > 0  # a 0.25 margin gates some of 12 random designs
    assert stats["corner_sims"] == 3 * stats["fanned_out"]
    assert stats["corner_sims_saved"] == 3 * stats["gated"]
    assert stats["gate_margin"] == 0.25 and stats["gate_warmup"] == 4
    # engine sims: one nominal per design + the fanned corner sims
    assert history.engine_stats["misses"] == 12 + stats["corner_sims"]


def test_memo_answers_told_designs_without_resimulating():
    problem = CornerProblem(ldo_problem(), ScenarioSet.typical())
    x = nominal_x(problem).reshape(1, -1)
    with EvalEngine() as engine:
        row = engine.evaluate_batch(problem, x)
        problem.scenario_observe(x, row)
        again = engine.evaluate_batch(problem, x)
    np.testing.assert_array_equal(row, again)
    assert problem.scenario_stats()["memo_hits"] == 1
    assert problem.scenario_stats()["designs"] == 1  # decided once


# ----------------------------------------------------------------------
# Monte Carlo mismatch
# ----------------------------------------------------------------------
def test_monte_carlo_seeded_reproducibility():
    x = nominal_x(ldo_problem())
    rows_a = MonteCarloProblem(ldo_problem(), n_samples=4, seed=7).evaluate(x)
    rows_b = MonteCarloProblem(ldo_problem(), n_samples=4, seed=7).evaluate(x)
    np.testing.assert_array_equal(rows_a, rows_b)
    rows_c = MonteCarloProblem(ldo_problem(), n_samples=4, seed=8).evaluate(x)
    assert not np.array_equal(rows_a, rows_c)


def test_monte_carlo_samples_differ_and_yield_is_reported():
    problem = MonteCarloProblem(ldo_problem(), n_samples=4, seed=7)
    x = nominal_x(problem)
    with EvalEngine() as engine:
        rows = problem.variant_rows(engine, x)
        assert len({row.tobytes() for row in rows}) == 5  # base + 4 draws
        fraction = problem.feasible_fraction(engine, x)
        history = Study(RandomSearch(problem, 4, seed=1),
                        engine=engine).run()
    assert 0.0 <= fraction <= 1.0
    stats = history.summary()["scenarios"]
    assert stats["aggregate"] == 0.9
    assert 0.0 <= stats["sample_yield"] <= 1.0
    assert stats["designs"] == 4 and stats["fanned_out"] == 4


# ----------------------------------------------------------------------
# checkpoint resume replays gating decisions exactly
# ----------------------------------------------------------------------
def test_gating_checkpoint_resume_bit_identical(tmp_path):
    def make_opt():
        problem = CornerProblem(ldo_problem(), ScenarioSet.typical(),
                                gate_margin=0.25, gate_warmup=4)
        return RandomSearch(problem, 12, seed=0)

    reference = Study(make_opt()).run()
    ref_stats = reference.summary()["scenarios"]
    assert ref_stats["gated"] > 0  # the gate actually fires in this run

    path = tmp_path / "corner.ckpt.json"
    interrupted = Study(make_opt(), checkpoint_path=str(path),
                        checkpoint_every=1,
                        callbacks=[lambda s: s.history.n_evals >= 6
                                   and s.request_stop()])
    partial = interrupted.run()
    assert partial.n_evals < reference.n_evals

    # The fresh problem's gate state is empty; the resume re-tells the
    # recorded prefix (rebuilding memo/warmup/best-FoM), so post-resume
    # gating decisions — and therefore the rows — replay exactly.
    finished = Study.load(str(path), make_opt()).run()
    np.testing.assert_array_equal(reference.X, finished.X)
    np.testing.assert_array_equal(reference.F, finished.F)
