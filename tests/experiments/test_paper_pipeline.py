"""The full Table II / Figure 3 pipeline on a cheap analytic circuit.

Uses a synthetic :class:`SizingCircuit` (closed-form 'amplifier' equations)
so the whole four-algorithm comparison, statistics and figure rendering run
in seconds — validating the experiment plumbing independently of the SPICE
benches.
"""

import numpy as np

from repro.circuits.base import SizingCircuit
from repro.experiments import (
    ExperimentScale,
    render_fom_figure,
    render_stats_table,
    run_building_block_comparison,
)
from repro.problems.base import Objective, Spec, Variable


class ToyAmplifier(SizingCircuit):
    """Closed-form two-variable 'amplifier': gain ~ w/l, power ~ w*l."""

    name = "toy_amplifier"

    def variables(self):
        return [Variable("w", 1.0, 100.0, unit="um"),
                Variable("l", 0.2, 2.0, unit="um")]

    def objective(self):
        return Objective("power_w", scale=1e-3, unit="W")

    def specs(self):
        return [Spec("gain_db", "min", 30.0, unit="dB"),
                Spec("bw_hz", "min", 1e6, unit="Hz")]

    def measure(self, params):
        w, l = params["w"], params["l"]
        gain = 20.0 * np.log10(10.0 * w / l)
        bandwidth = 5e7 / (w * l)
        power = 1e-5 * w * l
        return {"gain_db": gain, "bw_hz": bandwidth, "power_w": power}


def test_full_comparison_pipeline():
    scale = ExperimentScale(n_trials=2, budget=15, de_budget=30,
                            industrial_budget=10, sa_budget=20)
    result = run_building_block_comparison(ToyAmplifier, scale=scale)

    stats = result["stats"]
    assert set(stats) == {"DE", "BO-wEI", "GASPAD", "DNN-Opt"}
    for name, stat in stats.items():
        assert stat.n_trials == 2
        expected_budget = scale.de_budget if name == "DE" else scale.budget
        assert stat.budget == expected_budget

    curves = result["curves"]
    for curve in curves.values():
        assert len(curve) == scale.budget
        assert np.all(np.diff(curve) <= 1e-12)

    table = render_stats_table(stats, objective_label="power (mW)",
                               unit_scale=1e-3, title="toy Table II")
    assert "success rate" in table and "DNN-Opt" in table
    figure = render_fom_figure(curves, "toy Figure 3")
    assert "toy Figure 3" in figure


def test_toy_problem_is_solvable():
    problem = ToyAmplifier().problem()
    # gain >= 30 dB needs w/l >= ~3.16; bw >= 1e6 needs w*l <= 50.
    row = problem.evaluate(np.array([20.0, 1.0]))
    assert problem.is_feasible(row[None, :])[0]
    row_bad = problem.evaluate(np.array([1.0, 2.0]))
    assert not problem.is_feasible(row_bad[None, :])[0]
