"""Parallel trial dispatch: worker count must never change a result.

``run_trials(workers=N)`` spreads the paper's ten-repeats protocol over a
process pool; these tests pin that the histories come back trial-for-trial
identical to serial execution, and that per-algorithm budget overrides in
``compare_algorithms`` survive parallel dispatch.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.baselines import RandomSearch, SimulatedAnnealing
from repro.core import DNNOpt, EvalEngine
from repro.experiments import compare_algorithms, run_trials
from repro.problems import ConstrainedSphere, Sphere


def _assert_histories_equal(a, b):
    assert len(a) == len(b)
    for ha, hb in zip(a, b):
        assert ha.seed == hb.seed
        assert ha.optimizer_name == hb.optimizer_name
        np.testing.assert_array_equal(ha.X, hb.X)
        np.testing.assert_array_equal(ha.F, hb.F)
        np.testing.assert_array_equal(ha.fom, hb.fom)
        np.testing.assert_array_equal(ha.feasible, hb.feasible)


def test_workers4_equals_serial_random_search():
    kwargs = dict(budget=20, n_trials=6, base_seed=11)
    serial = run_trials(lambda p, b, s: RandomSearch(p, b, s),
                        lambda: Sphere(3), workers=1, **kwargs)
    parallel = run_trials(lambda p, b, s: RandomSearch(p, b, s),
                          lambda: Sphere(3), workers=4, **kwargs)
    _assert_histories_equal(serial, parallel)


def test_workers4_equals_serial_dnnopt():
    factory = lambda p, b, s: DNNOpt(p, b, s, n_init=8, n_elite=5,
                                     critic_epochs=4, actor_epochs=4,
                                     critic_hidden=(16, 16), actor_hidden=(16, 16),
                                     max_pseudo=400, batch_size=2)
    kwargs = dict(budget=14, n_trials=4, base_seed=3)
    serial = run_trials(factory, lambda: ConstrainedSphere(2), workers=1, **kwargs)
    parallel = run_trials(factory, lambda: ConstrainedSphere(2), workers=4, **kwargs)
    _assert_histories_equal(serial, parallel)


def test_workers_capped_by_trial_count():
    histories = run_trials(lambda p, b, s: RandomSearch(p, b, s),
                           lambda: Sphere(2), budget=8, n_trials=2,
                           base_seed=0, workers=16)
    assert [h.seed for h in histories] == [0, 1]


def test_trial_order_preserved_under_parallelism():
    histories = run_trials(lambda p, b, s: RandomSearch(p, b, s),
                           lambda: Sphere(2), budget=5, n_trials=5,
                           base_seed=40, workers=5)
    assert [h.seed for h in histories] == [40, 41, 42, 43, 44]


def test_compare_algorithms_budget_overrides_under_parallelism():
    optimizers = {
        "Random": lambda p, b, s: RandomSearch(p, b, s),
        "SA": lambda p, b, s: SimulatedAnnealing(p, b, s),
    }
    kwargs = dict(budget=10, n_trials=3, base_seed=1, budgets={"SA": 24})
    serial = compare_algorithms(optimizers, lambda: Sphere(2), workers=1, **kwargs)
    parallel = compare_algorithms(optimizers, lambda: Sphere(2), workers=3, **kwargs)
    assert all(h.n_evals == 10 for h in parallel["Random"])
    assert all(h.n_evals == 24 for h in parallel["SA"])
    for name in optimizers:
        _assert_histories_equal(serial[name], parallel[name])


def test_concurrent_run_trials_keep_their_own_context():
    # Two run_trials calls racing on different factories/problems: context
    # travels with each dispatch (initargs/partials, no module global), so
    # neither call can ever run the other's factory.
    specs = {
        "Random": (lambda p, b, s: RandomSearch(p, b, s), lambda: Sphere(3)),
        "SA": (lambda p, b, s: SimulatedAnnealing(p, b, s), lambda: Sphere(2)),
    }
    kwargs = dict(budget=10, n_trials=3, base_seed=2)
    serial = {name: run_trials(f, pf, workers=1, **kwargs)
              for name, (f, pf) in specs.items()}
    with ThreadPoolExecutor(max_workers=2) as pool:
        futures = {name: pool.submit(run_trials, f, pf, workers=2, **kwargs)
                   for name, (f, pf) in specs.items()}
        concurrent = {name: future.result() for name, future in futures.items()}
    for name, (f, pf) in specs.items():
        dim = pf().dim
        assert all(h.X.shape[1] == dim for h in concurrent[name])
        assert all(h.optimizer_name == serial[name][0].optimizer_name
                   for h in concurrent[name])
        _assert_histories_equal(serial[name], concurrent[name])


def test_engine_factory_leaves_histories_unchanged():
    factory = lambda p, b, s: RandomSearch(p, b, s)
    kwargs = dict(budget=12, n_trials=3, base_seed=7)
    base = run_trials(factory, lambda: Sphere(3), workers=1, **kwargs)
    for engine_factory in (lambda: EvalEngine("serial"),
                           lambda: EvalEngine("async", workers=2)):
        for workers in (1, 3):
            got = run_trials(factory, lambda: Sphere(3), workers=workers,
                             engine_factory=engine_factory, **kwargs)
            _assert_histories_equal(base, got)


def test_engine_factory_process_backend_inside_pool_workers():
    # A process-backend engine built inside daemonic fork-pool trial workers
    # cannot spawn pool children; the engine degrades to its serial loop
    # instead of crashing, with identical histories.  DNNOpt with batch_size
    # ensures multi-design batches actually reach the process dispatch path.
    factory = lambda p, b, s: DNNOpt(p, b, s, n_init=8, n_elite=5,
                                     critic_epochs=4, actor_epochs=4,
                                     critic_hidden=(16, 16), actor_hidden=(16, 16),
                                     max_pseudo=400, batch_size=2)
    kwargs = dict(budget=12, n_trials=2, base_seed=5)
    base = run_trials(factory, lambda: ConstrainedSphere(2), workers=1, **kwargs)
    got = run_trials(factory, lambda: ConstrainedSphere(2), workers=2,
                     engine_factory=lambda: EvalEngine("process", workers=2),
                     **kwargs)
    _assert_histories_equal(base, got)


def test_parallel_verbose_prints_in_trial_order(capsys):
    run_trials(lambda p, b, s: RandomSearch(p, b, s), lambda: Sphere(2),
               budget=5, n_trials=3, base_seed=0, workers=3, verbose=True)
    lines = [l for l in capsys.readouterr().out.splitlines() if "trial" in l]
    assert [f"trial {i}" in line for i, line in enumerate(lines)] == [True] * 3
