"""Experiment harness: runner, statistics, curves, table rendering."""

import numpy as np
import pytest

from repro.baselines import RandomSearch
from repro.core import DNNOpt
from repro.experiments import (
    algorithm_stats,
    ascii_plot,
    compare_algorithms,
    curve_table,
    mean_fom_curve,
    render_table,
    run_parameter_table,
    run_trials,
)
from repro.circuits import FoldedCascodeOTA, StrongArmLatch
from repro.problems import ConstrainedSphere, Sphere


def test_run_trials_seeds_differ():
    histories = run_trials(lambda p, b, s: RandomSearch(p, b, s),
                           lambda: Sphere(2), budget=10, n_trials=3, base_seed=7)
    assert len(histories) == 3
    assert not np.allclose(histories[0].X, histories[1].X)
    assert [h.seed for h in histories] == [7, 8, 9]


def test_compare_algorithms_budget_override():
    results = compare_algorithms(
        {"A": lambda p, b, s: RandomSearch(p, b, s),
         "B": lambda p, b, s: RandomSearch(p, b, s)},
        lambda: Sphere(2), budget=10, n_trials=2, budgets={"B": 25})
    assert results["A"][0].n_evals == 10
    assert results["B"][0].n_evals == 25


def test_algorithm_stats_success_accounting():
    histories = run_trials(lambda p, b, s: RandomSearch(p, b, s),
                           lambda: ConstrainedSphere(2), budget=40, n_trials=3)
    stats = algorithm_stats("Random", histories)
    assert stats.n_trials == 3
    assert 0 <= stats.n_success <= 3
    assert "/" in stats.success_rate
    if stats.n_success:
        assert stats.min_objective <= stats.mean_objective <= stats.max_objective
    else:
        assert stats.sims_label.startswith(">")


def test_algorithm_stats_empty_raises():
    with pytest.raises(ValueError):
        algorithm_stats("x", [])


def test_mean_fom_curve_padding():
    h_long = RandomSearch(Sphere(2), 20, seed=0).run()
    h_short = RandomSearch(Sphere(2), 10, seed=1).run()
    curve = mean_fom_curve([h_long, h_short], length=20)
    assert len(curve) == 20
    assert np.all(np.diff(curve) <= 1e-12)  # mean of non-increasing curves


def test_curve_table_strides():
    curves = {"a": np.linspace(1, 0, 50), "b": np.linspace(2, 1, 50)}
    rows = curve_table(curves, stride=10)
    assert rows[0][0] == 1
    assert len(rows) == 5
    assert len(rows[0]) == 3


def test_ascii_plot_renders_legend_and_axes():
    curves = {"DNN-Opt": np.linspace(1.0, 0.1, 30),
              "DE": np.linspace(1.2, 0.5, 30)}
    text = ascii_plot(curves, title="FoM")
    assert "FoM" in text
    assert "*=DNN-Opt" in text
    assert "30 simulations" in text


def test_render_table_alignment_and_na():
    text = render_table(["A", "Bee"], [("x", 1.0), ("yy", None)], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "NA" in text
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # perfectly rectangular


def test_parameter_tables_match_paper_counts():
    table1 = run_parameter_table(FoldedCascodeOTA())
    assert table1.count("\n") >= 22  # 20 parameter rows + frame
    assert "MCAP" in table1 and "Cf" in table1
    table3 = run_parameter_table(StrongArmLatch())
    assert "CL_finger" in table3


def test_dnnopt_in_harness_smoke():
    histories = run_trials(
        lambda p, b, s: DNNOpt(p, b, s, n_init=8, n_elite=5, critic_epochs=5,
                               actor_epochs=5, max_pseudo=500),
        lambda: ConstrainedSphere(2), budget=15, n_trials=1)
    stats = algorithm_stats("DNN-Opt", histories)
    assert stats.budget == 15
    assert stats.mean_modeling_time_s > 0
