"""Gaussian-process substrate: kernels, regression, acquisitions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gp import (
    GaussianProcess,
    Matern52,
    RBF,
    expected_improvement,
    lower_confidence_bound,
    probability_of_feasibility,
    weighted_expected_improvement,
)


class TestKernels:
    @pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
    def test_diagonal_is_amplitude_squared(self, kernel_cls):
        kernel = kernel_cls(3, amplitude=2.0)
        X = np.random.default_rng(0).normal(size=(5, 3))
        K = kernel(X, X)
        np.testing.assert_allclose(np.diag(K), 4.0, rtol=1e-9)

    @pytest.mark.parametrize("kernel_cls", [RBF, Matern52])
    def test_symmetric_and_psd(self, kernel_cls):
        kernel = kernel_cls(2)
        X = np.random.default_rng(1).normal(size=(8, 2))
        K = kernel(X, X)
        np.testing.assert_allclose(K, K.T, atol=1e-12)
        eigvals = np.linalg.eigvalsh(K + 1e-10 * np.eye(8))
        assert np.all(eigvals > 0)

    @settings(max_examples=25, deadline=None)
    @given(st.floats(0.1, 3.0), st.floats(0.1, 3.0))
    def test_kernel_decays_with_distance(self, d1, d2):
        kernel = RBF(1, lengthscale=1.0)
        near, far = sorted([d1, d2])
        k_near = kernel(np.array([[0.0]]), np.array([[near]]))[0, 0]
        k_far = kernel(np.array([[0.0]]), np.array([[far]]))[0, 0]
        assert k_near >= k_far - 1e-12

    def test_param_roundtrip(self):
        kernel = Matern52(3)
        theta = kernel.get_params() + 0.3
        kernel.set_params(theta)
        np.testing.assert_allclose(kernel.get_params(), theta)
        with pytest.raises(ValueError):
            kernel.set_params(np.zeros(2))


class TestGP:
    def test_interpolates_training_data(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(size=(15, 2))
        y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2
        gp = GaussianProcess(dim=2, noise=1e-7, optimize_noise=False)
        gp.fit(X, y, restarts=1, rng=rng)
        mean, std = gp.predict(X)
        np.testing.assert_allclose(mean, y, atol=1e-2)
        assert np.all(std < 0.15)

    def test_uncertainty_grows_away_from_data(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(0.0, 0.3, size=(10, 1))
        y = X[:, 0] * 2.0
        gp = GaussianProcess(dim=1).fit(X, y, rng=rng)
        _, std_near = gp.predict(np.array([[0.15]]))
        _, std_far = gp.predict(np.array([[0.95]]))
        assert std_far[0] > std_near[0]

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcess(dim=1).predict(np.zeros((1, 1)))

    def test_log_marginal_likelihood_improves_with_fit(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(size=(20, 1))
        y = np.sin(6 * X[:, 0])
        gp_fitted = GaussianProcess(dim=1).fit(X, y, restarts=2, rng=rng)
        gp_fixed = GaussianProcess(dim=1)
        gp_fixed.fit(X, y, restarts=0, max_opt_iter=0, rng=rng)
        assert gp_fitted.log_marginal_likelihood() >= gp_fixed.log_marginal_likelihood() - 1e-6

    def test_requires_consistent_lengths(self):
        with pytest.raises(ValueError):
            GaussianProcess(dim=1).fit(np.zeros((3, 1)), np.zeros(4))


class TestAcquisitions:
    def test_ei_zero_when_certainly_worse(self):
        ei = expected_improvement(np.array([5.0]), np.array([1e-9]), best=0.0)
        assert ei[0] == pytest.approx(0.0, abs=1e-12)

    def test_ei_approaches_improvement_when_certain(self):
        ei = expected_improvement(np.array([-2.0]), np.array([1e-9]), best=0.0)
        assert ei[0] == pytest.approx(2.0, rel=1e-6)

    def test_wei_blend_limits(self):
        mean = np.array([-1.0, 0.5])
        std = np.array([0.5, 0.5])
        exploit = weighted_expected_improvement(mean, std, 0.0, w=1.0)
        explore = weighted_expected_improvement(mean, std, 0.0, w=0.0)
        half = weighted_expected_improvement(mean, std, 0.0, w=0.5)
        np.testing.assert_allclose(half, 0.5 * (exploit + explore), rtol=1e-12)
        with pytest.raises(ValueError):
            weighted_expected_improvement(mean, std, 0.0, w=1.5)

    def test_pof_limits(self):
        assert probability_of_feasibility(np.array([-10.0]), np.array([0.1]))[0] > 0.999
        assert probability_of_feasibility(np.array([10.0]), np.array([0.1]))[0] < 0.001
        assert probability_of_feasibility(np.array([0.0]), np.array([1.0]))[0] == pytest.approx(0.5)

    def test_lcb_orders_by_optimism(self):
        mean = np.array([1.0, 1.0])
        std = np.array([0.1, 2.0])
        lcb = lower_confidence_bound(mean, std, beta=2.0)
        assert lcb[1] < lcb[0]
