"""AC, transient and noise analyses against closed-form references."""

import numpy as np
import pytest

from repro.spice import (
    Circuit,
    Pulse,
    Sin,
    ac_analysis,
    noise_analysis,
    operating_point,
    transient,
    waveform,
)
from repro.spice.devices.passives import BOLTZMANN, ROOM_TEMPERATURE


def rc_lowpass(r=1e3, c=1e-9):
    circuit = Circuit()
    circuit.vsource("V1", "in", "0", 1.0, ac=1.0)
    circuit.resistor("R1", "in", "out", r)
    circuit.capacitor("C1", "out", "0", c)
    return circuit


def test_rc_pole_location_and_rolloff():
    circuit = rc_lowpass()
    op = operating_point(circuit)
    freqs = np.logspace(3, 8, 101)
    ac = ac_analysis(circuit, op, freqs)
    h = ac.v("out")
    f_pole = 1.0 / (2 * np.pi * 1e3 * 1e-9)
    assert waveform.bandwidth_3db(freqs, h) == pytest.approx(f_pole, rel=0.02)
    # -20 dB/decade well above the pole
    g1 = waveform.gain_at(freqs, h, 1e7)
    g2 = waveform.gain_at(freqs, h, 1e8)
    assert g1 - g2 == pytest.approx(20.0, abs=0.5)


def test_rlc_series_resonance():
    circuit = Circuit()
    circuit.vsource("V1", "in", "0", 0.0, ac=1.0)
    circuit.resistor("R1", "in", "a", 10.0)
    circuit.inductor("L1", "a", "b", 1e-6)
    circuit.capacitor("C1", "b", "0", 1e-9)
    op = operating_point(circuit)
    f0 = 1.0 / (2 * np.pi * np.sqrt(1e-6 * 1e-9))
    freqs = np.logspace(np.log10(f0) - 1, np.log10(f0) + 1, 201)
    ac = ac_analysis(circuit, op, freqs)
    h = ac.v("b")
    assert waveform.peak_frequency(freqs, h) == pytest.approx(f0, rel=0.05)
    # Q = (1/R) sqrt(L/C) ~ 3.16 -> peaking ~ Q
    peak_gain = 10 ** (waveform.db20(h).max() / 20.0)
    assert peak_gain == pytest.approx(np.sqrt(1e-6 / 1e-9) / 10.0, rel=0.05)


def test_rc_step_response_time_constant():
    circuit = Circuit()
    circuit.vsource("V1", "in", "0", Pulse(0, 1, delay=1e-7, rise=1e-10, width=20e-6))
    circuit.resistor("R1", "in", "out", 1e3)
    circuit.capacitor("C1", "out", "0", 1e-9)
    result = transient(circuit, 2e-8, 6e-6)
    tau = 1e-6
    for n_tau, expected in ((1, 1 - np.exp(-1)), (2, 1 - np.exp(-2)), (3, 1 - np.exp(-3))):
        value = np.interp(1e-7 + n_tau * tau, result.t, result.v("out"))
        assert value == pytest.approx(expected, abs=0.01)


def test_transient_sin_amplitude_and_phase():
    circuit = Circuit()
    circuit.vsource("V1", "in", "0", Sin(0.0, 1.0, 1e6))
    circuit.resistor("R1", "in", "out", 1e3)
    circuit.resistor("R2", "out", "0", 1e3)
    result = transient(circuit, 5e-9, 3e-6)
    out = result.v("out")
    tail = out[result.t > 1e-6]
    assert np.max(tail) == pytest.approx(0.5, abs=0.01)
    assert np.min(tail) == pytest.approx(-0.5, abs=0.01)


def test_lc_tank_oscillation_frequency():
    """Undriven LC with an initial condition rings at f0 = 1/2pi sqrt(LC)."""
    circuit = Circuit()
    circuit.resistor("Rbig", "a", "0", 1e9)  # keeps DC matrix non-singular
    circuit.inductor("L1", "a", "0", 1e-6)
    circuit.capacitor("C1", "a", "0", 1e-9)
    result = transient(circuit, 2e-9, 2e-6, uic=True, ics={"a": 1.0})
    v = result.v("a")
    rises = waveform.crossings(result.t, v, 0.0, "rise")
    assert len(rises) > 4
    period = np.mean(np.diff(rises))
    f0 = 1.0 / (2 * np.pi * np.sqrt(1e-6 * 1e-9))
    assert 1.0 / period == pytest.approx(f0, rel=0.02)


def test_transient_breakpoints_hit_exactly():
    circuit = Circuit()
    circuit.vsource("V1", "in", "0", Pulse(0, 1, delay=3.3e-7, rise=1e-9, width=2e-7))
    circuit.resistor("R1", "in", "out", 100.0)
    circuit.capacitor("C1", "out", "0", 1e-12)
    result = transient(circuit, 5e-8, 1e-6)
    # the stepper must land exactly on the pulse delay
    assert np.min(np.abs(result.t - 3.3e-7)) < 1e-15


def test_kt_over_c_noise():
    """Total integrated noise of an RC is kT/C independent of R."""
    for r in (1e2, 1e4):
        circuit = rc_lowpass(r=r, c=1e-9)
        op = operating_point(circuit)
        freqs = np.logspace(0, 10, 161)
        result = noise_analysis(circuit, op, freqs, "out")
        expected = np.sqrt(BOLTZMANN * ROOM_TEMPERATURE / 1e-9)
        assert result.output_rms() == pytest.approx(expected, rel=0.03)


def test_resistor_noise_psd_value():
    """Low-frequency output PSD of the RC equals 4kTR."""
    circuit = rc_lowpass(r=1e3, c=1e-12)
    op = operating_point(circuit)
    freqs = np.array([10.0, 100.0])
    result = noise_analysis(circuit, op, freqs, "out")
    assert result.output_psd[0] == pytest.approx(
        4 * BOLTZMANN * ROOM_TEMPERATURE * 1e3, rel=1e-3)


def test_noise_input_referral_divides_by_gain():
    circuit = Circuit()
    circuit.vsource("V1", "in", "0", 0.0, ac=1.0)
    circuit.resistor("RI", "in", "x", 1e3)
    circuit.vcvs("E1", "out", "0", "x", "0", 10.0)
    circuit.resistor("RO", "out", "0", 1e3)
    circuit.capacitor("CX", "x", "0", 1e-15)
    op = operating_point(circuit)
    freqs = np.logspace(1, 6, 11)
    result = noise_analysis(circuit, op, freqs, "out", input_source="V1")
    np.testing.assert_allclose(np.abs(result.gain), 10.0, rtol=1e-6)
    np.testing.assert_allclose(result.input_psd * 100.0, result.output_psd, rtol=1e-9)


def test_noise_dominant_contributors_ranked():
    circuit = rc_lowpass()
    op = operating_point(circuit)
    result = noise_analysis(circuit, op, np.logspace(1, 8, 36), "out")
    ranked = result.dominant_contributors()
    assert ranked[0][0] == "R1:thermal"
