"""SPICE deck export/import round-trips."""

import numpy as np
import pytest

from repro.circuits import FoldedCascodeOTA, StrongArmLatch
from repro.spice import Circuit, NMOS_180, Pulse, operating_point
from repro.spice.errors import NetlistError
from repro.spice.netlist_io import parse_netlist, write_netlist


def test_rc_roundtrip_preserves_op():
    c = Circuit("rc")
    c.vsource("V1", "in", "0", 5.0, ac=1.0)
    c.resistor("R1", "in", "out", "2k")
    c.resistor("R2", "out", "0", "3k")
    c.capacitor("C1", "out", "0", "10p")
    deck = write_netlist(c)
    back = parse_netlist(deck)
    assert back.title == "rc"
    op_a = operating_point(c)
    op_b = operating_point(back)
    assert op_b.v("out") == pytest.approx(op_a.v("out"), rel=1e-9)
    assert back["V1"].ac == pytest.approx(1.0)


def test_pulse_source_roundtrip():
    c = Circuit()
    c.vsource("V1", "a", "0", Pulse(0, 1.8, delay=1e-9, rise=50e-12,
                                    fall=60e-12, width=2e-9, period=8e-9))
    c.resistor("R1", "a", "0", "1k")
    back = parse_netlist(write_netlist(c))
    wave = back["V1"].waveform
    assert wave.v2 == pytest.approx(1.8)
    assert wave.delay == pytest.approx(1e-9)
    assert wave.period == pytest.approx(8e-9)
    assert wave.value(2e-9) == pytest.approx(1.8)


def test_mosfet_circuit_roundtrip_matches_op():
    ota = FoldedCascodeOTA()
    amp = ota.build(ota.nominal())
    deck = write_netlist(amp)
    assert ".model nmos180" in deck
    back = parse_netlist(deck)
    assert len(back) == len(amp)
    op_a = operating_point(amp, nodeset=ota._nodeset())
    op_b = operating_point(back, nodeset=ota._nodeset())
    assert op_b.v("vout") == pytest.approx(op_a.v("vout"), abs=1e-6)
    assert op_b.v("nbias") == pytest.approx(op_a.v("nbias"), abs=1e-9)


def test_latch_roundtrip_device_count():
    latch = StrongArmLatch()
    circuit = latch.build(latch.nominal())
    back = parse_netlist(write_netlist(circuit))
    assert len(back) == len(circuit)
    # non-M device names gain a canonical prefix on export
    assert back["M_S1"].nodes == circuit["S1"].nodes
    m1 = back["M1"]
    assert m1.model.polarity == "n"
    assert m1.w == pytest.approx(circuit["M1"].w)


def test_controlled_sources_roundtrip():
    c = Circuit()
    c.vsource("V1", "a", "0", 1.0)
    c.vsource("VS", "a", "b", 0.0)
    c.resistor("R1", "b", "0", "1k")
    c.vcvs("E1", "e", "0", "a", "0", 3.0)
    c.resistor("RE", "e", "0", "1k")
    c.vccs("G1", "0", "g", "a", "0", 1e-3)
    c.resistor("RG", "g", "0", "1k")
    c.cccs("F1", "0", "f", "VS", 2.0)
    c.resistor("RF", "f", "0", "1k")
    c.ccvs("H1", "h", "0", "VS", 500.0)
    c.resistor("RH", "h", "0", "1k")
    back = parse_netlist(write_netlist(c))
    op_a = operating_point(c)
    op_b = operating_point(back)
    for node in ("e", "g", "f", "h"):
        assert op_b.v(node) == pytest.approx(op_a.v(node), rel=1e-9)


def test_parse_rejects_unknown_model_and_empty():
    with pytest.raises(NetlistError, match="unknown model"):
        parse_netlist("M1 d g s b mystery_model W=1e-6 L=1e-6\n.end")
    with pytest.raises(NetlistError, match="empty"):
        parse_netlist("* nothing here\n.end")


def test_parse_custom_model_card():
    deck = """* custom
.model mymos NMOS KP=0.0005 VTO=0.4 LAMBDA=0.1 GAMMA=0.3 PHI=0.8 COX=0.01
VDD vdd 0 1.8
M1 vdd vdd 0 0 mymos W=1e-05 L=1e-06 M=2
.end
"""
    circuit = parse_netlist(deck)
    m1 = circuit["M1"]
    assert m1.model.kp == pytest.approx(5e-4)
    assert m1.model.vto == pytest.approx(0.4)
    assert m1.m == 2
