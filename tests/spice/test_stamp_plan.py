"""Numerical equivalence of the compiled stamping plans vs the legacy path.

The plan path (baked linear Jacobian, vectorized MOSFET/diode scatter,
per-step affine transient companions, batched AC/noise solves) must produce
the same physics as the legacy per-device restamp loop.  The two paths sum
identical per-device stamps in different orders, so agreement is pinned at
assembly level to summation round-off and at analysis level to 1e-12-class
tolerances (converged Newton solutions are one quadratic step past the
1e-9 update tolerance; transient trajectories accumulate round-off over
hundreds of steps, bounded here at the measurement level).
"""

import numpy as np
import pytest

from repro.circuits import FoldedCascodeOTA, StrongArmLatch
from repro.core.engine import EvalEngine
from repro.spice import (
    Circuit,
    ac_analysis,
    dc_sweep,
    noise_analysis,
    operating_point,
    stamping,
    transient,
)
from repro.spice.analysis.op import _assemble_factory


def _assembled(compiled, x, gmin, scale, mode):
    with stamping(mode):
        sys = _assemble_factory(compiled)(x, gmin, scale)
        return sys.J.copy(), sys.f.copy()


def _diode_rc_circuit():
    c = Circuit("diode_rc")
    c.vsource("V1", "in", "0", 1.5, ac=1.0)
    c.resistor("R1", "in", "a", 1e3)
    c.diode("D1", "a", "out", i_s=2e-14, n=1.1, cj0=10e-15)
    c.resistor("R2", "out", "0", 5e3)
    c.capacitor("C1", "out", "0", 2e-12)
    return c


ASSEMBLY_CIRCUITS = [
    ("folded_cascode", lambda: FoldedCascodeOTA().build(FoldedCascodeOTA().nominal())),
    ("strongarm", lambda: StrongArmLatch().build(StrongArmLatch().nominal())),
    ("diode_rc", _diode_rc_circuit),
]


@pytest.mark.parametrize("name,builder", ASSEMBLY_CIRCUITS, ids=[n for n, _ in ASSEMBLY_CIRCUITS])
def test_assembled_system_matches_legacy(name, builder):
    """J and f agree entrywise at random iterates, gmins and source scales."""
    circuit = builder()
    compiled = circuit.compile()
    rng = np.random.default_rng(7)
    for gmin, scale in ((0.0, 1.0), (1e-6, 1.0), (1e-9, 0.35)):
        x = rng.normal(0.6, 0.8, compiled.size)
        J_legacy, f_legacy = _assembled(compiled, x, gmin, scale, "legacy")
        J_plan, f_plan = _assembled(compiled, x, gmin, scale, "plan")
        np.testing.assert_allclose(J_plan, J_legacy, rtol=1e-10, atol=1e-13)
        scale_f = max(1.0, np.abs(f_legacy).max())
        np.testing.assert_allclose(f_plan, f_legacy, rtol=1e-10,
                                   atol=1e-12 * scale_f)


def test_folded_cascode_dc_ac_noise_match_legacy():
    fc = FoldedCascodeOTA()
    params = fc.nominal()
    freqs = np.logspace(1, 9, 41)

    amp_legacy = fc.build(params)
    with stamping("legacy"):
        op_l = operating_point(amp_legacy, nodeset=fc._nodeset())
        ac_l = ac_analysis(amp_legacy, op_l, freqs)
        nz_l = noise_analysis(amp_legacy, op_l, freqs, "vout", input_source="VIP")
    amp_plan = fc.build(params)
    with stamping("plan"):
        op_p = operating_point(amp_plan, nodeset=fc._nodeset())
        ac_p = ac_analysis(amp_plan, op_p, freqs)
        nz_p = noise_analysis(amp_plan, op_p, freqs, "vout", input_source="VIP")

    np.testing.assert_allclose(op_p.x, op_l.x, rtol=1e-12, atol=1e-12)
    np.testing.assert_allclose(ac_p.solutions, ac_l.solutions,
                               rtol=1e-9, atol=1e-12)
    np.testing.assert_allclose(nz_p.output_psd, nz_l.output_psd,
                               rtol=1e-9, atol=0)
    np.testing.assert_allclose(nz_p.gain, nz_l.gain, rtol=1e-9, atol=1e-12)


def test_folded_cascode_measure_matches_legacy():
    """Full evaluation loop (OP + AC + spurs + noise + transient settling)."""
    fc = FoldedCascodeOTA()
    params = fc.nominal()
    with stamping("legacy"):
        legacy = fc.measure(params)
    with stamping("plan"):
        plan = fc.measure(params)
    assert set(plan) == set(legacy)
    for key in legacy:
        assert plan[key] == pytest.approx(legacy[key], rel=1e-9, abs=1e-12), key


def test_strongarm_transient_matches_legacy():
    """The regenerative latch transient: trajectories stay together to
    round-off even through the positive-feedback resolution phase."""
    latch = StrongArmLatch()
    params = latch.nominal()
    with stamping("legacy"):
        legacy = latch.measure(params)
    with stamping("plan"):
        plan = latch.measure(params)
    assert set(plan) == set(legacy)
    for key in legacy:
        # Reset-residual metrics are ~1e-9 V differences of rail-level
        # signals, so agreement there is absolute (round-off), not relative.
        assert plan[key] == pytest.approx(legacy[key], rel=1e-6, abs=1e-12), key


def test_transient_solutions_match_legacy_rc():
    c_legacy = _diode_rc_circuit()
    with stamping("legacy"):
        tr_l = transient(c_legacy, 1e-9, 200e-9)
    c_plan = _diode_rc_circuit()
    with stamping("plan"):
        tr_p = transient(c_plan, 1e-9, 200e-9)
    np.testing.assert_allclose(tr_p.t, tr_l.t, rtol=0, atol=0)
    np.testing.assert_allclose(tr_p.solutions, tr_l.solutions,
                               rtol=1e-10, atol=1e-12)


def test_dc_sweep_tracks_waveform_mutation():
    """Regression: the plan re-reads source levels every assembly, so
    dc_sweep's waveform swapping must flow through the baked plan."""
    def build():
        c = Circuit("divider")
        c.vsource("V1", "in", "0", 1.0)
        c.resistor("R1", "in", "mid", 1e3)
        c.resistor("R2", "mid", "0", 1e3)
        return c

    values = np.linspace(0.0, 2.0, 9)
    with stamping("plan"):
        sweep = dc_sweep(build(), "V1", values)
    # The Newton attempt carries a 1e-12 gmin to ground, loading the 1 kOhm
    # divider by ~5e-10 relative — solver physics, not a plan artifact.
    np.testing.assert_allclose(sweep.v("mid"), values / 2.0, rtol=1e-8, atol=1e-12)
    with stamping("legacy"):
        sweep_l = dc_sweep(build(), "V1", values)
    np.testing.assert_allclose(sweep.solutions, sweep_l.solutions,
                               rtol=1e-10, atol=1e-13)


def test_optimizer_history_matches_legacy():
    """End to end: identical optimizer histories through the EvalEngine."""
    from repro.baselines import RandomSearch

    problem_legacy = FoldedCascodeOTA().problem()
    with stamping("legacy"):
        hist_l = RandomSearch(problem_legacy, budget=4, seed=3,
                              engine=EvalEngine()).run()
    problem_plan = FoldedCascodeOTA().problem()
    with stamping("plan"):
        hist_p = RandomSearch(problem_plan, budget=4, seed=3,
                              engine=EvalEngine()).run()
    np.testing.assert_array_equal(np.asarray(hist_p.X), np.asarray(hist_l.X))
    np.testing.assert_allclose(np.asarray(hist_p.F), np.asarray(hist_l.F),
                               rtol=1e-7, atol=1e-12)


def test_operating_point_lookups_match_scan():
    """device_map-backed accessors agree with a manual netlist scan."""
    fc = FoldedCascodeOTA()
    amp = fc.build(fc.nominal())
    op = operating_point(amp, nodeset=fc._nodeset())
    compiled = op.compiled

    from repro.spice.devices.mosfet import MOSFET
    from repro.spice.devices.sources import VoltageSource

    scan_ops = {dev.name: dev.operating_point(op.x, idx)
                for dev, idx in compiled.devices_with_indices()
                if isinstance(dev, MOSFET)}
    fast_ops = op.mosfet_ops()
    assert set(fast_ops) == set(scan_ops)
    for name in scan_ops:
        assert fast_ops[name].ids == scan_ops[name].ids
        assert op.mosfet_op(name).gm == scan_ops[name].gm

    for dev, idx in compiled.devices_with_indices():
        if isinstance(dev, VoltageSource):
            expected = -dev.voltage_at(None) * op.x[idx.branches[0]]
            assert op.source_power(dev.name) == expected
    with pytest.raises(KeyError):
        op.mosfet_op("VDD")          # exists but is not a MOSFET
    with pytest.raises(KeyError):
        op.source_power("M1")        # exists but is not a voltage source
    with pytest.raises(KeyError):
        op.mosfet_op("NOPE")


def test_engine_hotpath_report_accumulates():
    problem = FoldedCascodeOTA().problem()
    engine = EvalEngine()
    x = np.array([FoldedCascodeOTA().nominal()[n] for n in problem.space.names])
    engine.evaluate_batch(problem, x[None, :])
    report = engine.hotpath_report()
    assert report["n_sim_calls"] == 1
    assert report["newton_iterations"] > 0
    assert report["assemble_s"] > 0
    assert report["solve_s"] > 0
    assert report["ac_solves"] > 0
    assert report["dispatch_s"] >= report["assemble_s"]
    assert report["overhead_s"] >= 0.0
