"""Waveform measurement helpers and unit parsing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.spice import parse_value, format_eng, waveform
from repro.spice.errors import AnalysisError


class TestUnits:
    @pytest.mark.parametrize("text,expected", [
        ("1k", 1e3), ("2.5k", 2.5e3), ("100n", 1e-7), ("3meg", 3e6),
        ("0.5u", 5e-7), ("10p", 1e-11), ("1.5f", 1.5e-15), ("2g", 2e9),
        ("100nF", 1e-7), ("4.7K", 4.7e3), ("-3m", -3e-3), ("1e-9", 1e-9),
        (42, 42.0), (3.14, 3.14),
    ])
    def test_parse(self, text, expected):
        assert parse_value(text) == pytest.approx(expected, rel=1e-12)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_value("abc")

    def test_format_eng(self):
        assert format_eng(2.5e-9, "s") == "2.5 ns"
        assert format_eng(3300.0, "Ohm") == "3.3 kOhm"
        assert format_eng(0.0) == "0"

    @given(st.floats(min_value=1e-14, max_value=1e13))
    def test_roundtrip_magnitude(self, value):
        text = format_eng(value, digits=12)
        number, suffix = text.split(" ") if " " in text else (text, "")
        scale = {"T": 1e12, "G": 1e9, "M": 1e6, "k": 1e3, "": 1.0, "m": 1e-3,
                 "u": 1e-6, "n": 1e-9, "p": 1e-12, "f": 1e-15}[suffix]
        assert float(number) * scale == pytest.approx(value, rel=1e-9)


class TestMeasurements:
    def test_crossings_interpolate(self):
        t = np.array([0.0, 1.0, 2.0, 3.0])
        y = np.array([0.0, 1.0, 0.0, 1.0])
        rises = waveform.crossings(t, y, 0.5, "rise")
        np.testing.assert_allclose(rises, [0.5, 2.5])
        falls = waveform.crossings(t, y, 0.5, "fall")
        np.testing.assert_allclose(falls, [1.5])

    def test_delay_between_edges(self):
        t = np.linspace(0, 10, 1001)
        a = (t > 2).astype(float)
        b = (t > 3.5).astype(float)
        delay = waveform.delay_between(t, a, b, 0.5, 0.5, "rise", "rise")
        assert delay == pytest.approx(1.5, abs=0.02)

    def test_delay_between_slack_allows_early_target(self):
        t = np.linspace(0, 10, 1001)
        a = (t > 2.0).astype(float)
        b = (t > 1.9).astype(float)  # target leads the reference slightly
        with pytest.raises(AnalysisError):
            # without slack, the only crossing is "before" the reference
            waveform.delay_between(t, a, b, 0.5, 0.5, "rise", "rise")
        delay = waveform.delay_between(t, a, b, 0.5, 0.5, "rise", "rise", slack=0.5)
        assert delay == pytest.approx(-0.1, abs=0.02)

    def test_settling_time_exponential(self):
        t = np.linspace(0, 10, 2001)
        y = 1 - np.exp(-t)
        # 1% settling of a pure exponential: ln(100) ~ 4.605 time constants
        settle = waveform.settling_time(t, y, final=1.0, tolerance=0.01)
        assert settle == pytest.approx(np.log(100), abs=0.02)

    def test_settling_time_already_settled(self):
        t = np.linspace(0, 1, 101)
        y = np.ones_like(t)
        assert waveform.settling_time(t, y, final=1.0) == 0.0

    def test_overshoot(self):
        t = np.linspace(0, 1, 101)
        y = 1 - np.exp(-8 * t) * np.cos(20 * t)
        assert waveform.overshoot(y, final=1.0) > 0.1
        assert waveform.overshoot(np.linspace(0, 1, 50), final=1.0) == 0.0

    def test_rise_time_linear_ramp(self):
        t = np.linspace(0, 1, 1001)
        y = np.clip(t * 2, 0, 1)  # 0 -> 1 over 0.5
        assert waveform.rise_time(t, y) == pytest.approx(0.8 * 0.5, abs=0.01)

    def test_phase_margin_single_pole(self):
        freqs = np.logspace(0, 6, 301)
        h = 1000.0 / (1 + 1j * freqs / 100.0)  # pole at 100 Hz, UGF at ~1e5
        assert waveform.unity_gain_frequency(freqs, h) == pytest.approx(1e5, rel=0.01)
        assert waveform.phase_margin(freqs, h) == pytest.approx(90.0, abs=1.0)

    def test_phase_margin_two_pole(self):
        freqs = np.logspace(0, 7, 501)
        h = 1000.0 / ((1 + 1j * freqs / 100.0) * (1 + 1j * freqs / 1e5))
        pm = waveform.phase_margin(freqs, h)
        assert 40.0 < pm < 55.0  # ~45 deg with the second pole at the UGF

    def test_gain_margin_three_pole(self):
        freqs = np.logspace(0, 8, 601)
        h = 100.0 / ((1 + 1j * freqs / 1e3) ** 3)
        gm = waveform.gain_margin_db(freqs, h)
        # |H| at phase -180 (f = sqrt(3)*1e3): 100/8 -> GM = -20log10(12.5)
        assert gm == pytest.approx(-20 * np.log10(100.0 / 8.0), abs=0.5)

    def test_gain_margin_infinite_for_single_pole(self):
        freqs = np.logspace(0, 6, 201)
        h = 10.0 / (1 + 1j * freqs / 100.0)
        assert waveform.gain_margin_db(freqs, h) == np.inf

    def test_peaking_db(self):
        freqs = np.logspace(0, 4, 201)
        flat = np.ones_like(freqs, dtype=complex)
        assert waveform.peaking_db(freqs, flat) == pytest.approx(0.0, abs=1e-9)
