"""MOSFET model: square-law values, derivative consistency, regions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spice import MOSFET, NMOS_180, PMOS_180, Circuit, operating_point
from repro.spice.devices.mosfet import MOSModel


def make_nmos(w=10e-6, l=1e-6, m=1, model=NMOS_180):
    return MOSFET("M1", "d", "g", "s", "b", model, w, l, m)


def test_saturation_current_square_law():
    model = MOSModel("ideal", "n", kp=200e-6, vto=0.5, lam=0.0, gamma=0.0, smooth=1e-5)
    dev = make_nmos(model=model)
    vgs, vds = 1.0, 1.5  # deep saturation
    current, _, _ = dev.terminal_current(vds, vgs, 0.0, 0.0)
    expected = 0.5 * 200e-6 * 10 * (vgs - 0.5) ** 2
    assert current == pytest.approx(expected, rel=0.01)


def test_triode_current_square_law():
    model = MOSModel("ideal", "n", kp=200e-6, vto=0.5, lam=0.0, gamma=0.0, smooth=1e-5)
    dev = make_nmos(model=model)
    vgs, vds = 1.5, 0.05  # deep triode
    current, _, _ = dev.terminal_current(vds, vgs, 0.0, 0.0)
    expected = 200e-6 * 10 * ((vgs - 0.5) * vds - vds**2 / 2)
    assert current == pytest.approx(expected, rel=0.02)


def test_cutoff_leakage_is_tiny():
    dev = make_nmos()
    current, _, _ = dev.terminal_current(1.8, 0.0, 0.0, 0.0)
    assert abs(current) < 1e-9


def test_multiplier_scales_current():
    single = make_nmos(m=1)
    quad = make_nmos(m=4)
    i1, _, _ = single.terminal_current(1.0, 1.2, 0.0, 0.0)
    i4, _, _ = quad.terminal_current(1.0, 1.2, 0.0, 0.0)
    assert i4 == pytest.approx(4 * i1, rel=1e-12)


def test_pmos_mirror_symmetry():
    nmos = make_nmos(model=NMOS_180)
    pmos = MOSFET("M2", "d", "g", "s", "b", PMOS_180, 10e-6, 1e-6)
    i_n, _, _ = nmos.terminal_current(1.0, 1.2, 0.0, 0.0)
    i_p, _, _ = pmos.terminal_current(-1.0, -1.2, 0.0, 0.0)
    # PMOS current flows out of the drain; magnitudes differ by the kp ratio
    # and the polarity-specific channel-length modulation at vds = 1 V.
    assert i_p < 0
    lam_scale = 0.5  # lref / L for these geometries
    clm_ratio = (1 + PMOS_180.lam * lam_scale) / (1 + NMOS_180.lam * lam_scale)
    expected = PMOS_180.kp / NMOS_180.kp * clm_ratio
    assert abs(i_p) / i_n == pytest.approx(expected, rel=1e-6)


@settings(max_examples=60, deadline=None)
@given(
    vd=st.floats(-2.0, 2.0),
    vg=st.floats(0.0, 2.0),
    vs=st.floats(0.0, 1.0),
)
def test_derivatives_match_finite_differences(vd, vg, vs):
    """Property: analytic Jacobian == numerical Jacobian everywhere."""
    dev = make_nmos()
    eps = 1e-7
    _, derivs, _ = dev.terminal_current(vd, vg, vs, 0.0)
    volts = [vd, vg, vs, 0.0]
    for k in range(4):
        hi = volts.copy()
        lo = volts.copy()
        hi[k] += eps
        lo[k] -= eps
        i_hi, _, _ = dev.terminal_current(*hi)
        i_lo, _, _ = dev.terminal_current(*lo)
        numeric = (i_hi - i_lo) / (2 * eps)
        assert derivs[k] == pytest.approx(numeric, rel=1e-3, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(vgs=st.floats(0.0, 2.0), vds=st.floats(0.0, 2.0))
def test_current_monotone_in_vgs_and_vds(vgs, vds):
    """Property: Ids is non-decreasing in both vgs and vds (lam >= 0)."""
    dev = make_nmos()
    i0, _, _ = dev.terminal_current(vds, vgs, 0.0, 0.0)
    i_vgs, _, _ = dev.terminal_current(vds, vgs + 0.05, 0.0, 0.0)
    i_vds, _, _ = dev.terminal_current(vds + 0.05, vgs, 0.0, 0.0)
    assert i_vgs >= i0 - 1e-15
    assert i_vds >= i0 - 1e-15


def test_source_drain_swap_continuity():
    """Current must be continuous and odd-symmetric through vds = 0."""
    dev = make_nmos()
    i_plus, _, _ = dev.terminal_current(1e-6, 1.0, 0.0, 0.0)
    i_minus, _, _ = dev.terminal_current(-1e-6, 1.0, 0.0, 0.0)
    assert i_plus == pytest.approx(-i_minus, rel=1e-3)
    assert abs(i_plus) < 1e-6


def test_body_effect_raises_threshold():
    dev = make_nmos()
    op_low = dev._ids(1.0, 1.0, 0.0)[-1]
    op_high = dev._ids(1.0, 1.0, 0.5)[-1]
    assert op_high.vth > op_low.vth
    assert op_high.ids < op_low.ids


def test_operating_regions_reported():
    dev = make_nmos()
    assert dev._ids(1.0, 1.5, 0.0)[-1].region == "saturation"
    assert dev._ids(1.5, 0.1, 0.0)[-1].region == "triode"
    assert dev._ids(0.2, 1.0, 0.0)[-1].region == "cutoff"


def test_saturation_margin_sign():
    dev = make_nmos()
    assert dev._ids(1.0, 1.5, 0.0)[-1].saturation_margin > 0
    assert dev._ids(1.5, 0.1, 0.0)[-1].saturation_margin < 0


def test_common_source_gain_matches_smallsignal():
    """AC gain of a CS stage equals -gm*(RD || ro) from the OP record."""
    from repro.spice import ac_analysis

    c = Circuit()
    c.vsource("VDD", "vdd", "0", 3.3)
    c.vsource("VIN", "g", "0", 0.7, ac=1.0)
    c.resistor("RD", "vdd", "d", "10k")
    c.mosfet("M1", "d", "g", "0", "0", NMOS_180, 10e-6, 1e-6)
    op = operating_point(c)
    mop = op.mosfet_op("M1")
    assert mop.region == "saturation"
    ac = ac_analysis(c, op, np.array([10.0, 100.0]))
    gain = abs(ac.v("d")[0])
    expected = mop.gm / (1.0 / 10e3 + mop.gds)
    assert gain == pytest.approx(expected, rel=1e-6)


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        make_nmos(w=-1e-6)
    with pytest.raises(ValueError):
        MOSFET("M", "d", "g", "s", "b", NMOS_180, 1e-6, 1e-6, m=0)
    with pytest.raises(ValueError):
        MOSModel("bad", "x")
