"""DC correctness on linear circuits with known closed-form answers."""

import numpy as np
import pytest

from repro.spice import Circuit, dc_sweep, operating_point
from repro.spice.errors import NetlistError


def test_voltage_divider():
    c = Circuit()
    c.vsource("V1", "in", "0", 12.0)
    c.resistor("R1", "in", "mid", "2k")
    c.resistor("R2", "mid", "0", "1k")
    op = operating_point(c)
    assert op.v("mid") == pytest.approx(4.0, rel=1e-6)
    assert op.i("V1") == pytest.approx(-12.0 / 3000.0, rel=1e-6)
    assert op.source_power("V1") == pytest.approx(12.0**2 / 3000.0, rel=1e-6)


def test_current_source_into_resistor():
    c = Circuit()
    c.isource("I1", "0", "a", 1e-3)  # pushes 1 mA into node a
    c.resistor("R1", "a", "0", "5k")
    op = operating_point(c)
    assert op.v("a") == pytest.approx(5.0, rel=1e-6)


def test_superposition_two_sources():
    c = Circuit()
    c.vsource("V1", "a", "0", 10.0)
    c.vsource("V2", "b", "0", 5.0)
    c.resistor("R1", "a", "m", "1k")
    c.resistor("R2", "b", "m", "1k")
    c.resistor("R3", "m", "0", "1k")
    op = operating_point(c)
    assert op.v("m") == pytest.approx(5.0, rel=1e-6)


def test_wheatstone_bridge_balanced():
    c = Circuit()
    c.vsource("V1", "top", "0", 10.0)
    c.resistor("R1", "top", "l", "1k")
    c.resistor("R2", "top", "r", "1k")
    c.resistor("R3", "l", "0", "2k")
    c.resistor("R4", "r", "0", "2k")
    c.resistor("RB", "l", "r", "10k")
    op = operating_point(c)
    assert op.v("l") == pytest.approx(op.v("r"), abs=1e-9)


def test_inductor_is_dc_short():
    c = Circuit()
    c.vsource("V1", "in", "0", 3.0)
    c.resistor("R1", "in", "a", "1k")
    c.inductor("L1", "a", "b", "1m")
    c.resistor("R2", "b", "0", "1k")
    op = operating_point(c)
    assert op.v("a") == pytest.approx(op.v("b"), abs=1e-9)
    assert op.v("b") == pytest.approx(1.5, rel=1e-6)


def test_capacitor_is_dc_open():
    c = Circuit()
    c.vsource("V1", "in", "0", 3.0)
    c.resistor("R1", "in", "a", "1k")
    c.capacitor("C1", "a", "0", "1n")
    c.resistor("R2", "a", "0", "9k")
    op = operating_point(c)
    assert op.v("a") == pytest.approx(2.7, rel=1e-6)


def test_floating_node_rejected():
    c = Circuit()
    c.vsource("V1", "in", "0", 1.0)
    c.resistor("R1", "in", "a", "1k")
    c.capacitor("C1", "a", "float_me", "1n")  # float_me has no DC path
    c.resistor("R2", "a", "0", "1k")
    with pytest.raises(NetlistError, match="float_me"):
        operating_point(c)


def test_duplicate_device_name_rejected():
    c = Circuit()
    c.resistor("R1", "a", "0", "1k")
    with pytest.raises(NetlistError):
        c.resistor("R1", "a", "0", "2k")


def test_dc_sweep_linear_response():
    c = Circuit()
    c.vsource("V1", "in", "0", 0.0)
    c.resistor("R1", "in", "out", "1k")
    c.resistor("R2", "out", "0", "3k")
    values = np.linspace(0.0, 4.0, 9)
    sweep = dc_sweep(c, "V1", values)
    np.testing.assert_allclose(sweep.v("out"), values * 0.75, atol=1e-9)
    # source waveform restored after the sweep
    assert c["V1"].voltage_at(None) == 0.0


def test_controlled_sources():
    # VCVS amplifier: vout = 4 * vin
    c = Circuit()
    c.vsource("V1", "in", "0", 0.5)
    c.resistor("RI", "in", "0", "1k")
    c.vcvs("E1", "out", "0", "in", "0", 4.0)
    c.resistor("RL", "out", "0", "1k")
    op = operating_point(c)
    assert op.v("out") == pytest.approx(2.0, rel=1e-9)

    # VCCS: i = 1mS * vin into 2k -> 1V at node a
    c2 = Circuit()
    c2.vsource("V1", "in", "0", 0.5)
    c2.resistor("RI", "in", "0", "1k")
    c2.vccs("G1", "0", "a", "in", "0", 1e-3)
    c2.resistor("RL", "a", "0", "2k")
    op2 = operating_point(c2)
    assert op2.v("a") == pytest.approx(0.5 * 1e-3 * 2e3, rel=1e-6)


def test_cccs_and_ccvs_reference_sense_source():
    # CCCS doubles the current of the sense branch.
    c = Circuit()
    c.vsource("V1", "in", "0", 1.0)
    c.vsource("VS", "in", "a", 0.0)  # sense: carries i = 1V/1k = 1 mA
    c.resistor("R1", "a", "0", "1k")
    c.cccs("F1", "0", "b", "VS", 2.0)
    c.resistor("RB", "b", "0", "1k")
    op = operating_point(c)
    assert op.v("b") == pytest.approx(2.0, rel=1e-6)

    c2 = Circuit()
    c2.vsource("V1", "in", "0", 1.0)
    c2.vsource("VS", "in", "a", 0.0)
    c2.resistor("R1", "a", "0", "1k")
    c2.ccvs("H1", "b", "0", "VS", 3000.0)  # v(b) = 3000 * 1 mA = 3 V
    c2.resistor("RB", "b", "0", "1k")
    op2 = operating_point(c2)
    assert op2.v("b") == pytest.approx(3.0, rel=1e-6)


def test_missing_sense_source_raises():
    c = Circuit()
    c.vsource("V1", "a", "0", 1.0)
    c.resistor("R1", "a", "0", "1k")
    c.cccs("F1", "0", "b", "NOPE", 2.0)
    c.resistor("RB", "b", "0", "1k")
    with pytest.raises(NetlistError, match="NOPE"):
        operating_point(c)


def test_diode_forward_drop():
    c = Circuit()
    c.vsource("V1", "in", "0", 5.0)
    c.resistor("R1", "in", "a", "1k")
    c.diode("D1", "a", "0")
    op = operating_point(c)
    # ~0.55-0.75 V forward drop at ~4.4 mA
    assert 0.4 < op.v("a") < 0.85
    i = (5.0 - op.v("a")) / 1000.0
    assert i == pytest.approx(1e-14 * (np.exp(op.v("a") / 0.025852) - 1.0), rel=1e-3)


def test_include_subcircuit():
    sub = Circuit("divider")
    sub.resistor("RA", "in", "out", "1k")
    sub.resistor("RB", "out", "0", "1k")
    main = Circuit()
    main.vsource("V1", "n1", "0", 2.0)
    main.include(sub, "X1.", {"in": "n1", "out": "n2"})
    op = operating_point(main)
    assert op.v("n2") == pytest.approx(1.0, rel=1e-6)
    assert main["X1.RA"].nodes == ("n1", "n2")
