"""Parasitic estimation and solver robustness / failure injection."""

import numpy as np
import pytest

from repro.spice import (
    Circuit,
    NMOS_180,
    ParasiticEstimator,
    estimate_parasitics,
    operating_point,
    transient,
)
from repro.spice.errors import ConvergenceError, NetlistError, AnalysisError
from repro.spice.analysis.ac import ac_analysis


def inverter() -> Circuit:
    c = Circuit()
    c.vsource("VDD", "vdd", "0", 1.8)
    c.vsource("VIN", "in", "0", 0.9)
    c.mosfet("MN", "out", "in", "0", "0", NMOS_180, 2e-6, 0.18e-6)
    c.resistor("RL", "vdd", "out", "10k")
    return c


class TestParasitics:
    def test_node_capacitance_scales_with_width(self):
        narrow = inverter()
        estimator = ParasiticEstimator()
        caps_narrow = estimator.node_capacitance(narrow)

        wide = Circuit()
        wide.vsource("VDD", "vdd", "0", 1.8)
        wide.vsource("VIN", "in", "0", 0.9)
        wide.mosfet("MN", "out", "in", "0", "0", NMOS_180, 20e-6, 0.18e-6)
        wide.resistor("RL", "vdd", "out", "10k")
        caps_wide = estimator.node_capacitance(wide)
        assert caps_wide["out"] > caps_narrow["out"]

    def test_apply_adds_named_capacitors(self):
        c = inverter()
        n_before = len(c)
        added = estimate_parasitics(c, skip={"vdd"})
        assert added == len(c) - n_before
        names = {d.name for d in c.devices}
        assert "CPAR_out" in names and "CPAR_vdd" not in names

    def test_parasitics_do_not_break_op(self):
        c = inverter()
        estimate_parasitics(c)
        op = operating_point(c)
        assert 0.0 < op.v("out") < 1.8


class TestSolverRobustness:
    def test_warm_start_reuses_solution(self):
        c = inverter()
        op1 = operating_point(c)
        op2 = operating_point(c, x0=op1.x)
        np.testing.assert_allclose(op1.x, op2.x, atol=1e-8)

    def test_stiff_cross_coupled_pair_converges(self):
        """Bistable latch DC: homotopy must still find *an* equilibrium."""
        c = Circuit()
        c.vsource("VDD", "vdd", "0", 1.8)
        c.resistor("R1", "vdd", "a", "10k")
        c.resistor("R2", "vdd", "b", "10k")
        c.mosfet("M1", "a", "b", "0", "0", NMOS_180, 10e-6, 0.18e-6)
        c.mosfet("M2", "b", "a", "0", "0", NMOS_180, 10e-6, 0.18e-6)
        op = operating_point(c)
        assert np.all(np.isfinite(op.x))

    def test_nodeset_steers_equilibrium(self):
        c = Circuit()
        c.vsource("VDD", "vdd", "0", 1.8)
        c.resistor("R1", "vdd", "a", "10k")
        c.resistor("R2", "vdd", "b", "10k")
        c.mosfet("M1", "a", "b", "0", "0", NMOS_180, 10e-6, 0.18e-6)
        c.mosfet("M2", "b", "a", "0", "0", NMOS_180, 10e-6, 0.18e-6)
        op_a_high = operating_point(c, nodeset={"a": 1.8, "b": 0.0, "vdd": 1.8})
        assert op_a_high.v("a") > op_a_high.v("b")

    def test_empty_circuit_rejected(self):
        with pytest.raises(NetlistError):
            Circuit().compile()

    def test_transient_argument_validation(self):
        c = inverter()
        with pytest.raises(AnalysisError):
            transient(c, 1e-9, -1.0)
        with pytest.raises(AnalysisError):
            transient(c, 1e-6, 1e-9)

    def test_ac_requires_stimulus(self):
        c = Circuit()
        c.vsource("V1", "a", "0", 1.0)  # no ac magnitude anywhere
        c.resistor("R1", "a", "0", "1k")
        op = operating_point(c)
        with pytest.raises(AnalysisError):
            ac_analysis(c, op, np.array([1e3]))

    def test_unknown_node_lookup(self):
        c = inverter()
        compiled = c.compile()
        with pytest.raises(NetlistError):
            compiled.node("nope")
        with pytest.raises(NetlistError):
            compiled.branch_current(np.zeros(compiled.size), "nope")
