"""Cross-module integration: the paper's pipelines end to end (scaled down)."""

import numpy as np
import pytest

from repro.baselines import SimulatedAnnealing
from repro.circuits import CTLE, InverterChain, LDORegulator
from repro.core import DNNOpt
from repro.sensitivity import reduce_problem, sensitivity_analysis
from repro.spice import estimate_parasitics


def test_dnnopt_optimizes_a_real_circuit():
    """DNN-Opt on the CTLE: find a feasible equalizer within a tiny budget,
    starting from the designer nominal (the Table V protocol)."""
    circuit = CTLE()
    problem = circuit.problem()
    nominal = np.array([circuit.nominal()[n] for n in problem.space.names])
    opt = DNNOpt(problem, budget=45, seed=0, n_init=10, n_elite=6,
                 critic_epochs=8, actor_epochs=10, max_pseudo=1200,
                 initial_designs=nominal[None, :], stop_when_feasible=True)
    history = opt.run()
    assert history.any_feasible, "DNN-Opt failed to fine-tune the CTLE"
    assert history.evals_to_first_feasible <= 45


def test_sensitivity_reduction_pipeline_on_ldo():
    """Eq. 7 recipe: sensitivity -> reduced problem -> optimize."""
    circuit = LDORegulator()
    problem = circuit.problem()
    nominal = np.array([circuit.nominal()[n] for n in problem.space.names])
    sens = sensitivity_analysis(problem, nominal, step=0.1)
    # The paper's recipe targets the *failing* constraints.
    nominal_row = problem.evaluate(nominal)
    violations = problem.normalize(nominal_row)[1:]
    failing = [s.name for s, v in zip(problem.specs, violations) if v > 0]
    assert failing, "LDO nominal should start with at least one failing spec"
    reduced = reduce_problem(problem, sens, threshold=0.02, min_keep=3,
                             metrics=failing)
    assert 3 <= reduced.dim <= problem.dim

    opt = DNNOpt(reduced, budget=40, seed=1, n_init=10, n_elite=5,
                 critic_epochs=8, actor_epochs=10, max_pseudo=1000,
                 initial_designs=nominal[reduced.keep_columns][None, :],
                 stop_when_feasible=True)
    history = opt.run()
    assert history.any_feasible


def test_sa_baseline_on_reduced_inverter_chain():
    circuit = InverterChain()
    problem = circuit.problem()
    nominal = np.array([circuit.nominal()[n] for n in problem.space.names])
    sa = SimulatedAnnealing(problem, 40, seed=2, x0=nominal, initial_step=0.1)
    history = sa.run()
    assert history.n_evals == 40
    assert history.best_fom <= history.fom[0] + 1e-12


def test_parasitic_estimator_degrades_timing():
    """MLParest substitute: adding estimated parasitics slows the chain."""
    circuit = InverterChain()
    fast = circuit.measure(circuit.nominal())

    slowed = InverterChain()
    original_build = slowed.build

    def build_with_parasitics(params):
        netlist = original_build(params)
        added = estimate_parasitics(netlist, skip={"vdd", "n0"})
        assert added > 0
        return netlist

    slowed.build = build_with_parasitics
    slow = slowed.measure(slowed.nominal())
    assert slow["delay_rise_s"] > fast["delay_rise_s"]


def test_histories_comparable_across_optimizers():
    """All optimizers report the same FoM metric so curves are comparable."""
    problem = CTLE().problem()
    x = np.array([CTLE().nominal()[n] for n in problem.space.names])
    from repro.core.fom import fom_from_raw

    row = problem.evaluate(x)
    value = fom_from_raw(problem, row[None, :])[0]
    assert np.isfinite(value) and value >= 0.0
