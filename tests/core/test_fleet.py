"""Fleet control plane: registry, fair scheduling, elasticity, metrics.

Load-bearing contracts pinned here:

* two concurrent Studies sharing one 2-worker fleet finish with histories
  *bit-identical* to their serial runs — including while a worker is
  killed mid-run (the chunk requeue absorbs it: no ServiceError, no lost
  or duplicated engine simulations);
* the scheduler is starvation-free and priority-weighted at chunk
  granularity;
* workers join and age out via heartbeats, and queued work waits for the
  first worker instead of failing;
* the registry server doubles as the metrics endpoint (per-tenant
  sims/sec + cache hit-rate).
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.baselines import RandomSearch
from repro.core import EvalEngine
from repro.core import service
from repro.core.fleet import (FleetCoordinator, RegistryServer,
                              WorkerRegistry, _DispatchState, _Job)
from repro.experiments import run_trials
from repro.problems import ConstrainedSphere, LatencyProblem, Sphere


def _rpc(conn, msg):
    service.send_msg(conn, msg)
    return service.recv_msg(conn)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_heartbeat_ageout_and_static_pins():
    registry = WorkerRegistry(timeout=0.25)
    registry.register("worker:1")
    registry.register("pinned:1", static=True)
    assert registry.live() == ["pinned:1", "worker:1"]
    time.sleep(0.4)
    assert registry.live() == ["pinned:1"]  # heartbeats stopped -> aged out
    assert registry.n_drops == 1
    registry.heartbeat("worker:1")          # a beat re-joins it
    assert "worker:1" in registry.live()
    registry.deregister("pinned:1")
    assert registry.live() == ["worker:1"]


def test_registry_server_ops():
    registry = WorkerRegistry(timeout=5.0)
    server = RegistryServer(registry)
    try:
        with socket.create_connection((server.host, server.port),
                                      timeout=5) as conn:
            hello = _rpc(conn, {"op": "hello"})
            assert hello["ok"] and hello["protocol"] == service.PROTOCOL_VERSION
            assert _rpc(conn, {"op": "register", "address": "w:1"})["ok"]
            assert _rpc(conn, {"op": "workers"})["workers"] == ["w:1"]
            assert _rpc(conn, {"op": "heartbeat", "address": "w:1"})["ok"]
            assert _rpc(conn, {"op": "stats"})["ok"]
            assert _rpc(conn, {"op": "deregister", "address": "w:1"})["ok"]
            assert _rpc(conn, {"op": "workers"})["workers"] == []
            assert not _rpc(conn, {"op": "frobnicate"})["ok"]
    finally:
        server.close()


# ----------------------------------------------------------------------
# scheduler: fairness + priority weighting (no workers needed)
# ----------------------------------------------------------------------
def _enqueue_jobs(coordinator, tenant, n):
    """Queue n one-design chunks for a tenant, bypassing a real dispatch."""
    state = _DispatchState(None, "00", np.zeros((n, 1)))
    state.remaining = n
    jobs = [_Job(tenant, state, i, i + 1) for i in range(n)]
    with coordinator._cond:
        coordinator._tenants[tenant].queue.extend(jobs)
        coordinator._cond.notify_all()
    return state


def test_fair_round_robin_interleaves_two_tenants():
    # Starvation-freedom: however much work each tenant queues, chunks are
    # served in strict alternation at equal priority — tenant B never waits
    # behind the whole of tenant A's backlog.
    with FleetCoordinator() as fleet:
        engine_a = fleet.engine("A")
        engine_b = fleet.engine("B")
        _enqueue_jobs(fleet, "A", 6)
        _enqueue_jobs(fleet, "B", 6)
        stop = threading.Event()
        order = [fleet._next_job(stop).tenant for _ in range(12)]
        assert order == ["A", "B"] * 6
        engine_a.close()
        engine_b.close()


def test_priority_weights_chunk_shares():
    # Weighted deficit round-robin: priority 2 vs 1 serves two chunks of
    # the heavy tenant per chunk of the light one — and the light tenant
    # still appears in every 3-chunk window (no starvation).
    with FleetCoordinator() as fleet:
        engine_a = fleet.engine("heavy", priority=2.0)
        engine_b = fleet.engine("light", priority=1.0)
        _enqueue_jobs(fleet, "heavy", 8)
        _enqueue_jobs(fleet, "light", 4)
        stop = threading.Event()
        order = [fleet._next_job(stop).tenant for _ in range(12)]
        assert order.count("heavy") == 8 and order.count("light") == 4
        first9 = order[:9]
        assert first9.count("heavy") == 6 and first9.count("light") == 3
        for lo in range(0, 9, 3):  # every window serves the light tenant
            assert "light" in order[lo:lo + 3]
        engine_a.close()
        engine_b.close()


def test_aborted_dispatch_jobs_are_discarded_not_served():
    # Chunks of an aborted dispatch are dropped by the scheduler (with the
    # credit refunded), never handed to a pump.
    with FleetCoordinator() as fleet:
        engine = fleet.engine("A")
        state = _enqueue_jobs(fleet, "A", 3)
        state.abort("test abort")
        with fleet._cond:
            assert fleet._pick_locked() is None
            assert not fleet._tenants["A"].queue
        engine.close()


# ----------------------------------------------------------------------
# end-to-end: two tenants on two in-process workers + metrics endpoint
# ----------------------------------------------------------------------
@pytest.fixture()
def two_local_servers():
    servers, threads = [], []
    for _ in range(2):
        server = service.EvalWorkerServer(port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append(server)
        threads.append(thread)
    yield servers
    for server in servers:
        server.close()
    for thread in threads:
        thread.join(timeout=5)


def test_two_tenants_bit_identical_histories_and_metrics(two_local_servers):
    hosts = [server.address for server in two_local_servers]
    serial_a = RandomSearch(Sphere(3), 20, seed=1).run()
    serial_b = RandomSearch(ConstrainedSphere(2), 16, seed=2).run()
    with FleetCoordinator(hosts=hosts) as fleet:
        metrics = fleet.listen()
        engine_a = fleet.engine("study-a", priority=2.0)
        engine_b = fleet.engine("study-b")
        histories = {}

        def run(name, problem, budget, seed, engine):
            histories[name] = RandomSearch(problem, budget, seed=seed,
                                           engine=engine).run()

        thread_a = threading.Thread(
            target=run, args=("a", Sphere(3), 20, 1, engine_a))
        thread_b = threading.Thread(
            target=run, args=("b", ConstrainedSphere(2), 16, 2, engine_b))
        thread_a.start()
        thread_b.start()
        thread_a.join(120)
        thread_b.join(120)
        assert "a" in histories and "b" in histories
        # the metrics endpoint reports per-tenant accounting over the wire
        with socket.create_connection((metrics.host, metrics.port),
                                      timeout=5) as conn:
            reply = _rpc(conn, {"op": "stats"})
        assert reply["ok"]
        tenants = reply["stats"]["tenants"]
        assert tenants["study-a"]["worker_sims"] == 20
        assert tenants["study-b"]["worker_sims"] == 16
        assert tenants["study-a"]["sims_per_sec"] > 0
        assert tenants["study-a"]["cache_hit_rate"] == 0.0
        assert tenants["study-a"]["priority"] == 2.0
        assert reply["stats"]["n_workers"] == 2
        engine_a.close()
        engine_b.close()
    np.testing.assert_array_equal(histories["a"].X, serial_a.X)
    np.testing.assert_array_equal(histories["a"].F, serial_a.F)
    np.testing.assert_array_equal(histories["b"].X, serial_b.X)
    np.testing.assert_array_equal(histories["b"].F, serial_b.F)


def test_tenant_close_detaches_without_touching_fleet(two_local_servers):
    hosts = [server.address for server in two_local_servers]
    problem = Sphere(2)
    X = problem.space.sample(np.random.default_rng(0), 5)
    with FleetCoordinator(hosts=hosts) as fleet:
        engine_1 = fleet.engine("t1")
        np.testing.assert_array_equal(engine_1.evaluate_batch(problem, X),
                                      problem.evaluate_batch(X))
        engine_1.close()  # detaches the tenant only
        X_fresh = problem.space.sample(np.random.default_rng(1), 5)
        with pytest.raises(RuntimeError):
            engine_1.evaluate_batch(problem, X_fresh)
        engine_2 = fleet.engine("t1")  # the name is reusable after detach
        np.testing.assert_array_equal(engine_2.evaluate_batch(problem, X),
                                      problem.evaluate_batch(X))
        engine_2.close()


def test_run_trials_fleet_param_matches_serial(two_local_servers):
    hosts = [server.address for server in two_local_servers]
    factory = lambda p, b, s: RandomSearch(p, b, s)
    kwargs = dict(budget=8, n_trials=3, base_seed=0)
    serial = run_trials(factory, lambda: Sphere(3), **kwargs)
    with FleetCoordinator(hosts=hosts) as fleet:
        shared = run_trials(factory, lambda: Sphere(3), workers=3,
                            fleet=fleet, **kwargs)
        with pytest.raises(ValueError, match="not both"):
            run_trials(factory, lambda: Sphere(3), fleet=fleet,
                       engine_factory=EvalEngine, **kwargs)
    for a, b in zip(serial, shared):
        np.testing.assert_array_equal(a.X, b.X)
        np.testing.assert_array_equal(a.F, b.F)


# ----------------------------------------------------------------------
# elasticity: heartbeat join/drop with real worker processes
# ----------------------------------------------------------------------
def _wait_for_workers(fleet, n, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if fleet.stats()["n_workers"] == n:
            return True
        time.sleep(0.05)
    return False


def test_worker_killed_mid_run_is_absorbed_bit_identical():
    # The acceptance pin: kill one of two heartbeat-registered workers in
    # the middle of a Study; the chunk requeue absorbs it (no ServiceError)
    # and the history is bit-identical to the serial run, with no lost or
    # duplicated engine-level simulations.
    problem_factory = lambda: LatencyProblem(Sphere(3), 0.05)
    serial = RandomSearch(problem_factory(), 30, seed=7).run()
    fleet = FleetCoordinator(heartbeat_timeout=1.5, poll_interval=0.1)
    registry = fleet.listen()
    procs = []
    try:
        for _ in range(2):
            proc, _host = service.spawn_local_worker(
                register=registry.address, heartbeat=0.2)
            procs.append(proc)
        assert _wait_for_workers(fleet, 2)
        engine = fleet.engine("victim-study")
        result = {}

        def run():
            result["history"] = RandomSearch(problem_factory(), 30, seed=7,
                                             engine=engine).run()

        thread = threading.Thread(target=run)
        thread.start()
        time.sleep(0.3)       # mid-run: chunks are in flight on both hosts
        procs[0].kill()
        thread.join(120)
        assert "history" in result, "study did not survive the worker kill"
        np.testing.assert_array_equal(result["history"].X, serial.X)
        np.testing.assert_array_equal(result["history"].F, serial.F)
        assert engine.n_sim_calls == 30  # nothing lost, nothing duplicated
        # the dead worker ages out / is dropped; the survivor stays
        assert _wait_for_workers(fleet, 1, timeout=15.0)
        engine.close()
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except Exception:
                proc.kill()
        fleet.close()


def test_elastic_join_serves_work_queued_before_any_worker():
    # Chunks dispatched into an empty fleet wait (elasticity, not error)
    # until the first worker registers, then complete normally.
    fleet = FleetCoordinator(heartbeat_timeout=2.0, poll_interval=0.1)
    registry = fleet.listen()
    engine = fleet.engine("early-bird")
    problem = Sphere(2)
    X = problem.space.sample(np.random.default_rng(0), 5)
    result = {}
    thread = threading.Thread(
        target=lambda: result.update(F=engine.evaluate_batch(problem, X)))
    thread.start()
    time.sleep(0.3)
    assert thread.is_alive()  # queued, waiting for capacity — not failed
    proc = None
    try:
        proc, _host = service.spawn_local_worker(register=registry.address,
                                                 heartbeat=0.2)
        thread.join(60)
        assert not thread.is_alive()
        np.testing.assert_array_equal(result["F"], problem.evaluate_batch(X))
    finally:
        engine.close()
        fleet.close()
        if proc is not None:
            proc.terminate()
            proc.wait(timeout=10)


# ----------------------------------------------------------------------
# graceful degradation: zero live workers -> bounded local evaluation
# ----------------------------------------------------------------------
def test_degraded_local_tenant_survives_zero_worker_fleet():
    # A degraded="local" tenant whose dispatch sits degraded_after seconds
    # with no live workers gets its queued chunks evaluated in-process —
    # same deterministic rows, counted in the stats — instead of waiting
    # forever (or failing) on an empty fleet.
    problem = Sphere(3)
    X = problem.space.sample(np.random.default_rng(11), 6)
    with FleetCoordinator(poll_interval=0.05, degraded_after=0.3) as fleet:
        engine = fleet.engine("stranded", degraded="local")
        F = engine.evaluate_batch(problem, X)
        np.testing.assert_array_equal(F, problem.evaluate_batch(X))
        stats = fleet.stats()
        assert stats["tenants"]["stranded"]["degraded"] == "local"
        assert stats["tenants"]["stranded"]["degraded_designs"] == 6
        assert stats["tenants"]["stranded"]["worker_sims"] == 6
        assert stats["degraded_designs"] == 6
        engine.close()


def test_default_tenant_still_waits_on_empty_fleet():
    # Without the opt-in, the elasticity contract is unchanged: chunks wait
    # for a worker, they are never silently evaluated locally.
    with FleetCoordinator(poll_interval=0.05, degraded_after=0.1) as fleet:
        engine = fleet.engine("patient")
        problem = Sphere(2)
        X = problem.space.sample(np.random.default_rng(0), 3)
        result = {}

        def run():
            try:
                result["F"] = engine.evaluate_batch(problem, X)
            except Exception as exc:
                result["error"] = exc

        thread = threading.Thread(target=run)
        thread.start()
        time.sleep(0.6)  # several degraded_after windows: still queued
        assert thread.is_alive() and not result
        engine.close()   # detach aborts the stranded dispatch
        thread.join(30)
    assert "F" not in result and "error" in result


def test_fleet_engine_rejects_bad_degraded_and_hedge_config():
    with FleetCoordinator() as fleet:
        with pytest.raises(ValueError, match="degraded"):
            fleet.engine("t", degraded="bogus")
    with pytest.raises(ValueError, match="hedge_factor"):
        FleetCoordinator(hedge_factor=1.0)
    with pytest.raises(ValueError, match="chunk_timeout"):
        FleetCoordinator(chunk_timeout=0.0)


def test_degraded_local_defers_to_worker_that_joins_in_time(two_local_servers):
    # With live workers the degraded tenant behaves exactly like any other:
    # the fallback never fires, the fleet serves the work.
    hosts = [server.address for server in two_local_servers]
    problem = Sphere(3)
    X = problem.space.sample(np.random.default_rng(12), 8)
    with FleetCoordinator(hosts=hosts, degraded_after=0.5) as fleet:
        engine = fleet.engine("covered", degraded="local")
        np.testing.assert_array_equal(engine.evaluate_batch(problem, X),
                                      problem.evaluate_batch(X))
        assert fleet.stats()["degraded_designs"] == 0
        engine.close()


# ----------------------------------------------------------------------
# worker-side persistent cache (--cache-dir): two-process smoke
# ----------------------------------------------------------------------
def test_worker_cache_dir_two_process_smoke(tmp_path):
    # Worker process 1 populates its disk tier; a *fresh* worker process
    # on the same directory answers every repeat from disk with zero
    # simulations — confirmed through the worker's own stats op.
    problem = Sphere(3)
    X = problem.space.sample(np.random.default_rng(4), 6)

    def run_once():
        proc, host = service.spawn_local_worker(cache_dir=tmp_path)
        try:
            with EvalEngine("remote", hosts=[host]) as engine:
                F = engine.evaluate_batch(problem, X)
            addr = service.parse_host(host)
            with socket.create_connection(addr, timeout=10) as conn:
                stats = _rpc(conn, {"op": "stats"})
            return F, stats
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    F1, stats1 = run_once()
    assert stats1["ok"] and stats1["n_sims"] == 6
    assert stats1["cache_dir"] == str(tmp_path)
    F2, stats2 = run_once()
    assert stats2["n_sims"] == 0       # new process, all answered from disk
    assert stats2["disk_hits"] == 6
    np.testing.assert_array_equal(F1, F2)


# ----------------------------------------------------------------------
# tenant quotas + deadline-aware scheduling
# ----------------------------------------------------------------------
def test_quota_refusal_raises_through_engine_seam():
    # The quota check runs before anything is queued, so it fires even on
    # a workerless fleet — and partial batches never count against it.
    from repro.core import BudgetExhausted

    with FleetCoordinator() as fleet:
        engine = fleet.engine("capped", quota=2)
        X = Sphere(2).space.sample(np.random.default_rng(0), 3)
        with pytest.raises(BudgetExhausted, match="quota exhausted"):
            engine.evaluate_batch(Sphere(2), X)
        stats = fleet.stats()["tenants"]["capped"]
        assert stats["quota"] == 2
        assert stats["quota_remaining"] == 2   # refused before dispatch
        assert stats["designs"] == 0
        with pytest.raises(ValueError):
            fleet.engine("bad", quota=0)
        with pytest.raises(ValueError):
            fleet.engine("bad", deadline_s=0.0)
        engine.close()


def test_quota_capped_study_stops_at_exact_quota(two_local_servers):
    # Acceptance pin: a tenant with quota=7 driving a budget-20 study ends
    # gracefully with exactly 7 evaluations in its history — the engine
    # seam raises BudgetExhausted and the Study keeps the partial run.
    hosts = [server.address for server in two_local_servers]
    with FleetCoordinator(hosts=hosts) as fleet:
        engine = fleet.engine("capped", quota=7)
        history = RandomSearch(ConstrainedSphere(3), 20, seed=4,
                               engine=engine).run()
        assert history.n_evals == 7
        stats = fleet.stats()["tenants"]["capped"]
        assert stats["designs"] == 7
        assert stats["quota_remaining"] == 0
        engine.close()
    # the 7 recorded rows are the serial run's prefix, not a reshuffle
    serial = RandomSearch(ConstrainedSphere(3), 20, seed=4).run()
    np.testing.assert_array_equal(history.X, serial.X[:7])
    np.testing.assert_array_equal(history.F, serial.F[:7])


def test_deadline_boost_grows_tenant_share_without_starvation():
    # An expired deadline pins the credit-refill multiplier at the cap
    # (16x), so the urgent tenant is served 16 chunks per calm chunk —
    # while the ring scan still serves the calm tenant in every refill
    # cycle (starvation-free).
    from repro.core.fleet import DEADLINE_BOOST_CAP

    with FleetCoordinator() as fleet:
        engine_u = fleet.engine("urgent", deadline_s=0.05)
        engine_c = fleet.engine("calm")
        time.sleep(0.1)  # deadline passes -> boost saturates at the cap
        stats = fleet.stats()["tenants"]
        assert stats["urgent"]["deadline_boost"] == DEADLINE_BOOST_CAP
        assert stats["urgent"]["deadline_s"] == 0.05
        assert stats["urgent"]["deadline_remaining_s"] <= 0
        assert stats["calm"]["deadline_boost"] == 1.0

        _enqueue_jobs(fleet, "urgent", 32)
        _enqueue_jobs(fleet, "calm", 32)
        stop = threading.Event()
        order = [fleet._next_job(stop).tenant for _ in range(34)]
        assert order.count("urgent") == 32
        assert order.count("calm") == 2
        window = int(DEADLINE_BOOST_CAP) + 1
        for lo in range(0, 34, window):  # calm appears in every refill cycle
            assert "calm" in order[lo:lo + window]
        engine_u.close()
        engine_c.close()
