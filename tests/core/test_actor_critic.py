"""Critic and actor networks: learning behaviour and Eq. 3/5 mechanics."""

import numpy as np
import pytest

from repro.core import Actor, Critic, generate_pseudo_samples


def quadratic_data(n=60, d=2, seed=0):
    """Archive of a quadratic bowl with one linear 'constraint' output."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.0, 1.0, size=(n, d))
    f0 = np.sum((X - 0.5) ** 2, axis=1)
    f1 = X[:, 0] - 0.6
    return X, np.column_stack([f0, f1])


class TestCritic:
    def test_fit_reduces_loss_and_predicts(self):
        X, Y = quadratic_data()
        rng = np.random.default_rng(1)
        inputs, targets = generate_pseudo_samples(X, Y, rng=rng, max_pairs=2000)
        critic = Critic(2, 2, epochs=40, rng=rng)
        critic.fit(inputs, targets)
        rmse = critic.validation_rmse(inputs, targets)
        assert rmse < 0.1

    def test_prediction_shape_and_untrained_guard(self):
        critic = Critic(3, 2, rng=np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            critic.predict(np.zeros((1, 3)), np.zeros((1, 3)))

    def test_input_dimension_validated(self):
        critic = Critic(3, 1, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            critic.fit(np.zeros((4, 5)), np.zeros((4, 1)))

    def test_forward_tensor_matches_predict(self):
        from repro.nn import Tensor

        X, Y = quadratic_data(n=30)
        rng = np.random.default_rng(2)
        inputs, targets = generate_pseudo_samples(X, Y, rng=rng, max_pairs=500)
        critic = Critic(2, 2, epochs=10, rng=rng)
        critic.fit(inputs, targets)
        x = np.random.default_rng(3).uniform(size=(5, 2))
        dx = np.zeros((5, 2))
        via_predict = critic.predict(x, dx)
        via_tensor = critic.forward_tensor(Tensor(np.concatenate([x, dx], axis=1))).data
        np.testing.assert_allclose(via_predict, via_tensor, atol=1e-10)

    def test_pseudo_samples_improve_displaced_prediction(self):
        """The paper's claim: the 2d critic predicts f(x + dx) better than a
        d-input net evaluated at x (which cannot see the displacement)."""
        X, Y = quadratic_data(n=50, seed=4)
        rng = np.random.default_rng(4)
        inputs, targets = generate_pseudo_samples(X, Y, rng=rng, max_pairs=2500)
        critic = Critic(2, 2, epochs=40, rng=rng)
        critic.fit(inputs, targets)
        # Evaluate on fresh anchor/displacement pairs.
        test_rng = np.random.default_rng(99)
        anchors = test_rng.uniform(0.2, 0.8, size=(50, 2))
        moves = test_rng.uniform(-0.2, 0.2, size=(50, 2))
        moved = np.clip(anchors + moves, 0, 1)
        truth = np.column_stack([np.sum((moved - 0.5) ** 2, axis=1), moved[:, 0] - 0.6])
        prediction = critic.predict(anchors, moves)
        rmse_2d = np.sqrt(np.mean((prediction - truth) ** 2))
        assert rmse_2d < 0.15


class TestActor:
    def test_actor_moves_toward_critic_minimum(self):
        """With a critic that rewards moving to the center, trained actor
        proposals should point toward the center."""
        X, Y = quadratic_data(n=80, seed=5)
        rng = np.random.default_rng(5)
        inputs, targets = generate_pseudo_samples(X, Y, rng=rng, max_pairs=4000)
        critic = Critic(2, 2, epochs=50, rng=rng)
        critic.fit(inputs, targets)

        actor = Actor(2, epochs=80, rng=rng)
        anchors = np.array([[0.1, 0.1], [0.9, 0.9], [0.1, 0.9], [0.85, 0.2]])
        actor.fit(critic, anchors, np.zeros(2), np.ones(2),
                  w0=1.0, weights=np.array([0.0001]))
        moves = actor.propose(anchors)
        moved = anchors + moves
        before = np.linalg.norm(anchors - 0.5, axis=1)
        after = np.linalg.norm(moved - 0.5, axis=1)
        assert np.mean(after) < np.mean(before)

    def test_boundary_penalty_keeps_proposals_inside(self):
        X, Y = quadratic_data(n=40, seed=6)
        rng = np.random.default_rng(6)
        inputs, targets = generate_pseudo_samples(X, Y, rng=rng, max_pairs=1500)
        critic = Critic(2, 2, epochs=20, rng=rng)
        critic.fit(inputs, targets)

        actor = Actor(2, epochs=60, rng=rng)
        lb = np.array([0.4, 0.4])
        ub = np.array([0.6, 0.6])
        anchors = np.array([[0.45, 0.55], [0.55, 0.45], [0.5, 0.5]])
        actor.fit(critic, anchors, lb, ub, w0=1.0, weights=np.array([1.0]), lam=100.0)
        moved = anchors + actor.propose(anchors)
        assert np.all(moved > lb - 0.05)
        assert np.all(moved < ub + 0.05)

    def test_actor_training_does_not_modify_critic(self):
        X, Y = quadratic_data(n=30, seed=7)
        rng = np.random.default_rng(7)
        inputs, targets = generate_pseudo_samples(X, Y, rng=rng, max_pairs=900)
        critic = Critic(2, 2, epochs=10, rng=rng)
        critic.fit(inputs, targets)
        before = critic.net.state_dict()
        actor = Actor(2, epochs=20, rng=rng)
        actor.fit(critic, X[:5], np.zeros(2), np.ones(2),
                  w0=1.0, weights=np.array([1.0]))
        after = critic.net.state_dict()
        for b, a in zip(before, after):
            np.testing.assert_array_equal(b, a)
        # and critic parameters are trainable again afterwards
        assert all(p.requires_grad for p in critic.net.parameters())

    def test_step_scale_tracks_region(self):
        rng = np.random.default_rng(8)
        actor = Actor(3, epochs=1, rng=rng)
        X, Y = quadratic_data(n=20, d=3, seed=8)
        inputs, targets = generate_pseudo_samples(X, Y, rng=rng, max_pairs=300)
        critic = Critic(3, 2, epochs=2, rng=rng)
        critic.fit(inputs, targets)
        lb = np.array([0.2, 0.2, 0.2])
        ub = np.array([0.4, 0.8, 0.2 + 1e-9])
        actor.fit(critic, X[:4], lb, ub, w0=1.0, weights=np.array([1.0]))
        np.testing.assert_allclose(actor.step_scale[:2], [0.2, 0.6], atol=1e-9)
        assert actor.step_scale[2] >= 1e-6  # floored, never zero
