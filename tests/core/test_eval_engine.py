"""EvalEngine: backend equivalence, caching, and optimizer wiring.

The load-bearing contract: an optimizer's history is *bit-identical* no
matter which engine backend dispatched its simulator batches, and a cache
hit never re-invokes the simulator.
"""

import numpy as np
import pytest

from repro.baselines import RandomSearch
from repro.core import DNNOpt, EvalEngine, default_workers
from repro.problems import ConstrainedSphere, Sphere

BACKENDS = ["serial", "thread", "process", "async"]


class CountingSphere(Sphere):
    """Sphere that counts in-process simulator invocations."""

    def __init__(self, dim=3):
        super().__init__(dim)
        self.calls = 0

    def _evaluate(self, x):
        self.calls += 1
        return super()._evaluate(x)


def small_dnnopt(problem, budget, seed, engine=None, **kw):
    defaults = dict(n_init=8, n_elite=5, critic_epochs=5, actor_epochs=5,
                    critic_hidden=(16, 16), actor_hidden=(16, 16),
                    max_pseudo=500, engine=engine)
    defaults.update(kw)
    return DNNOpt(problem, budget, seed, **defaults)


# ----------------------------------------------------------------------
# Engine-level behaviour
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_batch_matches_direct_evaluation(backend):
    problem = Sphere(4)
    rng = np.random.default_rng(0)
    X = problem.space.sample(rng, 13)
    expected = problem.evaluate_batch(X)
    with EvalEngine(backend, workers=3) as engine:
        np.testing.assert_array_equal(engine.evaluate_batch(problem, X), expected)


@pytest.mark.parametrize("backend", BACKENDS)
def test_rows_returned_in_input_order(backend):
    problem = Sphere(2)
    X = np.array([[3.0, 0.0], [0.0, 0.0], [1.0, 1.0], [2.0, 2.0], [0.5, 0.5]])
    with EvalEngine(backend, workers=2) as engine:
        F = engine.evaluate_batch(problem, X)
    np.testing.assert_allclose(F[:, 0], (X ** 2).sum(axis=1))


def test_cache_hit_never_reinvokes_simulator():
    problem = CountingSphere(3)
    engine = EvalEngine("serial")
    rng = np.random.default_rng(1)
    X = problem.space.sample(rng, 7)
    F1 = engine.evaluate_batch(problem, X)
    assert problem.calls == 7
    F2 = engine.evaluate_batch(problem, X)  # same designs again
    assert problem.calls == 7  # zero new simulations
    assert engine.n_cache_hits == 7
    np.testing.assert_array_equal(F1, F2)


def test_in_batch_duplicates_simulated_once():
    problem = CountingSphere(2)
    engine = EvalEngine("serial")
    x = np.array([1.0, 2.0])
    F = engine.evaluate_batch(problem, np.vstack([x, x, x]))
    assert problem.calls == 1
    assert len(F) == 3
    np.testing.assert_array_equal(F[0], F[1])
    np.testing.assert_array_equal(F[0], F[2])


def test_cache_disabled_reinvokes():
    problem = CountingSphere(2)
    engine = EvalEngine("serial", cache_size=0)
    X = problem.space.sample(np.random.default_rng(2), 4)
    engine.evaluate_batch(problem, X)
    engine.evaluate_batch(problem, X)
    assert problem.calls == 8
    assert engine.n_cache_hits == 0


def test_cache_lru_eviction():
    problem = CountingSphere(1)
    engine = EvalEngine("serial", cache_size=2)
    a, b, c = np.array([[1.0]]), np.array([[2.0]]), np.array([[3.0]])
    engine.evaluate_batch(problem, a)
    engine.evaluate_batch(problem, b)
    engine.evaluate_batch(problem, c)  # evicts a
    engine.evaluate_batch(problem, a)
    assert problem.calls == 4


def test_cache_key_rounds_integer_dims():
    # 1.1 and 0.9 both round to the same integer design -> one simulation.
    from repro.problems import PressureVessel
    problem = PressureVessel()
    engine = EvalEngine("serial")
    base = np.array([5.0, 5.0, 50.0, 100.0])
    x1 = base.copy(); x1[0] = 5.1
    x2 = base.copy(); x2[0] = 4.9
    engine.evaluate_batch(problem, np.vstack([x1, x2]))
    assert engine.n_sim_calls == 1


def test_cache_disabled_still_dedups_within_batch():
    # cache_size=0 only disables *memoization across batches*; duplicate
    # rows inside one batch are still simulated once.
    problem = CountingSphere(2)
    engine = EvalEngine("serial", cache_size=0)
    x = np.array([1.0, 2.0])
    F = engine.evaluate_batch(problem, np.vstack([x, x, x, x]))
    assert problem.calls == 1
    assert len(F) == 4
    assert engine.n_cache_hits == 0
    engine.evaluate_batch(problem, x[None, :])  # next batch re-simulates
    assert problem.calls == 2


def test_cache_lru_hit_refreshes_recency_in_mixed_batches():
    # A mixed hit/miss batch must move the hit to most-recently-used, so the
    # *untouched* entry is the one evicted by the batch's fresh insert.
    problem = CountingSphere(1)
    engine = EvalEngine("serial", cache_size=2)
    a, b, c, = np.array([[1.0]]), np.array([[2.0]]), np.array([[3.0]])
    engine.evaluate_batch(problem, np.vstack([a, b]))   # cache {a, b}
    assert problem.calls == 2
    engine.evaluate_batch(problem, np.vstack([a, c]))   # a hit -> evict b
    assert problem.calls == 3
    engine.evaluate_batch(problem, a)                   # still cached
    assert problem.calls == 3
    engine.evaluate_batch(problem, b)                   # evicted -> re-simulated
    assert problem.calls == 4


# ----------------------------------------------------------------------
# Problem identity: weakref tokens, content fingerprints, pool reuse
# ----------------------------------------------------------------------
def test_dropped_problem_is_collectable():
    import gc
    import weakref
    engine = EvalEngine("serial")
    problem = CountingSphere(3)
    ref = weakref.ref(problem)
    engine.evaluate_batch(problem, problem.space.sample(np.random.default_rng(0), 4))
    assert engine._problem_tokens  # tracked while alive
    del problem
    gc.collect()
    assert ref() is None, "engine must not keep dropped problems alive"
    assert engine._problem_tokens == {}
    assert engine._problem_wrefs == {}


def test_problem_token_stable_for_live_instance():
    engine = EvalEngine("serial")
    problem = CountingSphere(2)
    token = engine._problem_token(problem)
    engine.evaluate_batch(problem, problem.space.sample(np.random.default_rng(0), 3))
    assert engine._problem_token(problem) == token  # calls=3 now: still stable


def test_cache_shared_across_identical_problem_instances():
    # The problem_factory()-per-trial pattern: a fresh but identical instance
    # hits the cache entries its predecessor populated.
    engine = EvalEngine("serial")
    X = Sphere(3).space.sample(np.random.default_rng(4), 5)
    p1 = CountingSphere(3)
    engine.evaluate_batch(p1, X)
    assert p1.calls == 5
    p2 = CountingSphere(3)
    engine.evaluate_batch(p2, X)
    assert p2.calls == 0  # all answered from p1's entries
    assert engine.n_cache_hits == 5
    # ...while a differently-configured problem never collides
    p3 = CountingSphere(3)
    p3.extra = "different content"
    engine.evaluate_batch(p3, X)
    assert p3.calls == 5


def test_process_pool_reused_across_identical_problem_instances():
    rng = np.random.default_rng(0)
    with EvalEngine("process", workers=2, cache_size=0) as engine:
        for _ in range(3):
            problem = ConstrainedSphere(2)
            engine.evaluate_batch(problem, problem.space.sample(rng, 4))
        assert engine.n_pool_builds == 1  # warm pool survives fresh instances
        other = Sphere(3)
        engine.evaluate_batch(other, other.space.sample(rng, 4))
        assert engine.n_pool_builds == 2  # different content -> rebuild


def test_hotpath_report_nonzero_under_process_backend():
    # Workers ship their per-chunk counter deltas back, so the report no
    # longer silently reads zero when the simulation ran in a pool.
    from repro.circuits import FoldedCascodeOTA
    problem = FoldedCascodeOTA().problem()
    with EvalEngine("process", workers=2) as engine:
        engine.evaluate_batch(problem, problem.space.sample(np.random.default_rng(1), 2))
        report = engine.hotpath_report()
    assert report["assemble_s"] > 0
    assert report["solve_s"] > 0
    assert report["newton_iterations"] > 0
    assert report["ac_solves"] > 0


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        EvalEngine("gpu")
    with pytest.raises(ValueError):
        EvalEngine("thread", workers=0)
    with pytest.raises(ValueError):
        EvalEngine("serial", cache_size=-1)


def test_default_workers_positive():
    assert default_workers() >= 1


# ----------------------------------------------------------------------
# Optimizer wiring: histories are backend-independent, bit for bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["thread", "process", "async"])
def test_random_search_history_bit_identical(backend):
    serial = RandomSearch(Sphere(3), 20, seed=5).run()
    with EvalEngine(backend, workers=3) as engine:
        parallel = RandomSearch(Sphere(3), 20, seed=5, engine=engine).run()
    np.testing.assert_array_equal(serial.X, parallel.X)
    np.testing.assert_array_equal(serial.F, parallel.F)
    np.testing.assert_array_equal(serial.fom, parallel.fom)
    np.testing.assert_array_equal(serial.feasible, parallel.feasible)


@pytest.mark.parametrize("backend", ["thread", "process", "async"])
def test_batched_dnnopt_history_bit_identical(backend):
    problem_factory = lambda: ConstrainedSphere(3)
    serial = small_dnnopt(problem_factory(), 18, seed=7, batch_size=3).run()
    with EvalEngine(backend, workers=2) as engine:
        parallel = small_dnnopt(problem_factory(), 18, seed=7, batch_size=3,
                                engine=engine).run()
    np.testing.assert_array_equal(serial.X, parallel.X)
    np.testing.assert_array_equal(serial.F, parallel.F)
    np.testing.assert_array_equal(serial.fom, parallel.fom)


def test_engine_shared_across_optimizers_caches_duplicates():
    # Two same-seed runs on one engine: the second run's queries are all
    # cache hits, so the problem only simulates once per unique design.
    problem = CountingSphere(2)
    engine = EvalEngine("serial")
    h1 = RandomSearch(problem, 12, seed=9, engine=engine).run()
    calls_after_first = problem.calls
    h2 = RandomSearch(problem, 12, seed=9, engine=engine).run()
    assert problem.calls == calls_after_first
    np.testing.assert_array_equal(h1.X, h2.X)


# ----------------------------------------------------------------------
# Canonical cache keys (DesignSpace.canonical) for integer dimensions
# ----------------------------------------------------------------------
class MixedIntegerSphere(Sphere):
    """Sphere with an integer dimension spanning negative values — the
    case where ``np.round`` produces ``-0.0`` and raw-byte hashing would
    alias one integer design to two cache keys."""

    def __init__(self):
        from repro.problems.base import (DesignSpace, Objective, Variable)
        space = DesignSpace([Variable("n", -5.0, 5.0, kind="integer"),
                             Variable("w", -5.0, 5.0)])
        super(Sphere, self).__init__(space, Objective("sphere", scale=50.0), [])
        self.calls = 0

    def _evaluate(self, x):
        self.calls += 1
        return [float(np.sum(x ** 2))]


def test_canonical_normalizes_signed_zero_on_integer_dims():
    space = MixedIntegerSphere().space
    minus = space.canonical(np.array([-0.3, 1.0]))
    plus = space.canonical(np.array([0.3, 1.0]))
    assert minus.tobytes() == plus.tobytes()  # same design, same bytes
    # np.round alone would have produced -0.0 here
    assert np.round(-0.3).tobytes() != np.round(0.3).tobytes()


def test_rounded_and_unrounded_integer_views_share_one_cache_entry():
    # -0.3 and +0.3 are both integer design 0: one simulation, one entry —
    # in the dedup pass, the memory cache, and the disk tier alike.
    problem = MixedIntegerSphere()
    with EvalEngine("serial") as engine:
        F = engine.evaluate_batch(problem, np.array([[-0.3, 1.0], [0.3, 1.0]]))
        assert problem.calls == 1
        assert engine.n_sim_calls == 1
        np.testing.assert_array_equal(F[0], F[1])
        engine.evaluate_batch(problem, np.array([[-0.0, 1.0], [0.0, 1.0]]))
        assert problem.calls == 1  # cache hit on every signed-zero view


def test_mixed_integer_disk_cache_determinism(tmp_path):
    problem_factory = MixedIntegerSphere
    X = np.array([[-0.4, 2.0], [0.4, 2.0], [2.6, -1.0], [-4.9, 0.5]])
    with EvalEngine(cache_dir=tmp_path) as e1:
        F1 = e1.evaluate_batch(problem_factory(), X)
        assert e1.n_sim_calls == 3  # first two rows are one design
    with EvalEngine(cache_dir=tmp_path) as e2:
        F2 = e2.evaluate_batch(problem_factory(), X)
        assert e2.n_sim_calls == 0
        assert e2.n_disk_hits == 3
    np.testing.assert_array_equal(F1, F2)


def test_seed_cache_answers_without_simulation():
    problem = CountingSphere(3)
    X = problem.space.sample(np.random.default_rng(1), 5)
    F = problem.evaluate_batch(X)
    problem.calls = 0
    with EvalEngine("serial") as engine:
        assert engine.seed_cache(problem, X, F) == 5
        assert engine.seed_cache(problem, X, F) == 0  # idempotent
        np.testing.assert_array_equal(engine.evaluate_batch(problem, X), F)
        assert problem.calls == 0
        assert engine.n_cache_hits == 5
    with pytest.raises(ValueError, match="seed_cache"):
        EvalEngine().seed_cache(problem, X, F[:2])


# ----------------------------------------------------------------------
# close() vs. in-flight submit(): raise, never hang
# ----------------------------------------------------------------------
def test_submit_after_close_raises():
    engine = EvalEngine("serial")
    engine.close()
    problem = Sphere(2)
    with pytest.raises(RuntimeError, match="closed"):
        engine.submit(problem, problem.space.sample(np.random.default_rng(0), 2))


def test_close_cancels_queued_submits_and_gather_raises():
    import threading
    import time as _time

    class SlowSphere(Sphere):
        def _evaluate(self, x):
            _time.sleep(0.1)
            return super()._evaluate(x)

    problem = SlowSphere(2)
    engine = EvalEngine("serial", workers=1, cache_size=0)
    # saturate the submit pool so later batches sit in its queue
    rng = np.random.default_rng(0)
    handles = [engine.submit(problem, problem.space.sample(rng, 1))
               for _ in range(12)]
    t0 = _time.perf_counter()
    engine.close()  # must not deadlock waiting on the whole queue
    assert _time.perf_counter() - t0 < 5.0
    outcomes = []
    for handle in handles:
        try:
            engine.gather(handle)
            outcomes.append("ok")
        except RuntimeError:
            outcomes.append("cancelled")
    # ...at least the tail of the queue was cancelled, and nothing hung
    assert "cancelled" in outcomes


# ----------------------------------------------------------------------
# blocking batch vs. pipelined submit: one simulation per design
# ----------------------------------------------------------------------
def test_blocking_batch_waits_for_inflight_submit_not_resimulates():
    # evaluate_batch used to skip the in-flight registry entirely, so a
    # blocking batch racing a pipelined submit() of the same designs
    # simulated them twice (and the late result clobbered the cache).
    import threading

    class GatedSphere(Sphere):
        def __init__(self, dim=2):
            super().__init__(dim)
            self.calls = 0
            self.gate = threading.Event()

        def _evaluate(self, x):
            self.calls += 1
            self.gate.wait(10.0)
            return super()._evaluate(x)

    problem = GatedSphere(2)
    X = problem.space.sample(np.random.default_rng(3), 3)
    engine = EvalEngine("serial")
    handle = engine.submit(problem, X)  # keys go in flight synchronously
    done = threading.Event()
    result = {}

    def blocking():
        result["F"] = engine.evaluate_batch(problem, X)
        done.set()

    thread = threading.Thread(target=blocking)
    thread.start()
    assert not done.wait(0.3)  # parked on the submit's future, not simulating
    problem.gate.set()
    thread.join(30)
    assert done.is_set()
    np.testing.assert_array_equal(result["F"], engine.gather(handle))
    assert problem.calls == len(X)       # every design simulated exactly once
    assert engine.n_sim_calls == len(X)
    assert engine.n_dedup >= len(X)      # the blocking batch counted as dedup
    engine.close()


# ----------------------------------------------------------------------
# clear_cache(): locked, and scoped to the RAM tier only
# ----------------------------------------------------------------------
def test_clear_cache_drops_ram_tier_but_keeps_disk_tier(tmp_path):
    problem = Sphere(3)
    X = problem.space.sample(np.random.default_rng(1), 6)
    with EvalEngine(cache_dir=tmp_path) as engine:
        engine.evaluate_batch(problem, X)
        assert engine.n_sim_calls == 6
        engine.clear_cache()
        engine.evaluate_batch(problem, X)
        assert engine.n_sim_calls == 6   # no re-simulation...
        assert engine.n_disk_hits == 6   # ...the persistent tier answered


def test_clear_cache_is_safe_under_concurrent_submits():
    # clear_cache() used to mutate the cache dict without _state_lock,
    # racing the submit-pool threads' read/write cycles.
    import threading

    problem = Sphere(2)
    engine = EvalEngine("serial")
    rng = np.random.default_rng(0)
    errors = []
    stop = threading.Event()

    def clearer():
        while not stop.is_set():
            try:
                engine.clear_cache()
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)
                return

    thread = threading.Thread(target=clearer)
    thread.start()
    try:
        for _ in range(40):
            handle = engine.submit(problem, problem.space.sample(rng, 4))
            engine.gather(handle)
    finally:
        stop.set()
        thread.join(10)
        engine.close()
    assert not errors


# ----------------------------------------------------------------------
# straggler write-back after close(): no-op, never a crash
# ----------------------------------------------------------------------
def test_cache_put_after_close_is_noop(tmp_path):
    # A dispatch thread finishing after close() lands its rows in
    # _cache_put; with a disk tier that used to raise "I/O operation on
    # closed file" from the closed shard writer.
    problem = Sphere(2)
    X = problem.space.sample(np.random.default_rng(0), 2)
    engine = EvalEngine(cache_dir=tmp_path)
    engine.evaluate_batch(problem, X)
    token = engine._problem_token(problem)
    key = engine._key(token, problem.space.canonical(X)[0])
    engine.close()
    engine._cache_put(key, np.array([1.0, 2.0]), True)  # must not raise
