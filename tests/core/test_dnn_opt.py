"""DNN-Opt end-to-end behaviour (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import DNNOpt
from repro.problems import ConstrainedSphere, PressureVessel, Sphere


def fast_dnnopt(problem, budget, seed=0, **kw):
    """Small networks / few epochs so tests stay quick."""
    defaults = dict(n_init=10, n_elite=6, critic_epochs=8, actor_epochs=10,
                    critic_hidden=(32, 32), actor_hidden=(32, 32), max_pseudo=1500)
    defaults.update(kw)
    return DNNOpt(problem, budget, seed, **defaults)


def test_respects_budget_exactly():
    history = fast_dnnopt(Sphere(3), 25, seed=1).run()
    assert history.n_evals == 25


def test_beats_random_search_on_sphere():
    problem = Sphere(4)
    history = fast_dnnopt(problem, 50, seed=2).run()
    rng = np.random.default_rng(2)
    random_best = problem.evaluate_batch(problem.space.sample(rng, 50))[:, 0].min()
    assert history.F[:, 0].min() < random_best


def test_finds_feasible_on_constrained_problem():
    history = fast_dnnopt(ConstrainedSphere(3), 40, seed=3).run()
    assert history.any_feasible
    assert history.evals_to_first_feasible is not None


def test_stop_when_feasible_halts_early():
    opt = fast_dnnopt(ConstrainedSphere(2), 60, seed=4, stop_when_feasible=True)
    history = opt.run()
    assert history.any_feasible
    assert history.n_evals == history.evals_to_first_feasible


def test_integer_variables_stay_integral():
    history = fast_dnnopt(PressureVessel(), 25, seed=5).run()
    X = history.X
    np.testing.assert_allclose(X[:, 0], np.round(X[:, 0]))
    np.testing.assert_allclose(X[:, 1], np.round(X[:, 1]))


def test_no_duplicate_queries():
    history = fast_dnnopt(Sphere(2), 35, seed=6).run()
    X = history.X
    distances = np.linalg.norm(X[:, None, :] - X[None, :, :], axis=2)
    np.fill_diagonal(distances, np.inf)
    assert distances.min() > 1e-12


def test_initial_designs_are_simulated_first():
    problem = Sphere(3)
    seeds = np.array([[0.1, 0.2, 0.3], [1.0, 1.0, 1.0]])
    history = fast_dnnopt(problem, 20, seed=7, initial_designs=seeds).run()
    np.testing.assert_allclose(history.X[0], seeds[0])
    np.testing.assert_allclose(history.X[1], seeds[1])


def test_seed_reproducibility():
    h1 = fast_dnnopt(Sphere(3), 20, seed=11).run()
    h2 = fast_dnnopt(Sphere(3), 20, seed=11).run()
    np.testing.assert_allclose(h1.X, h2.X)
    h3 = fast_dnnopt(Sphere(3), 20, seed=12).run()
    assert not np.allclose(h1.X, h3.X)


def test_modeling_time_recorded():
    history = fast_dnnopt(Sphere(2), 15, seed=8).run()
    assert history.modeling_time > 0.0


def test_pseudo_sample_ablation_switch_runs():
    history = fast_dnnopt(Sphere(2), 18, seed=9, use_pseudo_samples=False).run()
    assert history.n_evals == 18


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        DNNOpt(Sphere(2), 10, n_elite=1)
    with pytest.raises(ValueError):
        DNNOpt(Sphere(2), 10, n_init=1)
    with pytest.raises(ValueError):
        DNNOpt(Sphere(2), 0)


def test_budget_smaller_than_ninit():
    history = fast_dnnopt(Sphere(2), 5, seed=10).run()
    assert history.n_evals == 5


def test_history_summary_fields():
    history = fast_dnnopt(ConstrainedSphere(2), 20, seed=13).run()
    summary = history.summary()
    assert summary["optimizer"] == "DNN-Opt"
    assert summary["n_evals"] == 20
    assert "best_fom" in summary and "modeling_time_s" in summary


def test_fom_curve_monotone_nonincreasing():
    history = fast_dnnopt(Sphere(3), 25, seed=14).run()
    curve = history.fom_curve()
    assert len(curve) == 25
    assert np.all(np.diff(curve) <= 1e-12)


# ----------------------------------------------------------------------
# Batched proposals (Eq. 8 generalized to top-k queries per iteration)
# ----------------------------------------------------------------------
def test_batch_size_respects_budget_exactly():
    # 23 is not a multiple of 4: the final batch must truncate.
    history = fast_dnnopt(Sphere(3), 23, seed=15, batch_size=4).run()
    assert history.n_evals == 23


def test_batch_queries_are_unique():
    history = fast_dnnopt(Sphere(2), 30, seed=16, batch_size=3).run()
    X = history.X
    distances = np.linalg.norm(X[:, None, :] - X[None, :, :], axis=2)
    np.fill_diagonal(distances, np.inf)
    assert distances.min() > 1e-12


def test_batch_run_is_seed_deterministic():
    h1 = fast_dnnopt(Sphere(3), 22, seed=17, batch_size=3).run()
    h2 = fast_dnnopt(Sphere(3), 22, seed=17, batch_size=3).run()
    np.testing.assert_array_equal(h1.X, h2.X)
    np.testing.assert_array_equal(h1.fom, h2.fom)


def test_batch_size_one_matches_default():
    default = fast_dnnopt(Sphere(3), 20, seed=18).run()
    explicit = fast_dnnopt(Sphere(3), 20, seed=18, batch_size=1).run()
    np.testing.assert_array_equal(default.X, explicit.X)


def test_invalid_batch_size_rejected():
    with pytest.raises(ValueError):
        fast_dnnopt(Sphere(2), 10, batch_size=0)


def test_select_non_duplicate_returns_requested_count_in_tight_region():
    """A fully-collapsed elite region must still yield `count` unique designs.

    Every candidate duplicates the archive, the restricted region has zero
    width, and the space is integer-only — the fallback has to keep drawing
    until it finds genuinely new designs (the space has plenty).
    """
    from repro.problems.base import DesignSpace, Objective, OptimizationProblem, Variable

    class IntGrid(OptimizationProblem):
        def __init__(self):
            space = DesignSpace([Variable("a", 0, 20, kind="integer"),
                                 Variable("b", 0, 20, kind="integer")])
            super().__init__(space, Objective("f", scale=1.0), [])

        def _evaluate(self, x):
            return [float(x[0] + x[1])]

    problem = IntGrid()
    opt = fast_dnnopt(problem, 50, seed=19, batch_size=4)
    # Archive a handful of designs; make every candidate a duplicate of them.
    for x in [np.array([3.0, 3.0]), np.array([3.0, 4.0]), np.array([4.0, 3.0])]:
        opt.evaluate(x)
    archived_n = problem.space.normalize(opt.history.X)
    candidates = np.vstack([archived_n] * 3)
    scores = np.arange(len(candidates), dtype=np.float64)
    lb = ub = problem.space.normalize(np.array([3.0, 3.0]))  # zero-width region

    chosen = opt._select_non_duplicate(candidates, scores, lb, ub, count=4)
    assert chosen.shape == (4, 2)
    raw = problem.space.round(problem.space.denormalize(chosen))
    # All four are new (not archived) and mutually distinct.
    for row in raw:
        assert not any(np.array_equal(row, a) for a in opt.history.X)
    assert len({tuple(row) for row in raw}) == 4


def test_select_non_duplicate_prefers_scored_candidates():
    problem = Sphere(2)
    opt = fast_dnnopt(problem, 30, seed=20)
    candidates = np.array([[0.2, 0.2], [0.4, 0.4], [0.6, 0.6], [0.8, 0.8]])
    scores = np.array([3.0, 0.0, 1.0, 2.0])  # best first: idx 1, 2, 3, 0
    lb, ub = np.zeros(2), np.ones(2)
    chosen = opt._select_non_duplicate(candidates, scores, lb, ub, count=2)
    np.testing.assert_allclose(chosen, candidates[[1, 2]])
