"""DNN-Opt end-to-end behaviour (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import DNNOpt
from repro.problems import ConstrainedSphere, PressureVessel, Sphere


def fast_dnnopt(problem, budget, seed=0, **kw):
    """Small networks / few epochs so tests stay quick."""
    defaults = dict(n_init=10, n_elite=6, critic_epochs=8, actor_epochs=10,
                    critic_hidden=(32, 32), actor_hidden=(32, 32), max_pseudo=1500)
    defaults.update(kw)
    return DNNOpt(problem, budget, seed, **defaults)


def test_respects_budget_exactly():
    history = fast_dnnopt(Sphere(3), 25, seed=1).run()
    assert history.n_evals == 25


def test_beats_random_search_on_sphere():
    problem = Sphere(4)
    history = fast_dnnopt(problem, 50, seed=2).run()
    rng = np.random.default_rng(2)
    random_best = problem.evaluate_batch(problem.space.sample(rng, 50))[:, 0].min()
    assert history.F[:, 0].min() < random_best


def test_finds_feasible_on_constrained_problem():
    history = fast_dnnopt(ConstrainedSphere(3), 40, seed=3).run()
    assert history.any_feasible
    assert history.evals_to_first_feasible is not None


def test_stop_when_feasible_halts_early():
    opt = fast_dnnopt(ConstrainedSphere(2), 60, seed=4, stop_when_feasible=True)
    history = opt.run()
    assert history.any_feasible
    assert history.n_evals == history.evals_to_first_feasible


def test_integer_variables_stay_integral():
    history = fast_dnnopt(PressureVessel(), 25, seed=5).run()
    X = history.X
    np.testing.assert_allclose(X[:, 0], np.round(X[:, 0]))
    np.testing.assert_allclose(X[:, 1], np.round(X[:, 1]))


def test_no_duplicate_queries():
    history = fast_dnnopt(Sphere(2), 35, seed=6).run()
    X = history.X
    distances = np.linalg.norm(X[:, None, :] - X[None, :, :], axis=2)
    np.fill_diagonal(distances, np.inf)
    assert distances.min() > 1e-12


def test_initial_designs_are_simulated_first():
    problem = Sphere(3)
    seeds = np.array([[0.1, 0.2, 0.3], [1.0, 1.0, 1.0]])
    history = fast_dnnopt(problem, 20, seed=7, initial_designs=seeds).run()
    np.testing.assert_allclose(history.X[0], seeds[0])
    np.testing.assert_allclose(history.X[1], seeds[1])


def test_seed_reproducibility():
    h1 = fast_dnnopt(Sphere(3), 20, seed=11).run()
    h2 = fast_dnnopt(Sphere(3), 20, seed=11).run()
    np.testing.assert_allclose(h1.X, h2.X)
    h3 = fast_dnnopt(Sphere(3), 20, seed=12).run()
    assert not np.allclose(h1.X, h3.X)


def test_modeling_time_recorded():
    history = fast_dnnopt(Sphere(2), 15, seed=8).run()
    assert history.modeling_time > 0.0


def test_pseudo_sample_ablation_switch_runs():
    history = fast_dnnopt(Sphere(2), 18, seed=9, use_pseudo_samples=False).run()
    assert history.n_evals == 18


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        DNNOpt(Sphere(2), 10, n_elite=1)
    with pytest.raises(ValueError):
        DNNOpt(Sphere(2), 10, n_init=1)
    with pytest.raises(ValueError):
        DNNOpt(Sphere(2), 0)


def test_budget_smaller_than_ninit():
    history = fast_dnnopt(Sphere(2), 5, seed=10).run()
    assert history.n_evals == 5


def test_history_summary_fields():
    history = fast_dnnopt(ConstrainedSphere(2), 20, seed=13).run()
    summary = history.summary()
    assert summary["optimizer"] == "DNN-Opt"
    assert summary["n_evals"] == 20
    assert "best_fom" in summary and "modeling_time_s" in summary


def test_fom_curve_monotone_nonincreasing():
    history = fast_dnnopt(Sphere(3), 25, seed=14).run()
    curve = history.fom_curve()
    assert len(curve) == 25
    assert np.all(np.diff(curve) <= 1e-12)
