"""Ask/tell protocol, the Study driver, and non-blocking engine dispatch.

The load-bearing contracts of the PR-4 API redesign:

* every optimizer speaks native ask/tell, and a manual ask → evaluate →
  tell loop reproduces ``run()`` bit for bit;
* ``Study(pipeline_depth=1)`` *is* the historic blocking loop (the seed
  determinism suites pin this transitively through ``run()``);
* pipelined dispatch keeps histories replayable and, for optimizers whose
  proposals don't depend on pending tells, bit-identical at any depth;
* checkpoint/resume reproduces an uninterrupted run exactly;
* ``EvalEngine.submit``/``gather`` match ``evaluate_batch`` and never
  simulate a design twice across overlapping batches.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.baselines import (
    BOwEI,
    DifferentialEvolution,
    GASPAD,
    RandomSearch,
    SimulatedAnnealing,
)
from repro.core import BudgetExhausted, DNNOpt, EvalEngine, Optimizer, Study
from repro.core.history import OptimizationHistory
from repro.problems import ConstrainedSphere, Sphere

ALL_OPTIMIZERS = [
    ("Random", lambda p, b, s: RandomSearch(p, b, s)),
    ("DE", lambda p, b, s: DifferentialEvolution(p, b, s, pop_size=8)),
    ("SA", lambda p, b, s: SimulatedAnnealing(p, b, s, steps_per_temperature=4)),
    ("BO-wEI", lambda p, b, s: BOwEI(p, b, s, n_init=8, pool_size=64,
                                     local_points=16)),
    ("GASPAD", lambda p, b, s: GASPAD(p, b, s, n_init=8, pop_size=6)),
    ("DNN-Opt", lambda p, b, s: small_dnnopt(p, b, s)),
]


def small_dnnopt(problem, budget, seed, **kw):
    defaults = dict(n_init=8, n_elite=5, critic_epochs=4, actor_epochs=4,
                    critic_hidden=(16, 16), actor_hidden=(16, 16), max_pseudo=400)
    defaults.update(kw)
    return DNNOpt(problem, budget, seed, **defaults)


def drive_ask_tell(optimizer):
    """Minimal external driver: the documented ask/evaluate/tell loop."""
    problem = optimizer.problem
    while optimizer.history.n_evals < optimizer.budget:
        X = optimizer.ask()
        assert len(X) > 0, "nothing in flight, ask() must propose"
        X = problem.space.round(X)[:optimizer.budget - optimizer.history.n_evals]
        F = problem.evaluate_batch(X)
        optimizer.tell(X, F)
    return optimizer.history


def assert_history_equal(a, b):
    np.testing.assert_array_equal(a.X, b.X)
    np.testing.assert_array_equal(a.F, b.F)
    np.testing.assert_array_equal(a.fom, b.fom)
    np.testing.assert_array_equal(a.feasible, b.feasible)


# ----------------------------------------------------------------------
# Native ask/tell protocol
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,factory", ALL_OPTIMIZERS, ids=[n for n, _ in ALL_OPTIMIZERS])
def test_manual_ask_tell_matches_run(name, factory):
    via_run = factory(ConstrainedSphere(2), 18, 5).run()
    via_protocol = drive_ask_tell(factory(ConstrainedSphere(2), 18, 5))
    assert_history_equal(via_run, via_protocol)


@pytest.mark.parametrize("name,factory", ALL_OPTIMIZERS, ids=[n for n, _ in ALL_OPTIMIZERS])
def test_explicit_study_matches_run(name, factory):
    via_run = factory(Sphere(3), 16, 2).run()
    via_study = Study(factory(Sphere(3), 16, 2)).run()
    assert_history_equal(via_run, via_study)


def test_ask_validates_k():
    opt = RandomSearch(Sphere(2), 10, 0)
    with pytest.raises(ValueError):
        opt.ask(0)


def test_tell_rejects_mismatched_rows():
    opt = RandomSearch(Sphere(2), 10, 0)
    with pytest.raises(ValueError):
        opt.tell(np.zeros((2, 2)), np.zeros((3, 1)))


def test_tell_records_rounded_designs():
    from repro.problems import PressureVessel
    problem = PressureVessel()
    opt = RandomSearch(problem, 10, 0)
    x = np.array([5.2, 4.8, 50.0, 100.0])
    opt.tell(x, problem.evaluate(x))
    np.testing.assert_array_equal(opt.history.X[0],
                                  problem.space.round(x))


def test_de_waits_for_initial_population():
    opt = DifferentialEvolution(Sphere(2), 30, 0, pop_size=6)
    X = opt.ask()
    assert len(X) == 6  # the whole initial population
    assert len(opt.ask()) == 0  # cannot breed until it is told
    opt.tell(X, opt.problem.evaluate_batch(X))
    assert len(opt.ask()) == 1  # one trial vector per ask thereafter


@pytest.mark.parametrize("name,factory", ALL_OPTIMIZERS, ids=[n for n, _ in ALL_OPTIMIZERS])
def test_ask_honors_requested_count(name, factory):
    # ask(k) may return at most k designs in every phase, including the
    # space-filling initial block (Study(ask_size=k) bounds batch width to
    # the engine's worker pool).
    opt = factory(ConstrainedSphere(2), 40, 1)
    while opt.history.n_evals < 12:
        X = opt.ask(3)
        assert 0 < len(X) <= 3
        opt.tell(X, opt.problem.evaluate_batch(X))


def test_sa_waits_for_starting_point():
    opt = SimulatedAnnealing(Sphere(2), 30, 0)
    X = opt.ask()
    assert len(X) == 1
    assert len(opt.ask()) == 0
    opt.tell(X, opt.problem.evaluate_batch(X))
    assert len(opt.ask(3)) == 3  # batch of random-walk proposals


# ----------------------------------------------------------------------
# BudgetExhausted is public API on the direct-call path
# ----------------------------------------------------------------------
def test_budget_exhausted_public_direct_call():
    problem = Sphere(2)
    opt = RandomSearch(problem, 3, 0)
    for _ in range(3):
        opt.evaluate(problem.space.sample(opt.rng, 1)[0])
    with pytest.raises(BudgetExhausted):
        opt.evaluate(problem.space.sample(opt.rng, 1)[0])
    assert opt.history.n_evals == 3


def test_budget_exhausted_aliases_old_private_name():
    assert Optimizer._BudgetExhausted is BudgetExhausted
    assert isinstance(BudgetExhausted(), Exception)


def test_stop_when_feasible_direct_call_raises():
    problem = ConstrainedSphere(2)
    opt = RandomSearch(problem, 50, 0, stop_when_feasible=True)
    feasible_x = np.array([1.0, 1.0])
    with pytest.raises(BudgetExhausted):
        opt.evaluate(feasible_x)
    assert opt.history.n_evals == 1


# ----------------------------------------------------------------------
# Study: stop conditions, callbacks, engine stats
# ----------------------------------------------------------------------
def test_study_invalid_parameters():
    opt = RandomSearch(Sphere(2), 5, 0)
    with pytest.raises(ValueError):
        Study(opt, pipeline_depth=0)
    with pytest.raises(ValueError):
        Study(opt, ask_size=0)
    with pytest.raises(ValueError):
        Study(opt, checkpoint_every=-1)


def test_study_callbacks_and_request_stop():
    batches = []

    def watcher(study):
        batches.append(study.history.n_evals)
        if study.history.n_evals >= 6:
            study.request_stop()

    study = Study(RandomSearch(Sphere(2), 50, 0), callbacks=[watcher])
    history = study.run()
    assert history.n_evals == 6
    assert batches == list(range(1, 7))


def test_study_stop_when_predicate():
    study = Study(RandomSearch(Sphere(2), 50, 0),
                  stop_when=lambda h: h.n_evals >= 4)
    assert study.run().n_evals == 4


def test_engine_stats_surface_in_summary():
    engine = EvalEngine("serial")
    opt = small_dnnopt(Sphere(2), 15, 3, engine=engine)
    summary = Study(opt).run().summary()
    stats = summary["engine"]
    assert stats["backend"] == "serial"
    assert stats["misses"] == engine.n_sim_calls
    assert stats["misses"] <= 15
    assert stats["cache_hits"] >= 0 and stats["dedups"] >= 0
    assert 0.0 <= stats["hit_rate"] <= 1.0


def test_engine_stats_are_per_run_deltas():
    engine = EvalEngine("serial")
    h1 = Study(RandomSearch(Sphere(2), 8, 1, engine=engine)).run()
    h2 = Study(RandomSearch(Sphere(2), 8, 1, engine=engine)).run()
    assert h1.engine_stats["misses"] == 8
    # Second identical run is answered entirely from the shared cache.
    assert h2.engine_stats["misses"] == 0
    assert h2.engine_stats["cache_hits"] == 8
    assert h2.engine_stats["hit_rate"] == 1.0


# ----------------------------------------------------------------------
# Pipelined dispatch
# ----------------------------------------------------------------------
@pytest.mark.parametrize("depth", [2, 4])
def test_pipelined_random_search_bit_identical(depth):
    serial = RandomSearch(Sphere(3), 20, 9).run()
    with EvalEngine("async", workers=2) as engine:
        pipelined = Study(RandomSearch(Sphere(3), 20, 9), engine=engine,
                          pipeline_depth=depth).run()
    assert_history_equal(serial, pipelined)


def test_pipelined_batched_random_search_bit_identical():
    # ask_size batches the draws, pipeline keeps them in flight; RandomSearch
    # consumes one RNG draw per design either way.
    serial = RandomSearch(Sphere(3), 21, 4).run()
    with EvalEngine("async", workers=3) as engine:
        pipelined = Study(RandomSearch(Sphere(3), 21, 4), engine=engine,
                          ask_size=4, pipeline_depth=3).run()
    assert_history_equal(serial, pipelined)


@pytest.mark.parametrize("name,factory", ALL_OPTIMIZERS, ids=[n for n, _ in ALL_OPTIMIZERS])
def test_pipelined_histories_replay_to_same_evaluations(name, factory):
    # Pipelined proposals may condition on a stale archive (so trajectories
    # may differ from serial), but every recorded row must be the
    # deterministic simulator answer for its design, the budget must be
    # respected exactly, and the run must be seed-reproducible.
    def run_once():
        with EvalEngine("async", workers=2) as engine:
            return Study(factory(ConstrainedSphere(2), 14, 3), engine=engine,
                         pipeline_depth=2).run()

    h1, h2 = run_once(), run_once()
    assert h1.n_evals == 14
    assert_history_equal(h1, h2)
    problem = ConstrainedSphere(2)
    np.testing.assert_array_equal(problem.evaluate_batch(h1.X), h1.F)


def test_stuck_optimizer_raises_instead_of_spinning():
    class NeverReady(Optimizer):
        name = "never"

        def _ask(self, k):
            return np.empty((0, self.problem.dim))

    with pytest.raises(RuntimeError, match="stuck"):
        Study(NeverReady(Sphere(2), 5, 0)).run()


# ----------------------------------------------------------------------
# stop_when_feasible x batch_size>1 x pipelined dispatch
# ----------------------------------------------------------------------
def serial_one_query_reference(factory):
    """The paper's serial protocol: one query at a time, stop at feasibility."""
    opt = factory()
    problem = opt.problem
    while opt.history.n_evals < opt.budget:
        X = problem.space.round(opt.ask(1))
        F = problem.evaluate_batch(X)
        opt.tell(X, F)
        if opt.history.feasible[-1]:
            break
    return opt.history


def test_stop_when_feasible_pipelined_matches_serial_protocol():
    # RandomSearch proposals are independent of pending tells, so the batched
    # + pipelined history must equal the serial one-query protocol *bit for
    # bit* — later in-flight batches are discarded, and the kept prefix ends
    # exactly at the first feasible design.
    factory = lambda: RandomSearch(ConstrainedSphere(2), 60, 12,
                                   stop_when_feasible=True)
    reference = serial_one_query_reference(
        lambda: RandomSearch(ConstrainedSphere(2), 60, 12))
    with EvalEngine("async", workers=2) as engine:
        got = Study(factory(), engine=engine, ask_size=5,
                    pipeline_depth=3).run()
    assert_history_equal(reference, got)
    assert got.feasible[-1] and not got.feasible[:-1].any()


def test_stop_when_feasible_batched_dnnopt_keeps_serial_prefix():
    # A batched DNN-Opt run with stop_when_feasible must record exactly the
    # no-stop run's history truncated at its first feasible design (rows
    # after the first feasible one in a batch are discarded).
    free = small_dnnopt(ConstrainedSphere(2), 30, 6, batch_size=3).run()
    first = free.evals_to_first_feasible
    assert first is not None and first < 30
    stopped = small_dnnopt(ConstrainedSphere(2), 30, 6, batch_size=3,
                           stop_when_feasible=True).run()
    assert stopped.n_evals == first
    np.testing.assert_array_equal(stopped.X, free.X[:first])
    np.testing.assert_array_equal(stopped.F, free.F[:first])


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
def test_history_json_round_trip():
    problem = ConstrainedSphere(2)
    history = RandomSearch(problem, 12, 7).run()
    blob = json.dumps(history.to_dict())  # must be plain JSON
    restored = OptimizationHistory.from_dict(problem, json.loads(blob))
    assert_history_equal(history, restored)
    assert restored.seed == history.seed
    assert restored.optimizer_name == history.optimizer_name
    assert restored.simulation_time == history.simulation_time


@pytest.mark.parametrize("make_opt", [
    lambda p: SimulatedAnnealing(p, 20, 3, steps_per_temperature=4),
    lambda p: DifferentialEvolution(p, 20, 3, pop_size=6),
    lambda p: small_dnnopt(p, 18, 3, critic_epochs=2, actor_epochs=2),
], ids=["SA", "DE", "DNN-Opt"])
def test_checkpoint_resume_bit_identical(tmp_path, make_opt):
    problem_factory = lambda: ConstrainedSphere(2)
    reference = Study(make_opt(problem_factory())).run()

    # "Kill" a study mid-budget: checkpoint every batch, stop part-way.
    path = tmp_path / "study.ckpt.json"
    interrupted = Study(make_opt(problem_factory()), checkpoint_path=str(path),
                        checkpoint_every=1,
                        callbacks=[lambda s: s.history.n_evals >= 9
                                   and s.request_stop()])
    partial = interrupted.run()
    assert partial.n_evals < reference.n_evals

    # Resume with a fresh, identically-constructed optimizer and finish.
    resumed = Study.load(str(path), make_opt(problem_factory()))
    finished = resumed.run()
    assert_history_equal(reference, finished)


def test_checkpoint_resume_does_not_resimulate_prefix(tmp_path):
    class CountingSphere(Sphere):
        def __init__(self, dim=2):
            super().__init__(dim)
            self.calls = 0

        def _evaluate(self, x):
            self.calls += 1
            return super()._evaluate(x)

    path = tmp_path / "ckpt.json"
    study = Study(RandomSearch(CountingSphere(), 10, 1),
                  checkpoint_path=str(path), checkpoint_every=1,
                  callbacks=[lambda s: s.history.n_evals >= 6
                             and s.request_stop()])
    study.run()

    fresh_problem = CountingSphere()
    finished = Study.load(str(path), RandomSearch(fresh_problem, 10, 1)).run()
    assert finished.n_evals == 10
    assert fresh_problem.calls == 4  # only the un-recorded tail is simulated


def test_checkpoint_resume_after_stop_when_feasible_truncation(tmp_path):
    # A stop_when_feasible run can end by truncating its final batch; the
    # checkpoint records only the kept prefix.  Resuming must serve that
    # prefix (re-firing the same stop), not mistake the unrecorded batch
    # suffix for divergence.
    make = lambda: RandomSearch(ConstrainedSphere(2), 60, 12,
                                stop_when_feasible=True)
    study = Study(make(), ask_size=5)
    reference = study.run()
    assert reference.n_evals % 5 != 0  # the final batch really was truncated
    path = tmp_path / "ckpt.json"
    study.save(str(path))
    finished = Study.load(str(path), make()).run()
    assert_history_equal(reference, finished)


def test_checkpoint_load_rejects_stop_when_feasible_mismatch(tmp_path):
    path = tmp_path / "ckpt.json"
    study = Study(RandomSearch(ConstrainedSphere(2), 10, 1,
                               stop_when_feasible=True))
    study.run()
    study.save(str(path))
    with pytest.raises(ValueError, match="stop_when_feasible"):
        Study.load(str(path), RandomSearch(ConstrainedSphere(2), 10, 1))


def test_checkpoint_resume_restores_simulation_time(tmp_path):
    path = tmp_path / "ckpt.json"
    study = Study(RandomSearch(Sphere(2), 12, 2), checkpoint_path=str(path),
                  checkpoint_every=1,
                  callbacks=[lambda s: s.history.n_evals >= 8
                             and s.request_stop()])
    partial = study.run()
    assert partial.simulation_time > 0.0
    resumed = Study.load(str(path), RandomSearch(Sphere(2), 12, 2))
    finished = resumed.run()
    # The prefix's simulator cost is carried over, not silently dropped.
    assert finished.simulation_time >= partial.simulation_time


def test_checkpoint_resume_detects_hyperparameter_mismatch(tmp_path):
    # Identity metadata (class/seed/budget/problem) matches, but a changed
    # hyperparameter alters the deterministic proposal stream — the resume
    # must fail loudly instead of silently re-simulating the whole budget.
    path = tmp_path / "ckpt.json"
    study = Study(DifferentialEvolution(Sphere(2), 30, 1, pop_size=6),
                  checkpoint_path=str(path), checkpoint_every=1,
                  callbacks=[lambda s: s.history.n_evals >= 10
                             and s.request_stop()])
    study.run()
    resumed = Study.load(str(path),
                         DifferentialEvolution(Sphere(2), 30, 1, pop_size=8))
    with pytest.raises(ValueError, match="diverged"):
        resumed.run()


def test_checkpoint_load_rejects_mismatched_optimizer(tmp_path):
    path = tmp_path / "ckpt.json"
    study = Study(RandomSearch(Sphere(2), 8, 1))
    study.run()
    study.save(str(path))
    with pytest.raises(ValueError, match="seed"):
        Study.load(str(path), RandomSearch(Sphere(2), 8, 2))
    with pytest.raises(ValueError, match="budget"):
        Study.load(str(path), RandomSearch(Sphere(2), 9, 1))
    with pytest.raises(ValueError, match="class"):
        Study.load(str(path), SimulatedAnnealing(Sphere(2), 8, 1))
    with pytest.raises(ValueError, match="dim"):
        Study.load(str(path), RandomSearch(Sphere(3), 8, 1))
    with pytest.raises(ValueError, match="fresh"):
        Study.load(str(path), study.optimizer)


# ----------------------------------------------------------------------
# EvalEngine.submit / gather
# ----------------------------------------------------------------------
class SlowCountingSphere(Sphere):
    """Sphere with a small evaluation latency and an invocation counter."""

    def __init__(self, dim=2, latency_s=0.01):
        super().__init__(dim)
        self.latency_s = latency_s
        self.calls = 0
        self._lock = threading.Lock()

    def _evaluate(self, x):
        with self._lock:
            self.calls += 1
        time.sleep(self.latency_s)
        return super()._evaluate(x)


@pytest.mark.parametrize("backend", ["serial", "thread", "async"])
def test_submit_gather_matches_evaluate_batch(backend):
    problem = Sphere(3)
    X = problem.space.sample(np.random.default_rng(0), 9)
    expected = problem.evaluate_batch(X)
    with EvalEngine(backend, workers=2) as engine:
        handle = engine.submit(problem, X)
        np.testing.assert_array_equal(engine.gather(handle), expected)
        assert handle.done()


def test_submit_is_nonblocking():
    problem = SlowCountingSphere(2, latency_s=0.2)
    with EvalEngine("serial") as engine:
        t0 = time.perf_counter()
        handle = engine.submit(problem, problem.space.sample(
            np.random.default_rng(0), 3))
        submit_elapsed = time.perf_counter() - t0
        F = engine.gather(handle)
    assert submit_elapsed < 0.15  # 3 designs x 0.2s run in the background
    assert F.shape == (3, 1)


def test_overlapping_submits_share_inflight_designs():
    problem = SlowCountingSphere(2, latency_s=0.05)
    rng = np.random.default_rng(1)
    X = problem.space.sample(rng, 4)
    with EvalEngine("serial") as engine:
        h1 = engine.submit(problem, X)
        h2 = engine.submit(problem, X)  # identical batch while 1 is in flight
        F1, F2 = engine.gather(h1), engine.gather(h2)
    np.testing.assert_array_equal(F1, F2)
    assert problem.calls == 4  # second batch rode the first's futures
    assert engine.n_dedup == 4
    assert engine._inflight == {}


def test_submit_after_gather_hits_cache():
    problem = SlowCountingSphere(2, latency_s=0.0)
    X = problem.space.sample(np.random.default_rng(2), 5)
    with EvalEngine("serial") as engine:
        engine.gather(engine.submit(problem, X))
        engine.gather(engine.submit(problem, X))
        assert problem.calls == 5
        assert engine.n_cache_hits == 5


def test_submit_switches_process_pool_between_problems():
    # A problem switch under the process backend retires the warm pool from
    # inside a submit-pool dispatch thread; it must swap only the worker
    # pool (never shut down the submit pool it is running on) and keep the
    # engine usable.
    rng = np.random.default_rng(4)
    a, b = ConstrainedSphere(2), Sphere(3)
    with EvalEngine("process", workers=2, cache_size=0) as engine:
        Xa, Xb = a.space.sample(rng, 4), b.space.sample(rng, 4)
        np.testing.assert_array_equal(
            engine.gather(engine.submit(a, Xa)), a.evaluate_batch(Xa))
        np.testing.assert_array_equal(
            engine.gather(engine.submit(b, Xb)), b.evaluate_batch(Xb))
        assert engine.n_pool_builds == 2
        # ...and back again, still on the same engine.
        np.testing.assert_array_equal(
            engine.gather(engine.submit(a, Xa)), a.evaluate_batch(Xa))
        assert engine.n_pool_builds == 3


def test_gather_propagates_evaluation_errors():
    class Exploding(Sphere):
        def _evaluate(self, x):
            raise RuntimeError("simulator crashed")

    problem = Exploding(2)
    with EvalEngine("serial") as engine:
        handle = engine.submit(problem, problem.space.sample(
            np.random.default_rng(3), 2))
        with pytest.raises(RuntimeError, match="simulator crashed"):
            engine.gather(handle)
        assert engine._inflight == {}  # failed keys are not left dangling


# ----------------------------------------------------------------------
# Canonical replay keys: mixed-integer checkpoints
# ----------------------------------------------------------------------
def test_checkpoint_resume_bit_identical_with_integer_dims(tmp_path):
    # Integer rounding used to be the gap between the replay store's keys
    # and the engine's cache keys (raw vs rounded bytes, signed zeros);
    # both now go through DesignSpace.canonical, so a mixed-integer
    # checkpoint resumes bit-identically.
    from repro.problems import PressureVessel
    make = lambda: RandomSearch(PressureVessel(), 14, 4)
    reference = Study(make()).run()
    assert PressureVessel().space.integer_mask.any()

    path = tmp_path / "mixed.ckpt.json"
    interrupted = Study(make(), checkpoint_path=str(path), checkpoint_every=1,
                        callbacks=[lambda s: s.history.n_evals >= 8
                                   and s.request_stop()])
    interrupted.run()
    finished = Study.load(str(path), make()).run()
    assert_history_equal(reference, finished)


# ----------------------------------------------------------------------
# auto_checkpoint: crash-resumable shorthand
# ----------------------------------------------------------------------
def test_auto_checkpoint_parameter_validation(tmp_path):
    opt = RandomSearch(Sphere(2), 5, 0)
    path = tmp_path / "auto.ckpt.json"
    with pytest.raises(ValueError, match="not both"):
        Study(opt, auto_checkpoint=str(path), checkpoint_path=str(path))
    with pytest.raises(ValueError, match="every requires"):
        Study(opt, every=2)
    with pytest.raises(ValueError, match="every must be"):
        Study(opt, auto_checkpoint=str(path), every=0)
    study = Study(opt, auto_checkpoint=str(path), every=3)
    assert study.checkpoint_path == str(path)
    assert study.checkpoint_every == 3
    assert Study(opt, auto_checkpoint=str(path)).checkpoint_every == 1


def test_auto_checkpoint_writes_final_snapshot_on_normal_return(tmp_path):
    path = tmp_path / "auto.ckpt.json"
    history = Study(RandomSearch(Sphere(2), 8, 1),
                    auto_checkpoint=str(path)).run()
    assert path.exists()
    # the on-exit snapshot resumes to the already-complete run
    resumed = Study.load(str(path), RandomSearch(Sphere(2), 8, 1)).run()
    assert_history_equal(history, resumed)


def test_auto_checkpoint_crash_mid_run_resumes_bit_identical(tmp_path):
    # The failure-domain pin: a run killed mid-batch by a raising evaluation
    # (the local stand-in for a fleet outage) leaves its last told batch on
    # disk; resuming with a healthy problem completes bit-identically to an
    # uninterrupted run, without re-simulating the recorded prefix.
    class DyingSphere(Sphere):
        def __init__(self, dim=2, fail_after=9):
            super().__init__(dim)
            self.calls = 0
            self.fail_after = fail_after

        def _evaluate(self, x):
            self.calls += 1
            if self.calls > self.fail_after:
                raise RuntimeError("simulator farm went down")
            return super()._evaluate(x)

    reference = Study(RandomSearch(Sphere(2), 16, 3)).run()
    path = tmp_path / "crash.ckpt.json"
    crashing = Study(RandomSearch(DyingSphere(2, fail_after=9), 16, 3),
                     auto_checkpoint=str(path))
    with pytest.raises(RuntimeError, match="farm went down"):
        crashing.run()
    assert path.exists(), "the crash exit path must still write a snapshot"
    assert crashing.n_batches >= 1

    resumed = Study.load(str(path), RandomSearch(Sphere(2), 16, 3)).run()
    assert_history_equal(reference, resumed)
