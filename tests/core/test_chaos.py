"""Seeded fault injection against the fleet: the failure-domain pins.

The acceptance contract of the hardening layer: under *every* injected
fault family — hung worker, worker crash, dropped connection, duplicated
reply, out-of-order reply, corrupt frame, injected straggler — a
two-tenant fleet run completes with histories **bit-identical** to the
serial runs and with zero lost or double-counted simulations.  The faults
are driven by :class:`repro.core.chaos.FaultPlan` through a frame-level
:class:`~repro.core.chaos.ChaosProxy`, so the coordinator under test runs
unmodified production code and every recovery path (chunk deadlines,
bounded requeue, quarantine backoff, hedged re-dispatch, first-reply-wins
discard) is provoked deterministically.
"""

import threading

import numpy as np
import pytest

from repro.baselines import RandomSearch
from repro.core import EvalEngine
from repro.core import service
from repro.core.chaos import ChaosProxy, FaultPlan, FaultSpec
from repro.core.fleet import FleetCoordinator
from repro.problems import ConstrainedSphere, Sphere


# ----------------------------------------------------------------------
# FaultSpec / FaultPlan semantics
# ----------------------------------------------------------------------
def test_fault_spec_validation():
    with pytest.raises(ValueError, match="kind"):
        FaultSpec("explode", nth=1)
    with pytest.raises(ValueError, match="exactly one"):
        FaultSpec("hang")  # no trigger
    with pytest.raises(ValueError, match="exactly one"):
        FaultSpec("hang", nth=1, every=2)  # two triggers
    with pytest.raises(ValueError, match="1-based"):
        FaultSpec("hang", nth=0)
    with pytest.raises(ValueError, match="probability"):
        FaultSpec("hang", probability=1.5)


def test_fault_plan_counters_are_exact_and_per_spec():
    plan = FaultPlan([FaultSpec("hang", nth=2),
                      FaultSpec("duplicate", every=3)])
    fired = [[spec.kind for spec in plan.decide("eval")] for _ in range(6)]
    assert fired == [[], ["hang"], ["duplicate"], [], [], ["duplicate"]]
    assert plan.fired == {"hang": 1, "duplicate": 2}
    # op filters count independently: a non-matching frame advances nothing
    plan2 = FaultPlan([FaultSpec("drop", op="eval", nth=1)])
    assert plan2.decide("hello") == []
    assert [s.kind for s in plan2.decide("eval")] == ["drop"]


def test_fault_plan_probability_is_seed_reproducible():
    def draw(seed):
        plan = FaultPlan([FaultSpec("drop", probability=0.5)], seed=seed)
        return [bool(plan.decide("eval")) for _ in range(32)]

    assert draw(7) == draw(7)          # same seed, same schedule
    assert draw(7) != draw(8)          # different seed decorrelates
    assert any(draw(7)) and not all(draw(7))


# ----------------------------------------------------------------------
# proxy passthrough: no faults, no interference
# ----------------------------------------------------------------------
def test_chaos_proxy_passthrough_is_transparent():
    server = service.EvalWorkerServer(port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        with ChaosProxy(server.address, FaultPlan([])) as proxy:
            problem = Sphere(3)
            X = problem.space.sample(np.random.default_rng(0), 7)
            with EvalEngine("remote", hosts=[proxy.address]) as engine:
                np.testing.assert_array_equal(engine.evaluate_batch(problem, X),
                                              problem.evaluate_batch(X))
    finally:
        server.close()
        thread.join(timeout=5)


def test_chaos_proxy_crash_refuses_new_connections():
    server = service.EvalWorkerServer(port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        proxy = ChaosProxy(server.address, FaultPlan([]))
        proxy.crash()
        assert proxy.stopped
        with pytest.raises((ConnectionError, OSError)):
            service.MultiplexedConnection(service.parse_host(proxy.address),
                                          connect_timeout=2.0)
    finally:
        server.close()
        thread.join(timeout=5)


# ----------------------------------------------------------------------
# the acceptance matrix: 2 tenants, 2 workers, one faulted via the proxy
# ----------------------------------------------------------------------
#: (name, plan factory, coordinator kwargs).  ``chunk_timeout`` arms the
#: deadline where the fault would otherwise stall forever (a swallowed or
#: withheld reply); ``hedge_factor`` exercises speculative re-dispatch
#: against the injected straggler.
FAULT_MATRIX = [
    ("hang", lambda: FaultPlan([FaultSpec("hang", nth=2)]),
     dict(chunk_timeout=1.0)),
    ("crash", lambda: FaultPlan([FaultSpec("crash", nth=3)]), {}),
    ("drop", lambda: FaultPlan([FaultSpec("drop", nth=2)]), {}),
    ("duplicate", lambda: FaultPlan([FaultSpec("duplicate", every=2)]), {}),
    ("reorder", lambda: FaultPlan([FaultSpec("reorder", every=3)]),
     dict(chunk_timeout=1.0)),
    ("corrupt", lambda: FaultPlan([FaultSpec("corrupt", nth=4)]), {}),
    ("straggler", lambda: FaultPlan([FaultSpec("delay", every=2,
                                               delay_s=0.1)]),
     dict(hedge_factor=3.0, hedge_min_s=0.05, chunk_timeout=5.0)),
]


@pytest.mark.parametrize("name,plan_factory,coord_kwargs",
                         FAULT_MATRIX, ids=[c[0] for c in FAULT_MATRIX])
def test_two_tenant_fleet_bit_identical_under_faults(name, plan_factory,
                                                     coord_kwargs):
    serial_a = RandomSearch(Sphere(3), 20, seed=1).run()
    serial_b = RandomSearch(ConstrainedSphere(2), 16, seed=2).run()

    servers, threads = [], []
    for _ in range(2):
        server = service.EvalWorkerServer(port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append(server)
        threads.append(thread)
    plan = plan_factory()
    proxy = ChaosProxy(servers[0].address, plan)
    try:
        hosts = [proxy.address, servers[1].address]
        with FleetCoordinator(hosts=hosts, poll_interval=0.05,
                              **coord_kwargs) as fleet:
            engine_a = fleet.engine("study-a", priority=2.0)
            engine_b = fleet.engine("study-b")
            histories, errors = {}, {}

            def run(key, problem, budget, seed, engine):
                try:
                    histories[key] = RandomSearch(problem, budget, seed=seed,
                                                  engine=engine).run()
                except Exception as exc:  # surfaced below with context
                    errors[key] = exc

            thread_a = threading.Thread(
                target=run, args=("a", Sphere(3), 20, 1, engine_a))
            thread_b = threading.Thread(
                target=run, args=("b", ConstrainedSphere(2), 16, 2, engine_b))
            thread_a.start()
            thread_b.start()
            thread_a.join(120)
            thread_b.join(120)
            assert not errors, f"fleet run died under {name!r}: {errors}"
            assert "a" in histories and "b" in histories, (
                f"fleet run hung under injected {name!r} fault")
            # zero lost, zero double-counted simulations
            assert engine_a.n_sim_calls == 20
            assert engine_b.n_sim_calls == 16
            stats = fleet.stats()
            assert stats["tenants"]["study-a"]["worker_sims"] == 20
            assert stats["tenants"]["study-b"]["worker_sims"] == 16
            engine_a.close()
            engine_b.close()
    finally:
        proxy.close()
        for server in servers:
            server.close()
        for thread in threads:
            thread.join(timeout=5)

    assert plan.fired.get(FAULT_MATRIX_KIND[name], 0) >= 1, (
        f"the {name!r} fault never fired — the test proved nothing")
    np.testing.assert_array_equal(histories["a"].X, serial_a.X)
    np.testing.assert_array_equal(histories["a"].F, serial_a.F)
    np.testing.assert_array_equal(histories["b"].X, serial_b.X)
    np.testing.assert_array_equal(histories["b"].F, serial_b.F)


#: test id -> the FaultSpec kind whose firing proves the fault happened.
FAULT_MATRIX_KIND = {
    "hang": "hang", "crash": "crash", "drop": "drop",
    "duplicate": "duplicate", "reorder": "reorder", "corrupt": "corrupt",
    "straggler": "delay",
}
