"""Evaluation service: wire protocol, worker servers, remote determinism.

The load-bearing contract mirrors the engine suite: optimizer histories
produced through ``EvalEngine(backend="remote")`` against live worker
server processes are *bit-identical* to ``backend="serial"`` — including on
the folded-cascode SPICE problem — and the coordinator-side cache is the
shared tier, so a design repeated across shards is simulated exactly once
service-wide.

Worker processes are spawned per test module with ``--port 0`` (free
ports); set ``REPRO_SERVICE_HOSTS=host:port,host:port`` to run the same
tests against an externally-started service instead (the CI service smoke
does exactly that).
"""

import json
import os
import socket
import subprocess
import threading

import numpy as np
import pytest

from repro.baselines import RandomSearch
from repro.circuits import FoldedCascodeOTA
from repro.core import DNNOpt, EvalEngine
from repro.core import service
from repro.experiments import run_trials
from repro.problems import ConstrainedSphere, Sphere

# ----------------------------------------------------------------------
# worker fixtures
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def service_hosts():
    env_hosts = [h.strip() for h in
                 os.environ.get("REPRO_SERVICE_HOSTS", "").split(",") if h.strip()]
    if env_hosts:
        yield env_hosts
        return
    procs, hosts = [], []
    try:
        for _ in range(2):
            proc, host = service.spawn_local_worker()
            procs.append(proc)
            hosts.append(host)
        yield hosts
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()


@pytest.fixture()
def local_server():
    """One in-process worker server on a free port (protocol-level tests)."""
    server = service.EvalWorkerServer(port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.close()
    thread.join(timeout=5)


def _client(server):
    return socket.create_connection((server.host, server.port), timeout=10)


def _roundtrip(conn, msg):
    service.send_msg(conn, msg)
    return service.recv_msg(conn)


def _put_problem(conn, engine, problem):
    import base64
    import pickle
    token = engine._problem_token(problem).hex()
    blob = base64.b64encode(pickle.dumps(problem)).decode("ascii")
    reply = _roundtrip(conn, {"op": "put_problem", "token": token, "blob": blob})
    assert reply["ok"]
    return token


# ----------------------------------------------------------------------
# framing / protocol
# ----------------------------------------------------------------------
def test_frame_roundtrip_over_socketpair():
    a, b = socket.socketpair()
    try:
        msg = {"op": "hello", "x": [1.5, 2.0 ** -52, -0.0], "nested": {"k": [1, 2]}}
        service.send_msg(a, msg)
        assert service.recv_msg(b) == msg
        # several frames back-to-back arrive intact and in order
        for i in range(5):
            service.send_msg(a, {"i": i})
        assert [service.recv_msg(b)["i"] for _ in range(5)] == list(range(5))
    finally:
        a.close()
        b.close()


def test_clean_eof_returns_none():
    a, b = socket.socketpair()
    a.close()
    try:
        assert service.recv_msg(b) is None
    finally:
        b.close()


def test_oversized_frame_rejected():
    a, b = socket.socketpair()
    try:
        a.sendall((service.MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        with pytest.raises(ConnectionError):
            service.recv_msg(b)
    finally:
        a.close()
        b.close()


def test_json_roundtrip_preserves_float64_bits():
    rng = np.random.default_rng(0)
    rows = (rng.standard_normal((7, 5)) * 10.0 ** rng.integers(-12, 12, (7, 5)))
    back = np.asarray(json.loads(json.dumps(rows.tolist())), dtype=np.float64)
    np.testing.assert_array_equal(back, rows)  # bit-exact, not approximate


def test_parse_host():
    assert service.parse_host("127.0.0.1:9101") == ("127.0.0.1", 9101)
    assert service.parse_host(" box:80 ") == ("box", 80)
    with pytest.raises(ValueError):
        service.parse_host("9101")


# ----------------------------------------------------------------------
# worker server behaviour
# ----------------------------------------------------------------------
def test_worker_hello_and_unknown_op(local_server):
    with _client(local_server) as conn:
        hello = _roundtrip(conn, {"op": "hello"})
        assert hello["ok"] and hello["protocol"] == service.PROTOCOL_VERSION
        bad = _roundtrip(conn, {"op": "frobnicate"})
        assert not bad["ok"] and "unknown op" in bad["error"]


def test_worker_eval_requires_problem(local_server):
    with _client(local_server) as conn:
        reply = _roundtrip(conn, {"op": "eval", "token": "ff", "X": [[0.0]]})
        assert not reply["ok"] and reply.get("need_problem")


def test_worker_eval_matches_local_evaluation(local_server):
    problem = Sphere(3)
    X = problem.space.sample(np.random.default_rng(1), 6)
    with _client(local_server) as conn:
        token = _put_problem(conn, EvalEngine(), problem)
        reply = _roundtrip(conn, {"op": "eval", "token": token, "X": X.tolist()})
    assert reply["ok"] and reply["n_sims"] == 6
    np.testing.assert_array_equal(np.asarray(reply["F"]), problem.evaluate_batch(X))


def test_worker_survives_bad_request_and_abrupt_disconnect(local_server):
    # A malformed request answers with ok=False instead of killing the shard,
    # and a peer that connects then vanishes doesn't take the server down.
    probe = _client(local_server)
    probe.close()
    with _client(local_server) as conn:
        reply = _roundtrip(conn, {"op": "eval"})  # missing fields
        assert not reply["ok"]
        assert _roundtrip(conn, {"op": "hello"})["ok"]  # still serving


# ----------------------------------------------------------------------
# remote backend: determinism and the shared cache tier
# ----------------------------------------------------------------------
def test_remote_backend_requires_hosts(monkeypatch):
    monkeypatch.delenv("REPRO_SERVICE_HOSTS", raising=False)
    with pytest.raises(ValueError):
        EvalEngine("remote")


def test_remote_batch_matches_direct_evaluation(service_hosts):
    problem = Sphere(4)
    X = problem.space.sample(np.random.default_rng(0), 13)
    with EvalEngine("remote", hosts=service_hosts) as engine:
        np.testing.assert_array_equal(engine.evaluate_batch(problem, X),
                                      problem.evaluate_batch(X))


def test_remote_duplicates_simulated_once_service_wide(service_hosts):
    # 4 unique designs tiled into 12 rows: the coordinator-owned cache tier
    # must dispatch exactly 4 simulations across both shards.
    problem = Sphere(3)
    unique = problem.space.sample(np.random.default_rng(2), 4)
    X = np.vstack([unique] * 3)
    with EvalEngine("remote", hosts=service_hosts) as engine:
        F = engine.evaluate_batch(problem, X)
        assert engine.n_sim_calls == 4
        assert engine.worker_sim_calls == 4
        # a follow-up batch of the same designs never reaches the wire
        engine.evaluate_batch(problem, unique)
        assert engine.worker_sim_calls == 4
    np.testing.assert_array_equal(F[:4], F[4:8])


def test_remote_random_search_history_bit_identical(service_hosts):
    serial = RandomSearch(Sphere(3), 20, seed=5).run()
    with EvalEngine("remote", hosts=service_hosts) as engine:
        remote = RandomSearch(Sphere(3), 20, seed=5, engine=engine).run()
    np.testing.assert_array_equal(serial.X, remote.X)
    np.testing.assert_array_equal(serial.F, remote.F)
    np.testing.assert_array_equal(serial.fom, remote.fom)
    np.testing.assert_array_equal(serial.feasible, remote.feasible)


def test_remote_batched_dnnopt_history_bit_identical(service_hosts):
    def build(problem, engine=None):
        return DNNOpt(problem, 18, 7, n_init=8, n_elite=5, critic_epochs=5,
                      actor_epochs=5, critic_hidden=(16, 16),
                      actor_hidden=(16, 16), max_pseudo=500, batch_size=3,
                      engine=engine)
    serial = build(ConstrainedSphere(3)).run()
    with EvalEngine("remote", hosts=service_hosts) as engine:
        remote = build(ConstrainedSphere(3), engine=engine).run()
    np.testing.assert_array_equal(serial.X, remote.X)
    np.testing.assert_array_equal(serial.F, remote.F)
    np.testing.assert_array_equal(serial.fom, remote.fom)


def test_remote_folded_cascode_history_and_hotpath(service_hosts):
    # The acceptance pin: bit-identical histories on the real SPICE problem,
    # with worker-side hot-path counters aggregated over the wire.
    problem_factory = lambda: FoldedCascodeOTA().problem()
    serial = RandomSearch(problem_factory(), 6, seed=3).run()
    with EvalEngine("remote", hosts=service_hosts) as engine:
        remote = RandomSearch(problem_factory(), 6, seed=3, engine=engine).run()
        report = engine.hotpath_report()
    np.testing.assert_array_equal(serial.X, remote.X)
    np.testing.assert_array_equal(serial.F, remote.F)
    np.testing.assert_array_equal(serial.fom, remote.fom)
    np.testing.assert_array_equal(serial.feasible, remote.feasible)
    assert report["assemble_s"] > 0
    assert report["solve_s"] > 0
    assert report["newton_iterations"] > 0
    assert report["ac_solves"] > 0


def test_run_trials_can_target_running_service(service_hosts):
    # The runner's engine_factory hook: every trial builds its own remote
    # engine against the live service; histories match the serial protocol.
    factory = lambda p, b, s: RandomSearch(p, b, s)
    kwargs = dict(budget=10, n_trials=3, base_seed=4)
    serial = run_trials(factory, lambda: Sphere(3), workers=1, **kwargs)
    remote = run_trials(factory, lambda: Sphere(3), workers=1,
                        engine_factory=lambda: EvalEngine("remote",
                                                          hosts=service_hosts),
                        **kwargs)
    for a, b in zip(serial, remote):
        np.testing.assert_array_equal(a.X, b.X)
        np.testing.assert_array_equal(a.F, b.F)
        np.testing.assert_array_equal(a.fom, b.fom)


class BoomSphere(Sphere):
    """Sphere that raises on evaluation (an optimizer-visible error)."""

    def _evaluate(self, x):
        raise ValueError("boom: deterministic evaluation error")


def test_remote_eval_error_is_fatal_not_host_death(local_server):
    # A worker that *rejects* a well-delivered request (the evaluation
    # itself raised) must abort the dispatch with the real error — not be
    # treated as a dead host, cascade through every shard, and surface as
    # "failed on all hosts".
    with EvalEngine("remote", hosts=[local_server.address]) as engine:
        with pytest.raises(RuntimeError, match="rejected.*boom"):
            engine.evaluate_batch(BoomSphere(2), np.zeros((3, 2)))
    # the shard stayed up and keeps serving
    with _client(local_server) as conn:
        assert _roundtrip(conn, {"op": "hello"})["ok"]


def test_remote_reships_problem_after_worker_forgets_it(local_server):
    # Worker restart / LRU eviction between batches: the coordinator sees
    # need_problem, re-ships over the live connection, and the batch
    # completes without the caller noticing.
    problem = Sphere(3)
    X = problem.space.sample(np.random.default_rng(6), 5)
    with EvalEngine("remote", hosts=[local_server.address]) as engine:
        np.testing.assert_array_equal(engine.evaluate_batch(problem, X),
                                      problem.evaluate_batch(X))
        local_server._problems.clear()  # simulate restart/eviction
        X2 = problem.space.sample(np.random.default_rng(7), 5)
        np.testing.assert_array_equal(engine.evaluate_batch(problem, X2),
                                      problem.evaluate_batch(X2))


def test_worker_problem_store_is_bounded(local_server, monkeypatch):
    import base64
    import pickle
    monkeypatch.setattr(service.EvalWorkerServer, "MAX_PROBLEMS", 2)
    with _client(local_server) as conn:
        for i in range(5):
            blob = base64.b64encode(pickle.dumps(Sphere(2))).decode("ascii")
            reply = _roundtrip(conn, {"op": "put_problem", "token": f"{i:02x}",
                                      "blob": blob})
            assert reply["ok"]
    assert len(local_server._problems) == 2  # LRU-evicted, not unbounded


def test_remote_survives_one_dead_host(service_hosts):
    # One bogus shard (nothing listens there): the dispatcher drops it and
    # the surviving hosts finish the batch with identical results.
    with socket.socket() as placeholder:
        placeholder.bind(("127.0.0.1", 0))
        dead = f"127.0.0.1:{placeholder.getsockname()[1]}"
    problem = Sphere(3)
    X = problem.space.sample(np.random.default_rng(5), 9)
    with EvalEngine("remote", hosts=[dead] + list(service_hosts)) as engine:
        F = engine.evaluate_batch(problem, X)
    np.testing.assert_array_equal(F, problem.evaluate_batch(X))


# ----------------------------------------------------------------------
# last-host-death / bounded failover (ServiceError) + close() semantics
# ----------------------------------------------------------------------
class _FlakyWorker:
    """Protocol-speaking fake shard: healthy through hello/put_problem,
    then follows a script on eval — ``"die"`` closes the connection
    mid-chunk, ``"hang"`` never replies (until closed)."""

    def __init__(self, behavior: str):
        self.behavior = behavior
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.address = "127.0.0.1:%d" % self._listener.getsockname()[1]
        self.eval_requests = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        self._listener.settimeout(0.2)
        conns = []
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            conns.append(conn)
            threading.Thread(target=self._session, args=(conn,),
                             daemon=True).start()
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass

    def _session(self, conn):
        def reply(msg, payload):
            # protocol v2: replies to id-carrying requests echo the id
            if msg.get("id") is not None:
                payload = {**payload, "id": msg["id"]}
            service.send_msg(conn, payload)

        try:
            while not self._stop.is_set():
                msg = service.recv_msg(conn)
                if msg is None:
                    return
                op = msg.get("op")
                if op == "hello":
                    reply(msg, {"ok": True,
                                "protocol": service.PROTOCOL_VERSION,
                                "pid": 0, "problems": 0})
                elif op == "put_problem":
                    reply(msg, {"ok": True})
                elif op == "eval":
                    self.eval_requests += 1
                    if self.behavior == "die":
                        conn.close()
                        return
                    while not self._stop.is_set():  # hang
                        self._stop.wait(0.1)
                    return
        except (ConnectionError, OSError):
            return

    def close(self):
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        self._thread.join(timeout=5)


def test_backoff_delay_is_deterministic_capped_and_jittered():
    # Same (attempt, key) always yields the same delay — retry schedules
    # are reproducible — while distinct keys decorrelate their storms.
    assert service.backoff_delay(3, key="w:1") == service.backoff_delay(3, key="w:1")
    assert service.backoff_delay(3, key="w:1") != service.backoff_delay(3, key="w:2")
    for attempt in range(12):
        delay = service.backoff_delay(attempt, base=0.1, cap=5.0, key="w:1")
        raw = min(5.0, 0.1 * 2 ** attempt)
        assert raw / 2 <= delay <= 5.0  # jitter halves at most, cap holds
    # growth: late attempts sit near the cap, early ones near the base
    assert service.backoff_delay(20, base=0.1, cap=5.0, key="x") > 2.0
    assert service.backoff_delay(0, base=0.1, cap=5.0, key="x") <= 0.1


def test_hung_worker_deadline_raises_service_error_with_trail():
    # The settimeout(None) seam: a worker that accepts a chunk and never
    # replies must surface as a prompt ServiceError carrying the deadline
    # trail — never as an indefinite hang.
    workers = [_FlakyWorker("hang"), _FlakyWorker("hang")]
    try:
        problem = Sphere(2)
        X = problem.space.sample(np.random.default_rng(3), 4)
        import time
        t0 = time.perf_counter()
        with EvalEngine("remote", hosts=[w.address for w in workers],
                        chunk_timeout=0.3) as engine:
            with pytest.raises(service.ServiceError,
                               match="no reply.*worker hung"):
                engine.evaluate_batch(problem, X)
        assert time.perf_counter() - t0 < 30.0
    finally:
        for w in workers:
            w.close()


def test_hung_worker_fails_over_to_healthy_host(local_server):
    # One hung shard + one healthy shard: the deadline reclassifies the
    # hang as a transport failure, the chunk requeues, the batch completes.
    hung = _FlakyWorker("hang")
    try:
        problem = Sphere(2)
        X = problem.space.sample(np.random.default_rng(8), 6)
        with EvalEngine("remote", hosts=[hung.address, local_server.address],
                        chunk_timeout=0.3) as engine:
            F = engine.evaluate_batch(problem, X)
        np.testing.assert_array_equal(F, problem.evaluate_batch(X))
        assert hung.eval_requests >= 1  # the hang really was exercised
    finally:
        hung.close()


def test_chunk_timeout_env_default(monkeypatch):
    monkeypatch.setenv("REPRO_CHUNK_TIMEOUT", "2.5")
    engine = EvalEngine()
    assert engine.chunk_timeout == 2.5
    engine.close()
    monkeypatch.setenv("REPRO_CHUNK_TIMEOUT", "")
    engine = EvalEngine()
    assert engine.chunk_timeout is None
    engine.close()
    with pytest.raises(ValueError, match="chunk_timeout"):
        EvalEngine(chunk_timeout=-1.0)
    with pytest.raises(ValueError, match="degraded"):
        EvalEngine(degraded="bogus")


def test_degraded_local_finishes_batch_with_no_live_workers():
    # Graceful degradation: every host dead -> the missing rows are
    # evaluated in-process (logged, counted), not raised as ServiceError.
    with socket.socket() as placeholder:
        placeholder.bind(("127.0.0.1", 0))
        dead = f"127.0.0.1:{placeholder.getsockname()[1]}"
    problem = Sphere(3)
    X = problem.space.sample(np.random.default_rng(9), 5)
    with EvalEngine("remote", hosts=[dead], degraded="local") as engine:
        F = engine.evaluate_batch(problem, X)
        assert engine._remote.n_degraded == 5
    np.testing.assert_array_equal(F, problem.evaluate_batch(X))


class _SilentV2Peer:
    """Accepts connections, answers hello as protocol 2, then goes mute."""

    def __init__(self):
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.addr = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        self.conns = []
        threading.Thread(target=self._serve, daemon=True).start()

    def _serve(self):
        self._listener.settimeout(0.2)
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self.conns.append(conn)
            threading.Thread(target=self._session, args=(conn,),
                             daemon=True).start()

    def _session(self, conn):
        try:
            msg = service.recv_msg(conn)
            if msg and msg.get("op") == "hello":
                service.send_msg(conn, {"ok": True, "protocol": 2})
            while not self._stop.is_set():  # swallow everything after hello
                if service.recv_msg(conn) is None:
                    return
        except (ConnectionError, OSError, ValueError):
            return

    def drop_clients(self):
        for conn in self.conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()

    def close(self):
        self._stop.set()
        self.drop_clients()
        try:
            self._listener.close()
        except OSError:
            pass


def test_reader_death_fails_every_pending_waiter_promptly():
    # EOF/reader-thread death on a multiplexed connection must fail *all*
    # pending requests with ConnectionError — no waiter left blocked.
    import time
    peer = _SilentV2Peer()
    try:
        conn = service.MultiplexedConnection(peer.addr)
        assert conn.multiplexed
        outcomes = []

        def ask():
            try:
                conn.request({"op": "stats"})
                outcomes.append("replied")
            except ConnectionError:
                outcomes.append("failed")

        threads = [threading.Thread(target=ask) for _ in range(5)]
        for t in threads:
            t.start()
        time.sleep(0.2)              # all five are pending on the reader
        peer.drop_clients()          # peer dies: EOF on the socket
        for t in threads:
            t.join(timeout=10)
        assert outcomes == ["failed"] * 5
        with pytest.raises(ConnectionError):  # connection is done for
            conn.request({"op": "stats"})
        conn.close()
    finally:
        peer.close()


def test_request_deadline_fires_and_late_duplicate_reply_is_discarded():
    # Per-request deadline on the mux path + first-reply-wins: a reply that
    # lands after its deadline (and a duplicate of it) finds no pending
    # entry and is silently discarded; the connection stays usable.
    import time
    listener = socket.create_server(("127.0.0.1", 0))
    stop = threading.Event()

    def peer():
        listener.settimeout(5.0)
        try:
            conn, _ = listener.accept()
        except OSError:
            return
        with conn:
            while not stop.is_set():
                try:
                    msg = service.recv_msg(conn)
                except (ConnectionError, OSError, ValueError):
                    return
                if msg is None:
                    return
                if msg.get("op") == "hello":
                    service.send_msg(conn, {"ok": True, "protocol": 2})
                elif msg.get("op") == "slow":
                    time.sleep(0.5)  # past the caller's 0.2 s deadline
                    late = {"ok": True, "id": msg["id"]}
                    service.send_msg(conn, late)
                    service.send_msg(conn, late)  # and its duplicate
                else:
                    service.send_msg(conn, {"ok": True, "id": msg["id"],
                                            "fresh": True})

    thread = threading.Thread(target=peer, daemon=True)
    thread.start()
    try:
        conn = service.MultiplexedConnection(listener.getsockname()[:2])
        assert conn.multiplexed
        with pytest.raises(service.DeadlineExceeded, match="no reply"):
            conn.request({"op": "slow"}, timeout=0.2)
        # The late reply and its duplicate hit the reader before the next
        # reply does (the peer serves in order); both must be discarded and
        # request 2 must receive *its* frame, not a stale id-1 one.
        reply = conn.request({"op": "next"}, timeout=10.0)
        assert reply.get("fresh") and reply["id"] == 2
        conn.close()
    finally:
        stop.set()
        listener.close()
        thread.join(timeout=10)


def test_v1_deadline_marks_connection_broken():
    # On a v1 (serialized) connection a timeout desyncs the stream, so the
    # connection must refuse further use instead of mismatching replies.
    import base64
    import pickle

    from repro.problems import LatencyProblem

    worker = _V1Worker()
    try:
        problem = LatencyProblem(Sphere(2), 0.5)  # slower than the deadline
        conn = service.MultiplexedConnection(service.parse_host(worker.address))
        assert not conn.multiplexed
        blob = base64.b64encode(pickle.dumps(problem)).decode("ascii")
        assert conn.request({"op": "put_problem", "token": "ab",
                             "blob": blob})["ok"]
        with pytest.raises(service.DeadlineExceeded, match="no reply"):
            conn.request({"op": "eval", "token": "ab", "X": [[0.0, 0.0]]},
                         timeout=0.1)
        with pytest.raises(ConnectionError):  # stream desynced: refuse reuse
            conn.request({"op": "hello"})
        conn.close()
    finally:
        worker.close()


def test_register_loop_survives_registry_restart():
    # The worker-side heartbeat loop must outlive a registry restart:
    # backoff while it is down, re-register on the next successful connect.
    from repro.core.fleet import RegistryServer, WorkerRegistry
    import time
    registry1 = WorkerRegistry(timeout=30.0)
    server1 = RegistryServer(registry1)
    port = server1.port
    stop = threading.Event()
    thread = threading.Thread(
        target=service._register_loop,
        args=(server1.address, "worker:9", 0.05, stop), daemon=True)
    thread.start()
    server2 = None
    try:
        deadline = time.monotonic() + 10.0
        while "worker:9" not in registry1.live():
            assert time.monotonic() < deadline, "initial registration missed"
            time.sleep(0.02)
        server1.close()              # registry restart: same port, new state
        time.sleep(0.3)              # loop is now failing + backing off
        registry2 = WorkerRegistry(timeout=30.0)
        server2 = RegistryServer(registry2, port=port)
        deadline = time.monotonic() + 15.0
        while "worker:9" not in registry2.live():
            assert time.monotonic() < deadline, (
                "worker never re-registered after the registry restart")
            time.sleep(0.02)
    finally:
        stop.set()
        thread.join(timeout=10)
        server1.close()
        if server2 is not None:
            server2.close()


def test_last_host_death_raises_service_error_promptly():
    # Every shard dies mid-chunk: the bounded failover must surface a
    # ServiceError carrying the host trail — not spin on requeues or
    # report success with missing rows.
    workers = [_FlakyWorker("die"), _FlakyWorker("die")]
    try:
        problem = Sphere(2)
        X = problem.space.sample(np.random.default_rng(0), 8)
        with EvalEngine("remote", hosts=[w.address for w in workers]) as engine:
            with pytest.raises(service.ServiceError, match="failed on all hosts"):
                engine.evaluate_batch(problem, X)
        total = sum(w.eval_requests for w in workers)
        assert total <= 2 + 2 * len(workers)  # bounded, no requeue spin
    finally:
        for w in workers:
            w.close()


def test_chunk_requeue_budget_is_bounded():
    dispatcher = service.RemoteDispatcher(["127.0.0.1:1"],
                                          max_chunk_requeues=0)
    assert dispatcher.max_chunk_requeues == 0
    default = service.RemoteDispatcher(["127.0.0.1:1", "127.0.0.1:2"])
    assert default.max_chunk_requeues == 4  # 2 per configured host


def test_engine_close_with_inflight_remote_submit_raises_not_hangs():
    # A shard that accepts the chunk and never answers: close() must tear
    # down the dispatcher first so the blocked gather() raises quickly —
    # the old order deadlocked close() behind the submit pool.
    worker = _FlakyWorker("hang")
    try:
        problem = Sphere(2)
        engine = EvalEngine("remote", hosts=[worker.address])
        handle = engine.submit(problem,
                               problem.space.sample(np.random.default_rng(1), 4))
        import time
        time.sleep(0.3)  # let the dispatch thread block on the socket
        t0 = time.perf_counter()
        engine.close()
        assert time.perf_counter() - t0 < 10.0
        with pytest.raises((service.ServiceError, RuntimeError)):
            engine.gather(handle)
    finally:
        worker.close()


def test_closed_dispatcher_refuses_new_work():
    dispatcher = service.RemoteDispatcher(["127.0.0.1:1"])
    dispatcher.close()
    with pytest.raises(service.ServiceError, match="closed"):
        dispatcher._connection(("127.0.0.1", 1))


# ----------------------------------------------------------------------
# protocol v2: multiplexing, v1 compat, spawn robustness
# ----------------------------------------------------------------------
def test_spawn_local_worker_survives_startup_noise(monkeypatch):
    # Interpreter chatter on the merged stderr/stdout stream used to eat
    # the readiness banner (only the first line was ever read), so healthy
    # workers were killed at startup.  The banner is now scanned for.
    monkeypatch.setenv("PYTHONVERBOSE", "1")  # floods the stream pre-banner
    proc, host = service.spawn_local_worker()
    try:
        with socket.create_connection(service.parse_host(host),
                                      timeout=10) as conn:
            assert _roundtrip(conn, {"op": "hello"})["ok"]
    finally:
        proc.terminate()
        proc.wait(timeout=10)


def test_v2_connection_answers_stats_while_eval_in_flight(local_server):
    # Connection multiplexing: a second request on the same connection is
    # answered while a slow eval is still running — no head-of-line block.
    import base64
    import pickle
    import time as _time

    from repro.problems import LatencyProblem

    problem = LatencyProblem(Sphere(2), 0.4)
    conn = service.MultiplexedConnection((local_server.host, local_server.port))
    try:
        assert conn.protocol == service.PROTOCOL_VERSION
        assert conn.multiplexed
        engine = EvalEngine()
        token = engine._problem_token(problem).hex()
        engine.close()
        blob = base64.b64encode(pickle.dumps(problem)).decode("ascii")
        assert conn.request({"op": "put_problem", "token": token,
                             "blob": blob})["ok"]
        X = problem.space.sample(np.random.default_rng(0), 2)  # ~0.8 s serial
        result = {}

        def evaluate():
            result["reply"] = conn.request(
                {"op": "eval", "token": token, "X": X.tolist()})

        thread = threading.Thread(target=evaluate)
        thread.start()
        _time.sleep(0.15)                    # the eval frame is in flight
        t0 = _time.perf_counter()
        stats = conn.request({"op": "stats"})
        waited = _time.perf_counter() - t0
        thread.join(30)
        assert stats["ok"] and result["reply"]["ok"]
        # a v1-serialized connection would have waited ~0.65 s here
        assert waited < 0.4
    finally:
        conn.close()


class _V1Worker:
    """A strict protocol-1 shard: id-less frames, in-order replies."""

    def __init__(self):
        self._listener = socket.create_server(("127.0.0.1", 0))
        self.address = "127.0.0.1:%d" % self._listener.getsockname()[1]
        self._stop = threading.Event()
        self._problems = {}
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        self._listener.settimeout(0.2)
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(target=self._session, args=(conn,),
                             daemon=True).start()

    def _session(self, conn):
        import base64
        import pickle
        with conn:
            while not self._stop.is_set():
                try:
                    msg = service.recv_msg(conn)
                except (ConnectionError, OSError, ValueError):
                    return
                if msg is None:
                    return
                op = msg.get("op")
                if op == "hello":
                    reply = {"ok": True, "protocol": 1}
                elif op == "put_problem":
                    self._problems[msg["token"]] = pickle.loads(
                        base64.b64decode(msg["blob"]))
                    reply = {"ok": True}
                elif op == "eval":
                    problem = self._problems.get(msg["token"])
                    if problem is None:
                        reply = {"ok": False, "need_problem": True,
                                 "error": "unknown token"}
                    else:
                        F = [np.asarray(problem.evaluate(np.asarray(x)),
                                        dtype=np.float64).tolist()
                             for x in msg["X"]]
                        reply = {"ok": True, "F": F, "counters": {},
                                 "n_sims": len(F)}
                else:
                    reply = {"ok": False, "error": "unknown op"}
                # protocol 1: never echo an id, reply strictly in order
                try:
                    service.send_msg(conn, reply)
                except OSError:
                    return

    def close(self):
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass


def test_v1_worker_compat_handshake_and_dispatch():
    # A v2 coordinator against a protocol-1 shard drops to serialized
    # request/reply at the hello handshake and still evaluates correctly.
    worker = _V1Worker()
    try:
        conn = service.MultiplexedConnection(service.parse_host(worker.address))
        assert conn.protocol == 1
        assert not conn.multiplexed
        conn.close()
        problem = Sphere(3)
        X = problem.space.sample(np.random.default_rng(2), 7)
        with EvalEngine("remote", hosts=[worker.address]) as engine:
            np.testing.assert_array_equal(engine.evaluate_batch(problem, X),
                                          problem.evaluate_batch(X))
    finally:
        worker.close()
