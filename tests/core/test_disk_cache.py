"""Persistent evaluation cache: DiskCache store + EvalEngine disk tier.

Load-bearing contracts:

* a rerun against the same ``cache_dir`` answers every repeated design
  from disk — zero simulations — with bit-identical rows, including from
  a *separate process* (the two-process smoke);
* records are crash-safe: a torn tail is ignored, never mis-indexed;
* keys go through the shared canonicalization helper, so the disk tier
  can never split one integer design into two entries.
"""

import os
import struct
import subprocess
import sys
import zlib

import numpy as np
import pytest

from repro.baselines import RandomSearch
from repro.core import DiskCache, EvalEngine, Study
from repro.problems import ConstrainedSphere, Sphere


# ----------------------------------------------------------------------
# DiskCache store
# ----------------------------------------------------------------------
def test_put_get_round_trip(tmp_path):
    with DiskCache(tmp_path) as cache:
        row = np.array([1.5, -2.25, 2.0 ** -40])
        assert cache.put(b"k" * 16, row)
        assert not cache.put(b"k" * 16, row)  # idempotent
        np.testing.assert_array_equal(cache.get(b"k" * 16), row)
        assert cache.get(b"x" * 16) is None
        assert len(cache) == 1


def test_second_instance_reads_first_instances_shards(tmp_path):
    with DiskCache(tmp_path) as writer:
        rows = {bytes([i]) * 16: np.array([float(i), i / 3.0]) for i in range(5)}
        for key, row in rows.items():
            writer.put(key, row)
    with DiskCache(tmp_path) as reader:
        assert len(reader) == 5
        for key, row in rows.items():
            np.testing.assert_array_equal(reader.get(key), row)


def test_concurrent_writers_use_separate_shards(tmp_path):
    a, b = DiskCache(tmp_path), DiskCache(tmp_path)
    a.put(b"a" * 16, np.array([1.0]))
    b.put(b"b" * 16, np.array([2.0]))
    shards = [n for n in os.listdir(tmp_path) if n.startswith("shard-")]
    assert len(shards) == 2  # no write contention, ever
    # each sees the other's append on refresh
    a.refresh(), b.refresh()
    np.testing.assert_array_equal(a.get(b"b" * 16), np.array([2.0]))
    np.testing.assert_array_equal(b.get(b"a" * 16), np.array([1.0]))
    a.close(), b.close()


def test_torn_tail_is_ignored_not_misread(tmp_path):
    with DiskCache(tmp_path) as writer:
        writer.put(b"g" * 16, np.array([4.0, 5.0]))
        shard = writer._writer_path
    # simulate a crash mid-append: a half-written record at the tail
    payload = np.array([9.0]).tobytes()
    record = struct.pack("<16sII", b"t" * 16, len(payload),
                         zlib.crc32(payload)) + payload
    with open(shard, "ab") as fh:
        fh.write(record[:len(record) - 3])
    with DiskCache(tmp_path) as reader:
        assert len(reader) == 1  # the good record only
        np.testing.assert_array_equal(reader.get(b"g" * 16),
                                      np.array([4.0, 5.0]))
        assert reader.get(b"t" * 16) is None


def test_corrupt_record_stops_shard_scan(tmp_path):
    # A bad record *followed by more data* is unambiguous corruption (an
    # in-progress append can only ever be the last thing in a shard): the
    # scan stops at the damage and never indexes past it.
    with DiskCache(tmp_path) as writer:
        writer.put(b"g" * 16, np.array([1.0]))
        shard = writer._writer_path
    payload = np.array([2.0]).tobytes()
    bad = struct.pack("<16sII", b"c" * 16, len(payload), 12345) + payload
    good_payload = np.array([3.0]).tobytes()
    good = struct.pack("<16sII", b"h" * 16, len(good_payload),
                       zlib.crc32(good_payload)) + good_payload
    with open(shard, "ab") as fh:
        fh.write(bad + good)
    with DiskCache(tmp_path) as reader:
        assert len(reader) == 1
        assert reader.n_corrupt == 1
        assert reader.get(b"h" * 16) is None  # nothing past the damage


def test_tail_crc_mismatch_is_retried_not_corrupt(tmp_path):
    # The in-progress-append race: a reader observing a non-atomic append
    # sees a full header with short/garbled payload bytes *at the tail of
    # the shard*.  That must be treated as a torn tail (re-examined on the
    # next refresh), not permanent corruption — once the writer's append
    # completes, the very same offset passes the CRC.
    with DiskCache(tmp_path) as writer:
        writer.put(b"g" * 16, np.array([1.0]))
        shard = writer._writer_path
    payload = np.array([2.0]).tobytes()
    record = struct.pack("<16sII", b"t" * 16, len(payload),
                         zlib.crc32(payload)) + payload
    with open(shard, "ab") as fh:  # header landed, payload bytes not final
        fh.write(record[:struct.calcsize("<16sII")] + b"\x00" * len(payload))
    reader = DiskCache(tmp_path, refresh_interval=0.0)
    try:
        assert len(reader) == 1
        assert reader.get(b"t" * 16) is None
        assert reader.n_corrupt == 0          # torn tail, not corruption
        # the append completes: same offset, now-correct bytes
        with open(shard, "r+b") as fh:
            fh.seek(-len(payload), os.SEEK_END)
            fh.write(payload)
        reader.refresh()
        np.testing.assert_array_equal(reader.get(b"t" * 16), np.array([2.0]))
        assert reader.n_corrupt == 0
    finally:
        reader.close()


def test_put_after_close_is_safe_noop(tmp_path):
    # Straggler threads may race engine teardown; a put on a closed cache
    # must report "not stored" instead of raising on the closed writer.
    cache = DiskCache(tmp_path)
    assert cache.put(b"a" * 16, np.array([1.0]))
    cache.close()
    assert cache.put(b"b" * 16, np.array([2.0])) is False
    # reads still answer from the in-memory index
    np.testing.assert_array_equal(cache.get(b"a" * 16), np.array([1.0]))
    with DiskCache(tmp_path) as reader:
        assert reader.get(b"b" * 16) is None  # nothing was written


def test_compact_merges_shards_and_cli_reports(tmp_path, capsys):
    from repro.core import diskcache as diskcache_mod
    a, b = DiskCache(tmp_path), DiskCache(tmp_path)
    a.put(b"a" * 16, np.array([1.0]))
    b.put(b"b" * 16, np.array([2.0, 3.0]))
    b.refresh()
    b.put(b"a" * 16, np.array([9.0]))  # dedup: refused, 'a' already indexed
    a.close(), b.close()
    report = diskcache_mod.compact(tmp_path)
    assert report["entries"] == 2
    assert report["shards_before"] == 2 and report["shards_after"] == 1
    shards = [n for n in os.listdir(tmp_path)
              if n.startswith("shard-") and n.endswith(".bin")]
    assert len(shards) == 1
    with DiskCache(tmp_path) as reader:
        np.testing.assert_array_equal(reader.get(b"a" * 16), np.array([1.0]))
        np.testing.assert_array_equal(reader.get(b"b" * 16),
                                      np.array([2.0, 3.0]))
    # CLI entry point: stats then compact, both print JSON reports
    diskcache_mod.main([str(tmp_path)])
    import json
    stats = json.loads(capsys.readouterr().out.strip())
    assert stats["entries"] == 2
    diskcache_mod.main(["--compact", str(tmp_path)])
    report2 = json.loads(capsys.readouterr().out.strip())
    assert report2["entries"] == 2 and report2["shards_before"] == 1


# ----------------------------------------------------------------------
# EvalEngine disk tier
# ----------------------------------------------------------------------
class CountingSphere(Sphere):
    def __init__(self, dim=3):
        super().__init__(dim)
        self.calls = 0

    def _evaluate(self, x):
        self.calls += 1
        return super()._evaluate(x)


def test_rerun_with_cache_dir_simulates_nothing(tmp_path):
    X = Sphere(3).space.sample(np.random.default_rng(0), 7)
    with EvalEngine(cache_dir=tmp_path) as e1:
        p1 = CountingSphere(3)
        F1 = e1.evaluate_batch(p1, X)
        assert p1.calls == 7 and e1.n_disk_hits == 0
    # a *fresh engine* (new process in real life): memory cache empty,
    # disk tier answers everything
    with EvalEngine(cache_dir=tmp_path) as e2:
        p2 = CountingSphere(3)
        F2 = e2.evaluate_batch(p2, X)
        assert p2.calls == 0
        assert e2.n_sim_calls == 0
        assert e2.n_disk_hits == 7
        assert e2.n_cache_hits == 7  # disk hits are cache hits in the stats
    np.testing.assert_array_equal(F1, F2)


def test_cache_dir_env_var_is_the_default(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    engine = EvalEngine()
    assert engine.cache_dir == str(tmp_path)
    # explicit empty string forces the tier off despite the variable
    assert EvalEngine(cache_dir="").cache_dir is None
    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert EvalEngine().cache_dir is None
    engine.close()


def test_cache_size_zero_disables_disk_tier(tmp_path):
    engine = EvalEngine(cache_size=0, cache_dir=tmp_path)
    assert engine._disk is None
    engine.close()


def test_disk_hits_surface_in_study_engine_stats(tmp_path):
    problem_factory = lambda: ConstrainedSphere(2)
    with EvalEngine(cache_dir=tmp_path) as e1:
        h1 = Study(RandomSearch(problem_factory(), 8, 3), engine=e1).run()
        assert h1.engine_stats["disk_hits"] == 0
    with EvalEngine(cache_dir=tmp_path) as e2:
        h2 = Study(RandomSearch(problem_factory(), 8, 3), engine=e2).run()
    assert h2.engine_stats["misses"] == 0
    assert h2.engine_stats["disk_hits"] == 8
    assert h2.engine_stats["hit_rate"] == 1.0
    np.testing.assert_array_equal(h1.X, h2.X)
    np.testing.assert_array_equal(h1.F, h2.F)


# ----------------------------------------------------------------------
# two-process smoke: cross-process sharing via the content fingerprints
# ----------------------------------------------------------------------
_CHILD = """
import json, sys
import numpy as np
from repro.baselines import RandomSearch
from repro.core import EvalEngine, Study
from repro.problems import ConstrainedSphere

with EvalEngine(cache_dir=sys.argv[1]) as engine:
    history = Study(RandomSearch(ConstrainedSphere(3), 10, 21),
                    engine=engine).run()
print(json.dumps({
    "X": history.X.tolist(), "F": history.F.tolist(),
    "disk_hits": history.engine_stats["disk_hits"],
    "misses": history.engine_stats["misses"],
}))
"""


def _run_child(cache_dir):
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run([sys.executable, "-c", _CHILD, str(cache_dir)],
                         capture_output=True, text=True, env=env, timeout=120)
    assert out.returncode == 0, out.stderr
    import json
    return json.loads(out.stdout.strip().splitlines()[-1])


def test_two_process_disk_cache_smoke(tmp_path):
    # Process A populates the store; process B (a genuinely separate
    # interpreter) answers every design from disk and produces a
    # bit-identical history — the cross-run persistence acceptance pin.
    first = _run_child(tmp_path)
    assert first["misses"] == 10 and first["disk_hits"] == 0
    second = _run_child(tmp_path)
    assert second["misses"] == 0
    assert second["disk_hits"] == 10
    np.testing.assert_array_equal(np.asarray(first["X"]), np.asarray(second["X"]))
    np.testing.assert_array_equal(np.asarray(first["F"]), np.asarray(second["F"]))


def test_unpicklable_problems_never_poison_the_disk_tier(tmp_path):
    # Unpicklable problems get anonymous engine tokens with no cross-process
    # identity; persisting their keys used to let two *different* such
    # problems (each process restarting the anon counter at 0) answer each
    # other's designs from a shared cache_dir.
    def make_problem(offset):
        problem = Sphere(2)
        problem.offset = offset

        def _evaluate(x, _offset=offset):
            return [float(np.sum(x ** 2)) + _offset]

        problem._evaluate = _evaluate        # closure -> unpicklable
        return problem

    x = np.array([[1.0, 2.0]])
    with EvalEngine(cache_dir=tmp_path) as e1:
        F1 = e1.evaluate_batch(make_problem(0.0), x)
    with EvalEngine(cache_dir=tmp_path) as e2:
        F2 = e2.evaluate_batch(make_problem(1000.0), x)
        assert e2.n_disk_hits == 0           # nothing to collide with
    assert F1[0, 0] == 5.0
    assert F2[0, 0] == 1005.0                # its own answer, not problem 1's
    # and nothing anonymous was persisted at all
    with DiskCache(tmp_path) as reader:
        assert len(reader) == 0
