"""OptimizationHistory bookkeeping edge cases."""

import numpy as np
import pytest

from repro.core.history import OptimizationHistory, Optimizer
from repro.problems import ConstrainedSphere, Sphere


def test_empty_history_guards():
    history = OptimizationHistory(Sphere(2), "x", 0)
    assert history.n_evals == 0
    assert not history.any_feasible
    assert history.evals_to_first_feasible is None
    assert history.best_feasible_index is None
    assert len(history.fom_curve()) == 0
    with pytest.raises(ValueError):
        _ = history.best_index


def test_append_computes_fom_and_feasibility():
    problem = ConstrainedSphere(2)
    history = OptimizationHistory(problem, "x", 0)
    feasible_x = np.array([1.0, 1.0])
    history.append(feasible_x, problem.evaluate(feasible_x))
    infeasible_x = np.array([-1.0, -1.0])
    history.append(infeasible_x, problem.evaluate(infeasible_x))
    assert history.feasible.tolist() == [True, False]
    assert history.evals_to_first_feasible == 1
    assert history.best_index == 0


def test_best_feasible_prefers_objective_over_fom():
    problem = ConstrainedSphere(2)
    history = OptimizationHistory(problem, "x", 0)
    # Two feasible designs; the second has the smaller objective.
    history.append(np.array([2.0, 2.0]), problem.evaluate(np.array([2.0, 2.0])))
    history.append(np.array([0.6, 0.6]), problem.evaluate(np.array([0.6, 0.6])))
    assert history.best_feasible_index == 1
    assert history.best_feasible_objective == pytest.approx(2 * 0.6**2)


def test_optimizer_budget_exhausted_signal():
    class Greedy(Optimizer):
        name = "greedy"

        def _run(self):
            while True:  # relies on the base class stopping it
                self.evaluate(self.problem.space.sample(self.rng, 1)[0])

    history = Greedy(Sphere(2), 7, seed=0).run()
    assert history.n_evals == 7


def test_optimizer_rejects_bad_budget():
    with pytest.raises(ValueError):
        class _X(Optimizer):
            name = "x"

            def _run(self):
                pass

        _X(Sphere(2), 0)


def test_simulation_time_accumulates():
    class OneShot(Optimizer):
        name = "one"

        def _run(self):
            self.evaluate(self.problem.space.sample(self.rng, 1)[0])

    history = OneShot(Sphere(2), 3, seed=0).run()
    assert history.simulation_time >= 0.0
    assert history.n_evals == 1


def test_round_trip_preserves_empty_engine_stats():
    # Regression: ``engine_stats == {}`` ("ran with zero counters") used to
    # serialize to None and vanish on reload — a falsy check collapsed an
    # empty-but-present dict into "no engine info ever attached".
    problem = Sphere(2)
    history = OptimizationHistory(problem, "opt", 0)
    history.append(np.array([1.0, 2.0]), problem.evaluate([1.0, 2.0]))
    history.engine_stats = {}
    restored = OptimizationHistory.from_dict(problem, history.to_dict())
    assert restored.engine_stats == {}       # {} stays {}
    history.engine_stats = None
    restored = OptimizationHistory.from_dict(problem, history.to_dict())
    assert restored.engine_stats is None     # None stays None
    history.engine_stats = {"cache_hits": 3}
    restored = OptimizationHistory.from_dict(problem, history.to_dict())
    assert restored.engine_stats == {"cache_hits": 3}


def test_round_trip_preserves_warm_prefix():
    problem = ConstrainedSphere(2)
    history = OptimizationHistory(problem, "opt", 1)
    for x in problem.space.sample(np.random.default_rng(0), 4):
        history.append(x, problem.evaluate(x))
    history.n_warm = 3
    restored = OptimizationHistory.from_dict(problem, history.to_dict())
    assert restored.n_warm == 3
    assert restored.n_evals == 1
    assert restored.n_total == 4
    np.testing.assert_array_equal(restored.X, history.X)


def test_warm_prefix_accounting():
    problem = ConstrainedSphere(2)
    history = OptimizationHistory(problem, "opt", 0)
    feasible_x = np.array([1.0, 1.0])       # coord_sum >= 1 holds
    infeasible_x = np.array([-1.0, -1.0])   # coord_sum = -2 violates
    history.append(feasible_x, problem.evaluate(feasible_x))
    history.n_warm = 1
    history.append(infeasible_x, problem.evaluate(infeasible_x))
    assert history.n_evals == 1
    assert history.n_total == 2
    # the donor's feasible row cost this run nothing: not a sim spent
    assert history.evals_to_first_feasible is None
    history.append(feasible_x * 1.001, problem.evaluate(feasible_x * 1.001))
    assert history.evals_to_first_feasible == 2
