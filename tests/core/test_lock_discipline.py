"""Regression tests for the RP02/RP07 lock-discipline fixes.

These pin the concrete behaviours the contract linter forced: snapshot
reads happen under the owning lock, cross-object counter reads go through
``EvalEngine.counters_snapshot()``, fleet ``stats()`` never nests the
coordinator condition inside an engine's state lock (or vice versa), and
retired worker pools are joined with ``_state_lock`` released (RP07).
"""

import threading

import numpy as np

from repro.core import EvalEngine
from repro.core.diskcache import DiskCache
from repro.core.fleet import FleetCoordinator
from repro.core.study import engine_counter_snapshot
from repro.problems import Sphere


class RecordingLock:
    """Wraps a real lock, counting context-manager acquisitions."""

    def __init__(self, inner):
        self._inner = inner
        self.enters = 0

    def __enter__(self):
        self.enters += 1
        return self._inner.__enter__()

    def __exit__(self, *exc):
        return self._inner.__exit__(*exc)

    def acquire(self, *args, **kwargs):
        self.enters += 1
        return self._inner.acquire(*args, **kwargs)

    def release(self):
        return self._inner.release()


class OwnershipLock(RecordingLock):
    """RecordingLock that also tracks whether the lock is currently held
    (single-threaded tests only)."""

    def __init__(self, inner):
        super().__init__(inner)
        self.owned = False

    def __enter__(self):
        result = super().__enter__()
        self.owned = True
        return result

    def __exit__(self, *exc):
        self.owned = False
        return super().__exit__(*exc)


class FakeExecutor:
    """Stand-in worker pool recording lock ownership at shutdown time."""

    def __init__(self, lock):
        self._lock = lock
        self.shutdowns: list[tuple[bool, bool]] = []

    def shutdown(self, wait=False, cancel_futures=False):
        self.shutdowns.append((wait, self._lock.owned))


def test_close_joins_retired_pool_outside_state_lock():
    # RP07 contract: close() swaps the pool out under _state_lock but runs
    # the blocking shutdown(wait=True) only after releasing it — a dispatch
    # thread taking _state_lock must never stall behind the pool join.
    engine = EvalEngine("serial")
    lock = OwnershipLock(engine._state_lock)
    engine._state_lock = lock
    pool = FakeExecutor(lock)
    engine._executor = pool
    engine._executor_token = b"tok"
    engine.close()
    assert pool.shutdowns == [(True, False)]
    assert engine._executor is None
    assert engine._executor_token is None


def test_pool_switch_joins_stale_pool_outside_state_lock():
    # Same RP07 contract on the _process_executor problem-switch path: the
    # stale pool bound to the old problem token is joined with _state_lock
    # released, and the loop re-checks in case another thread rebuilt it.
    engine = EvalEngine("serial")
    lock = OwnershipLock(engine._state_lock)
    engine._state_lock = lock
    replacement = FakeExecutor(lock)

    class SwitchedPool(FakeExecutor):
        def shutdown(self, wait=False, cancel_futures=False):
            super().shutdown(wait, cancel_futures)
            # Simulate a concurrent thread building the new pool while the
            # stale one joins: the re-check loop must return it, not build.
            engine._executor = replacement
            engine._executor_token = b"new"

    stale = SwitchedPool(lock)
    engine._executor = stale
    engine._executor_token = b"old"
    builds_before = engine.n_pool_builds
    got = engine._process_executor(Sphere(2), b"new")
    assert got is replacement
    assert stale.shutdowns == [(True, False)]
    assert engine.n_pool_builds == builds_before  # re-check loop, no build
    engine._executor = None  # keep close() away from the fakes
    engine.close()


def test_counters_snapshot_is_locked_and_consistent():
    problem = Sphere(3)
    engine = EvalEngine("serial")
    X = problem.space.sample(np.random.default_rng(0), 6)
    engine.evaluate_batch(problem, X)

    rec = RecordingLock(engine._state_lock)
    engine._state_lock = rec
    before = rec.enters
    snap = engine.counters_snapshot()
    assert rec.enters == before + 1

    assert snap["n_sim_calls"] == engine.n_sim_calls > 0
    assert {"n_sim_calls", "n_cache_hits", "n_disk_hits", "n_dedup",
            "n_pool_builds", "worker_sim_calls", "cache_entries",
            "dispatch_seconds"} <= set(snap)
    assert snap["cache_entries"] == len(engine._cache)
    engine.close()


def test_hotpath_report_and_repr_acquire_state_lock():
    engine = EvalEngine("serial")
    rec = RecordingLock(engine._state_lock)
    engine._state_lock = rec

    before = rec.enters
    engine.hotpath_report()
    assert rec.enters > before

    before = rec.enters
    repr(engine)
    assert rec.enters > before
    engine.close()


def test_diskcache_repr_acquires_lock(tmp_path):
    cache = DiskCache(tmp_path)
    rec = RecordingLock(cache._lock)
    cache._lock = rec
    before = rec.enters
    text = repr(cache)
    assert rec.enters == before + 1
    assert "DiskCache" in text
    cache.close()


def test_fleet_stats_reads_engine_counters_outside_cond():
    # Lock-ordering contract: stats() collects engine refs under _cond but
    # calls counters_snapshot() (which takes the engine's _state_lock) only
    # after _cond is released, so the two locks never nest.
    with FleetCoordinator() as fleet:
        engine = fleet.engine("tenant-a")
        try:
            cond_owned = []
            orig = engine.counters_snapshot

            def spy():
                cond_owned.append(fleet._cond._is_owned())
                return orig()

            engine.counters_snapshot = spy
            stats = fleet.stats()
            assert cond_owned == [False]
            entry = stats["tenants"]["tenant-a"]
            assert entry["cache_hits"] == 0
            assert entry["engine_sims"] == 0
            assert entry["cache_hit_rate"] == 0.0
        finally:
            engine.close()


def test_study_snapshot_routes_through_counters_snapshot():
    engine = EvalEngine("serial")
    calls = []
    orig = engine.counters_snapshot

    def spy():
        calls.append(True)
        return orig()

    engine.counters_snapshot = spy
    snap = engine_counter_snapshot(engine)
    assert calls == [True]
    assert set(snap) == {"n_cache_hits", "n_disk_hits", "n_sim_calls",
                         "n_dedup", "n_pool_builds", "worker_sim_calls"}
    engine.close()

    class Duck:
        n_sim_calls = 7

    # Duck-typed stand-ins without the method still read per attribute.
    assert engine_counter_snapshot(Duck())["n_sim_calls"] == 7


def test_snapshot_safe_under_concurrent_evaluation():
    # Readers hammering the sanctioned snapshot API while a writer
    # evaluates must never see exceptions or non-monotonic sim counts.
    problem = Sphere(2)
    engine = EvalEngine("serial", cache_size=0)
    stop = threading.Event()
    per_reader: list[list[int]] = [[] for _ in range(3)]
    errors: list[BaseException] = []

    def reader(seen):
        try:
            while not stop.is_set():
                seen.append(engine.counters_snapshot()["n_sim_calls"])
                repr(engine)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=reader, args=(seen,))
               for seen in per_reader]
    for t in threads:
        t.start()
    rng = np.random.default_rng(1)
    for _ in range(20):
        engine.evaluate_batch(problem, problem.space.sample(rng, 4))
    stop.set()
    for t in threads:
        t.join(timeout=5)
    engine.close()

    assert not errors
    for seen in per_reader:  # each reader observes a monotonic count
        assert seen == sorted(seen)
