"""Warm-start / cross-run transfer on the ask/tell seam.

Load-bearing contracts:

* same-problem donors are *told* as a cost-free warm prefix — zero donor
  simulations, proven by engine counters — and every optimizer conditions
  on the donor archive from its first ask;
* warm-started runs are seed-deterministic and checkpoint/resume to
  bit-identical histories;
* cross-problem transfer maps donor designs by variable *name* in
  normalized coordinates, resamples target dimensions the donor lacks,
  and drops donor-only dimensions — exactly as documented.
"""

import os

import numpy as np
import pytest

from repro.baselines import (
    BOwEI,
    DifferentialEvolution,
    GASPAD,
    RandomSearch,
    SimulatedAnnealing,
)
from repro.core import DNNOpt, EvalEngine, Study, WarmStart
from repro.problems import ConstrainedSphere, Sphere
from repro.problems.base import (
    DesignSpace,
    Objective,
    OptimizationProblem,
    Spec,
    Variable,
)


def small_dnnopt(problem, budget, seed, **kw):
    defaults = dict(n_init=8, n_elite=5, critic_epochs=3, actor_epochs=3,
                    critic_hidden=(16, 16), actor_hidden=(16, 16), max_pseudo=300)
    defaults.update(kw)
    return DNNOpt(problem, budget, seed, **defaults)


ALL_OPTIMIZERS = [
    ("Random", lambda p, b, s: RandomSearch(p, b, s)),
    ("DE", lambda p, b, s: DifferentialEvolution(p, b, s, pop_size=6)),
    ("SA", lambda p, b, s: SimulatedAnnealing(p, b, s, steps_per_temperature=4)),
    ("BO-wEI", lambda p, b, s: BOwEI(p, b, s, n_init=8, pool_size=32,
                                     local_points=8)),
    ("GASPAD", lambda p, b, s: GASPAD(p, b, s, n_init=8, pop_size=6)),
    ("DNN-Opt", lambda p, b, s: small_dnnopt(p, b, s)),
]


@pytest.fixture(scope="module")
def donor():
    """One donor archive on ConstrainedSphere(3), shared across tests."""
    return Study(small_dnnopt(ConstrainedSphere(3), 20, 1)).run()


def assert_history_equal(a, b):
    np.testing.assert_array_equal(a.X, b.X)
    np.testing.assert_array_equal(a.F, b.F)
    np.testing.assert_array_equal(a.fom, b.fom)
    np.testing.assert_array_equal(a.feasible, b.feasible)


# ----------------------------------------------------------------------
# tell mode: same-problem transfer
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,factory", ALL_OPTIMIZERS,
                         ids=[n for n, _ in ALL_OPTIMIZERS])
def test_tell_mode_prefix_and_zero_donor_simulations(donor, name, factory):
    # Donor rows become the warm prefix; the run's own budget is spent only
    # on fresh designs, and the engine counters prove no donor row was ever
    # simulated (warm rows are told, not dispatched).
    ws = WarmStart.from_history(donor)
    engine = EvalEngine("serial")
    opt = factory(ConstrainedSphere(3), 10, 2)
    history = Study(opt, engine=engine, warm_start=ws).run()
    assert history.n_warm == donor.n_evals
    assert history.n_evals == 10
    assert history.n_total == donor.n_evals + 10
    np.testing.assert_array_equal(history.X[:history.n_warm], donor.X)
    np.testing.assert_array_equal(history.F[:history.n_warm], donor.F)
    # fresh simulations only: every engine dispatch was a non-donor design
    assert history.engine_stats["misses"] <= 10
    assert engine.n_sim_calls <= 10


@pytest.mark.parametrize("name,factory", ALL_OPTIMIZERS,
                         ids=[n for n, _ in ALL_OPTIMIZERS])
def test_warm_runs_are_seed_deterministic(donor, name, factory):
    def run_once():
        ws = WarmStart.from_history(donor)
        return Study(factory(ConstrainedSphere(3), 12, 7), warm_start=ws).run()

    assert_history_equal(run_once(), run_once())


def test_donor_designs_answered_from_seeded_cache(donor):
    # If the warm run re-queries a donor design (here: forced via the
    # engine directly), the seeded cache answers without a simulation.
    ws = WarmStart.from_history(donor)
    engine = EvalEngine("serial")
    problem = ConstrainedSphere(3)
    study = Study(RandomSearch(problem, 5, 3), engine=engine, warm_start=ws)
    assert study.warm_report["cache_seeded"] == donor.n_evals
    F = engine.evaluate_batch(problem, donor.X)
    assert engine.n_sim_calls == 0
    assert engine.n_cache_hits == len(donor.X)
    np.testing.assert_array_equal(F, donor.F)


def test_warm_prefix_is_cost_free_accounting(donor):
    ws = WarmStart.from_history(donor)
    history = Study(RandomSearch(ConstrainedSphere(3), 6, 4),
                    warm_start=ws).run()
    summary = history.summary()
    assert summary["n_evals"] == 6
    assert summary["n_warm"] == donor.n_evals
    # donor feasibility is not "simulations to first feasible" for this run
    fresh_feasible = history.feasible[history.n_warm:]
    expected = (int(np.argmax(fresh_feasible)) + 1 if fresh_feasible.any()
                else None)
    assert history.evals_to_first_feasible == expected


def test_dnnopt_warm_start_shrinks_lhs_init_block(donor):
    # With a donor archive >= n_init the space-filling block disappears:
    # the first ask is already a model-based (Eq. 8) proposal batch.
    ws = WarmStart.from_history(donor)
    opt = small_dnnopt(ConstrainedSphere(3), 10, 5, batch_size=3)
    Study(opt, warm_start=ws)  # applies the warm prefix at construction
    X = opt.ask()
    assert len(opt._init_plan) == 0
    assert 1 <= len(X) <= 3
    # ...whereas a small donor only *shrinks* the block.
    small = WarmStart(donor.X[:3], donor.F[:3],
                      space=donor.problem.space, mode="tell")
    opt2 = small_dnnopt(ConstrainedSphere(3), 20, 5)
    Study(opt2, warm_start=small)
    opt2.ask()
    assert len(opt2._init_plan) == opt2.n_init - 3


def test_warm_start_requires_fresh_optimizer(donor):
    ws = WarmStart.from_history(donor)
    opt = RandomSearch(ConstrainedSphere(3), 8, 1)
    Study(opt).run()
    with pytest.raises(ValueError, match="fresh"):
        Study(opt, warm_start=ws)


def test_tell_mode_rejects_mismatched_row_width(donor):
    ws = WarmStart.from_history(donor, mode="tell")
    with pytest.raises(ValueError, match="tell"):
        Study(RandomSearch(Sphere(3), 8, 1), warm_start=ws)


# ----------------------------------------------------------------------
# checkpoints as donors + warm checkpoint/resume
# ----------------------------------------------------------------------
def test_from_checkpoint_round_trips_space_description(tmp_path, donor):
    path = tmp_path / "donor.json"
    study = Study(RandomSearch(ConstrainedSphere(3), 10, 1))
    study.run()
    study.save(str(path))
    ws = WarmStart.from_checkpoint(str(path))
    assert ws.names == list(ConstrainedSphere(3).space.names)
    np.testing.assert_array_equal(ws.lower, ConstrainedSphere(3).space.lower)
    assert ws.resolve_mode(ConstrainedSphere(3)) == "tell"
    history = Study(RandomSearch(ConstrainedSphere(3), 6, 2),
                    warm_start=ws).run()
    assert history.n_warm == 10


def test_warm_checkpoint_resume_bit_identical(tmp_path, donor):
    make = lambda: DifferentialEvolution(ConstrainedSphere(3), 16, 5, pop_size=6)
    make_ws = lambda: WarmStart.from_history(donor)
    reference = Study(make(), warm_start=make_ws()).run()

    path = tmp_path / "warm.ckpt.json"
    interrupted = Study(make(), warm_start=make_ws(), checkpoint_path=str(path),
                        checkpoint_every=1,
                        callbacks=[lambda s: s.history.n_evals >= 8
                                   and s.request_stop()])
    partial = interrupted.run()
    assert partial.n_evals < reference.n_evals

    finished = Study.load(str(path), make()).run()  # no warm_start needed
    assert finished.n_warm == donor.n_evals
    assert_history_equal(reference, finished)


def test_load_rejects_extra_warm_start(tmp_path, donor):
    path = tmp_path / "c.json"
    study = Study(RandomSearch(Sphere(2), 6, 1))
    study.run()
    study.save(str(path))
    with pytest.raises(ValueError, match="warm_start"):
        Study.load(str(path), RandomSearch(Sphere(2), 6, 1),
                   warm_start=WarmStart.from_history(donor))


def test_designs_mode_checkpoint_resume_bit_identical(tmp_path, donor):
    # Cross-problem warm start records its donor starting designs as the
    # first fresh batch; a resume re-launches them from the checkpoint.
    target = lambda: Sphere(3)
    make = lambda: RandomSearch(target(), 14, 6)
    make_ws = lambda: WarmStart.from_history(donor, mode="designs",
                                             max_designs=4)
    reference = Study(make(), warm_start=make_ws()).run()
    path = tmp_path / "designs.ckpt.json"
    interrupted = Study(make(), warm_start=make_ws(), checkpoint_path=str(path),
                        checkpoint_every=1,
                        callbacks=[lambda s: s.history.n_evals >= 7
                                   and s.request_stop()])
    interrupted.run()
    finished = Study.load(str(path), make()).run()
    assert_history_equal(reference, finished)


# ----------------------------------------------------------------------
# cross-problem design-space mapping
# ----------------------------------------------------------------------
class RenamedTarget(OptimizationProblem):
    """Shares x0/x2 with ConstrainedSphere(3), adds a new variable with
    different bounds, and lacks x1."""

    def __init__(self):
        space = DesignSpace([Variable("x0", -10.0, 10.0),
                             Variable("x2", -5.0, 5.0),
                             Variable("bias", 0.0, 2.0)])
        super().__init__(space, Objective("obj", scale=100.0),
                         [Spec("norm", "max", 3.0)])

    def _evaluate(self, x):
        return [float(np.sum(x ** 2)), float(np.linalg.norm(x))]


def test_cross_space_mapping_matches_by_name(donor):
    ws = WarmStart.from_history(donor)
    target = RenamedTarget()
    rng = np.random.default_rng(0)
    Xm, report = ws.map_designs(target.space, rng=rng)
    assert report["matched"] == ["x0", "x2"]
    assert report["resampled"] == ["bias"]
    assert report["dropped"] == ["x1"]
    donor_space = donor.problem.space
    U = donor_space.normalize(donor.X)
    # matched dims transfer in normalized coordinates...
    np.testing.assert_allclose(
        target.space.normalize(Xm)[:, 0], U[:, 0], atol=1e-12)
    np.testing.assert_allclose(
        target.space.normalize(Xm)[:, 1], U[:, 2], atol=1e-12)
    # ...and resampled dims stay inside the target bounds
    assert (Xm[:, 2] >= 0.0).all() and (Xm[:, 2] <= 2.0).all()


def test_cross_problem_auto_resolves_to_designs_mode(donor):
    ws = WarmStart.from_history(donor)
    assert ws.resolve_mode(RenamedTarget()) == "designs"
    assert ws.resolve_mode(ConstrainedSphere(3)) == "tell"


def test_cross_problem_warm_start_runs_and_is_deterministic(donor):
    def run_once():
        ws = WarmStart.from_history(donor, max_designs=5)
        return Study(RandomSearch(RenamedTarget(), 12, 9),
                     warm_start=ws).run()

    h1, h2 = run_once(), run_once()
    assert h1.n_warm == 0          # nothing is free across problems
    assert h1.n_evals == 12
    assert_history_equal(h1, h2)
    # the first batch is the mapped donor designs (best donor FoM first),
    # all simulated on the *target* problem
    target = RenamedTarget()
    np.testing.assert_array_equal(target.evaluate_batch(h1.X), h1.F)


def test_mapping_without_any_common_names_requires_same_dim(donor):
    ws = WarmStart.from_history(donor)
    other = DesignSpace([Variable("a", 0.0, 1.0), Variable("b", 0.0, 1.0)])
    with pytest.raises(ValueError, match="no donor variable names match"):
        ws.map_designs(other, rng=np.random.default_rng(0))
    # same dimension falls back to positional identity
    positional = DesignSpace([Variable(f"p{i}", -5.0, 5.0) for i in range(3)])
    Xm, report = ws.map_designs(positional, rng=np.random.default_rng(0))
    assert report["positional"] == ["p0", "p1", "p2"]
    np.testing.assert_allclose(Xm, donor.X, atol=1e-12)


def test_tell_mode_refuses_resampled_dimensions(donor):
    ws = WarmStart.from_history(donor, mode="tell")
    opt = RandomSearch(RenamedTarget(), 8, 1)
    with pytest.raises(ValueError, match="tell"):
        Study(opt, warm_start=ws)


def test_warm_start_validates_inputs():
    with pytest.raises(ValueError, match="mode"):
        WarmStart(np.zeros((2, 2)), np.zeros((2, 1)), mode="magic")
    with pytest.raises(ValueError, match="rows"):
        WarmStart(np.zeros((2, 2)), np.zeros((3, 1)))
    with pytest.raises(ValueError, match="at least one"):
        WarmStart(np.empty((0, 2)), np.empty((0, 1)))


# ----------------------------------------------------------------------
# run_trials plumbing
# ----------------------------------------------------------------------
def test_run_trials_applies_warm_start_per_trial(donor):
    from repro.experiments import run_trials
    ws = WarmStart.from_history(donor)
    factory = lambda p, b, s: RandomSearch(p, b, s)
    kwargs = dict(budget=6, n_trials=2, base_seed=11)
    warm = run_trials(factory, lambda: ConstrainedSphere(3), warm_start=ws,
                      **kwargs)
    assert all(h.n_warm == donor.n_evals for h in warm)
    assert all(h.n_evals == 6 for h in warm)
    # trials stay independent (different seeds -> different fresh rows)
    assert not np.array_equal(warm[0].X[warm[0].n_warm:],
                              warm[1].X[warm[1].n_warm:])
    # and are reproducible
    again = run_trials(factory, lambda: ConstrainedSphere(3), warm_start=ws,
                       **kwargs)
    for a, b in zip(warm, again):
        assert_history_equal(a, b)


def test_forced_tell_rejects_donor_space_with_different_bounds():
    # A forced mode='tell' donor whose names match but bounds differ would
    # rescale the designs and attach donor F rows to designs they never
    # described (then seed the cache with them) — it must refuse instead.
    donor_space = DesignSpace([Variable("x0", 0.0, 1.0),
                               Variable("x1", 0.0, 1.0)])
    ws = WarmStart(np.array([[0.5, 0.5]]), np.array([[123.0]]),
                   space=donor_space, mode="tell")
    target = Sphere(2)  # same names x0/x1, bounds [-5, 5]
    opt = RandomSearch(target, 8, 1)
    with pytest.raises(ValueError, match="match the target exactly"):
        Study(opt, warm_start=ws)
    assert opt.history.n_total == 0          # nothing was told
    assert opt.engine._cache == {}           # nothing was seeded
