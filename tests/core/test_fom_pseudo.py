"""FoM (Eq. 4) and pseudo-sample generation (Eq. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import fom_from_raw, fom_normalized, fom_tensor, generate_pseudo_samples
from repro.nn import Tensor
from repro.problems import ConstrainedSphere


class TestFoM:
    def test_feasible_design_has_only_objective_term(self):
        Fn = np.array([[0.3, -0.5, -0.1]])
        weights = np.array([1.0, 1.0])
        assert fom_normalized(Fn, 2.0, weights)[0] == pytest.approx(0.6)

    def test_violations_clip_at_one(self):
        Fn = np.array([[0.0, 50.0, 0.2]])
        value = fom_normalized(Fn, 1.0, np.array([1.0, 1.0]))[0]
        assert value == pytest.approx(1.0 + 0.2)

    def test_negative_violations_clip_at_zero(self):
        Fn = np.array([[0.0, -50.0]])
        assert fom_normalized(Fn, 1.0, np.array([1.0]))[0] == pytest.approx(0.0)

    def test_weights_scale_violations(self):
        Fn = np.array([[0.0, 0.4]])
        assert fom_normalized(Fn, 1.0, np.array([2.0]))[0] == pytest.approx(0.8)

    def test_unconstrained_problem(self):
        Fn = np.array([[1.5]])
        assert fom_normalized(Fn, 0.5, np.empty(0))[0] == pytest.approx(0.75)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(-3, 3), min_size=4, max_size=4))
    def test_tensor_matches_numpy(self, values):
        """Property: the autograd FoM equals the NumPy FoM everywhere."""
        Fn = np.array(values).reshape(1, 4)
        weights = np.array([1.0, 2.0, 0.5])
        expected = fom_normalized(Fn, 1.3, weights)
        actual = fom_tensor(Tensor(Fn), 1.3, weights)
        np.testing.assert_allclose(actual.data, expected, atol=1e-12)

    def test_tensor_gradient_flows_in_active_band(self):
        Fn = Tensor(np.array([[0.2, 0.5, -1.0, 3.0]]), requires_grad=True)
        fom_tensor(Fn, 1.0, np.ones(3)).sum().backward()
        grad = Fn.grad[0]
        assert grad[0] == pytest.approx(1.0)   # objective always active
        assert grad[1] == pytest.approx(1.0)   # violation in (0, 1)
        assert grad[2] == pytest.approx(0.0)   # satisfied: clipped at 0
        assert grad[3] == pytest.approx(0.0)   # saturated: clipped at 1

    def test_fom_from_raw_matches_manual(self):
        problem = ConstrainedSphere(3)
        F = problem.evaluate_batch(np.array([[1.0, 1.0, 1.0], [0.0, 0.0, 0.0]]))
        fom = fom_from_raw(problem, F)
        assert fom[0] < fom[1]  # feasible point beats infeasible origin


class TestPseudoSamples:
    def test_full_pairs_when_small(self):
        X = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        Y = np.array([[1.0], [2.0], [3.0]])
        rng = np.random.default_rng(0)
        inputs, targets = generate_pseudo_samples(X, Y, rng=rng, max_pairs=100)
        assert inputs.shape == (9, 4)
        assert targets.shape == (9, 1)

    def test_eq2_semantics(self):
        """input = [x_i, x_j - x_i], target = f(x_j) for every pair."""
        X = np.array([[0.0], [2.0]])
        Y = np.array([[10.0], [20.0]])
        rng = np.random.default_rng(0)
        inputs, targets = generate_pseudo_samples(X, Y, rng=rng, max_pairs=100)
        rows = {tuple(i): t[0] for i, t in zip(inputs, targets)}
        assert rows[(0.0, 0.0)] == 10.0    # (x0, x0)
        assert rows[(0.0, 2.0)] == 20.0    # (x0, x1): dx=+2, target f(x1)
        assert rows[(2.0, -2.0)] == 10.0   # (x1, x0): dx=-2, target f(x0)
        assert rows[(2.0, 0.0)] == 20.0

    def test_cap_respected_with_self_pairs(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(40, 3))
        Y = rng.normal(size=(40, 2))
        inputs, targets = generate_pseudo_samples(X, Y, rng=rng, max_pairs=200)
        assert len(inputs) == 200
        # the 40 self-pairs (dx = 0) are always included
        zero_dx = np.all(inputs[:, 3:] == 0.0, axis=1)
        assert zero_dx.sum() >= 40

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            generate_pseudo_samples(np.ones((3, 2)), np.ones((2, 1)),
                                    rng=np.random.default_rng(0))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 12))
    def test_targets_always_from_archive(self, n):
        """Property: every pseudo-target is an existing archive row."""
        rng = np.random.default_rng(n)
        X = rng.normal(size=(n, 2))
        Y = rng.normal(size=(n, 3))
        _, targets = generate_pseudo_samples(X, Y, rng=rng, max_pairs=50)
        for target in targets:
            assert np.any(np.all(np.isclose(Y, target), axis=1))
