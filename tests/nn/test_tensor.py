"""Autograd correctness: every op's gradient against finite differences."""

import numpy as np
import pytest

from repro.nn import Tensor, concatenate, maximum, minimum, where


def numerical_grad(fn, x, eps=1e-6):
    """Central-difference gradient of scalar fn wrt array x."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    out = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        out[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradient(op, x_data, atol=1e-5):
    x = Tensor(x_data.copy(), requires_grad=True)
    y = op(x)
    loss = y.sum() if y.size > 1 else y
    loss.backward()
    expected = numerical_grad(lambda arr: float(np.sum(op(Tensor(arr)).data)), x_data.copy())
    np.testing.assert_allclose(x.grad, expected, atol=atol)


RNG = np.random.default_rng(42)


@pytest.mark.parametrize("op", [
    lambda x: x + 3.0,
    lambda x: 3.0 - x,
    lambda x: x * 2.5,
    lambda x: x / 4.0,
    lambda x: 2.0 / (x + 3.0),
    lambda x: -x,
    lambda x: x**2,
    lambda x: x**3,
    lambda x: x.tanh(),
    lambda x: x.sigmoid(),
    lambda x: x.relu(),
    lambda x: x.leaky_relu(0.1),
    lambda x: x.exp(),
    lambda x: x.abs(),
    lambda x: x.clip(-0.5, 0.5),
    lambda x: x.clip(None, 0.3),
    lambda x: x.clip(-0.2, None),
    lambda x: x.sum(),
    lambda x: x.mean(),
    lambda x: x.sum(axis=0),
    lambda x: x.mean(axis=1),
    lambda x: x.reshape(6, 2),
    lambda x: x.T,
    lambda x: x[1:, :2],
])
def test_elementwise_gradients(op):
    data = RNG.normal(0.0, 1.0, size=(3, 4))
    # keep away from clip/relu kinks where FD is ill-defined
    data = data + 0.01 * np.sign(data)
    check_gradient(op, data)


def test_log_gradient():
    check_gradient(lambda x: x.log(), RNG.uniform(0.5, 2.0, size=(3, 3)))


def test_matmul_gradients():
    a_data = RNG.normal(size=(3, 4))
    b_data = RNG.normal(size=(4, 2))
    a = Tensor(a_data, requires_grad=True)
    b = Tensor(b_data, requires_grad=True)
    (a @ b).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones((3, 2)) @ b_data.T, atol=1e-10)
    np.testing.assert_allclose(b.grad, a_data.T @ np.ones((3, 2)), atol=1e-10)


def test_broadcast_add_unbroadcasts_grad():
    a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
    b = Tensor(RNG.normal(size=(4,)), requires_grad=True)
    (a + b).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones((3, 4)))
    np.testing.assert_allclose(b.grad, np.full(4, 3.0))


def test_broadcast_mul_row_vector():
    a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
    w = Tensor(RNG.normal(size=(1, 4)), requires_grad=True)
    (a * w).sum().backward()
    assert w.grad.shape == (1, 4)
    np.testing.assert_allclose(w.grad, a.data.sum(axis=0, keepdims=True))


def test_concatenate_routes_gradients():
    a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
    b = Tensor(RNG.normal(size=(2, 2)), requires_grad=True)
    out = concatenate([a, b], axis=1)
    assert out.shape == (2, 5)
    (out * 2.0).sum().backward()
    np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
    np.testing.assert_allclose(b.grad, np.full((2, 2), 2.0))


def test_maximum_minimum_gradient_routing():
    a = Tensor([1.0, 5.0, 2.0], requires_grad=True)
    b = Tensor([2.0, 3.0, 2.0], requires_grad=True)
    maximum(a, b).sum().backward()
    np.testing.assert_allclose(a.grad, [0.0, 1.0, 1.0])  # ties go to first arg
    np.testing.assert_allclose(b.grad, [1.0, 0.0, 0.0])
    a.zero_grad()
    b.zero_grad()
    minimum(a, b).sum().backward()
    np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
    np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])


def test_where_selects_and_routes():
    cond = np.array([True, False, True])
    a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
    b = Tensor([10.0, 20.0, 30.0], requires_grad=True)
    out = where(cond, a, b)
    np.testing.assert_allclose(out.data, [1.0, 20.0, 3.0])
    out.sum().backward()
    np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
    np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])


def test_grad_accumulates_over_multiple_uses():
    x = Tensor([2.0], requires_grad=True)
    y = x * 3.0 + x * 4.0  # dy/dx = 7
    y.backward()
    np.testing.assert_allclose(x.grad, [7.0])


def test_backward_requires_scalar_without_seed():
    x = Tensor(np.ones((2, 2)), requires_grad=True)
    with pytest.raises(RuntimeError):
        (x * 2).backward()


def test_backward_on_non_grad_tensor_raises():
    x = Tensor(np.ones(3))
    with pytest.raises(RuntimeError):
        x.sum().backward()


def test_detach_stops_gradient():
    x = Tensor([1.0, 2.0], requires_grad=True)
    y = x.detach() * 5.0
    assert not y.requires_grad


def test_deep_chain_gradient():
    x = Tensor([0.5], requires_grad=True)
    y = x
    for _ in range(50):
        y = y * 1.01 + 0.001
    y.backward()
    assert np.isfinite(x.grad[0])
    np.testing.assert_allclose(x.grad[0], 1.01**50, rtol=1e-9)


def test_diamond_graph_gradient():
    x = Tensor([3.0], requires_grad=True)
    a = x * 2.0
    b = x * 5.0
    ((a + b) * a).backward()  # f = (2x+5x)*2x = 14 x^2, f' = 28x
    np.testing.assert_allclose(x.grad, [28.0 * 3.0])
