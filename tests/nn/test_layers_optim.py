"""MLP training sanity: layers, optimizers, losses, scalers."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Adam,
    Linear,
    MinMaxScaler,
    SGD,
    Sequential,
    StandardScaler,
    Tanh,
    Tensor,
    huber_loss,
    mae_loss,
    mse_loss,
)


def test_linear_shapes_and_param_count():
    rng = np.random.default_rng(0)
    layer = Linear(5, 3, rng=rng)
    out = layer(Tensor(np.ones((7, 5))))
    assert out.shape == (7, 3)
    assert layer.weight.shape == (5, 3)
    assert sum(p.size for p in layer.parameters()) == 5 * 3 + 3


def test_mlp_parameter_collection():
    rng = np.random.default_rng(0)
    net = MLP(4, 2, (8, 8), rng=rng)
    # 3 Linear layers x (weight + bias)
    assert len(net.parameters()) == 6
    assert net.num_parameters() == (4 * 8 + 8) + (8 * 8 + 8) + (8 * 2 + 2)


def test_mlp_rejects_unknown_activation():
    with pytest.raises(ValueError):
        MLP(2, 1, activation="gelu", rng=np.random.default_rng(0))


def test_state_dict_roundtrip():
    rng = np.random.default_rng(0)
    net = MLP(3, 2, (4,), rng=rng)
    state = net.state_dict()
    x = np.ones((2, 3))
    before = net.predict(x)
    for p in net.parameters():
        p.data = p.data + 1.0
    assert not np.allclose(net.predict(x), before)
    net.load_state_dict(state)
    np.testing.assert_allclose(net.predict(x), before)


def test_mlp_fits_linear_function_with_adam():
    rng = np.random.default_rng(1)
    X = rng.uniform(-1, 1, size=(256, 3))
    W_true = np.array([[1.0], [-2.0], [0.5]])
    y = X @ W_true + 0.3
    net = MLP(3, 1, (16,), rng=rng)
    optimizer = Adam(net.parameters(), lr=1e-2)
    for _ in range(500):
        prediction = net(Tensor(X))
        loss = mse_loss(prediction, Tensor(y))
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    assert loss.item() < 1e-3


def test_sgd_descends_quadratic():
    w = Tensor([5.0], requires_grad=True)
    optimizer = SGD([w], lr=0.1, momentum=0.5)
    for _ in range(100):
        loss = (w * w).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    assert abs(w.data[0]) < 1e-3


def test_losses_basic_values():
    p = Tensor([1.0, 2.0, 3.0])
    t = Tensor([1.0, 2.0, 5.0])
    assert mse_loss(p, t).item() == pytest.approx(4.0 / 3.0)
    assert mae_loss(p, t).item() == pytest.approx(2.0 / 3.0)
    # huber: |e|=2, delta=1 -> 0.5 + 1*(2-1) = 1.5 on one element
    assert huber_loss(p, t, delta=1.0).item() == pytest.approx(1.5 / 3.0)


def test_standard_scaler_roundtrip_and_degenerate():
    data = np.array([[1.0, 5.0], [3.0, 5.0], [5.0, 5.0]])
    scaler = StandardScaler().fit(data)
    out = scaler.transform(data)
    np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-12)
    np.testing.assert_allclose(out[:, 1], 0.0)  # constant column -> zeros
    np.testing.assert_allclose(scaler.inverse_transform(out), data)


def test_minmax_scaler_unit_range():
    rng = np.random.default_rng(2)
    data = rng.normal(size=(20, 3))
    scaler = MinMaxScaler().fit(data)
    out = scaler.transform(data)
    assert out.min() >= 0.0 and out.max() <= 1.0
    np.testing.assert_allclose(scaler.inverse_transform(out), data, atol=1e-12)


def test_scaler_unfitted_raises():
    with pytest.raises(RuntimeError):
        StandardScaler().transform(np.ones((2, 2)))


def test_sequential_composes():
    rng = np.random.default_rng(3)
    net = Sequential(Linear(2, 4, rng=rng), Tanh(), Linear(4, 1, rng=rng))
    out = net(Tensor(np.zeros((5, 2))))
    assert out.shape == (5, 1)
