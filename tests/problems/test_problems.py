"""Design space, specs, problem base and the synthetic suite."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.problems import (
    SYNTHETIC_SUITE,
    Ackley,
    Branin,
    ConstrainedSphere,
    DesignSpace,
    G06,
    Hartmann6,
    Objective,
    OptimizationProblem,
    PressureVessel,
    Rastrigin,
    Rosenbrock,
    Spec,
    Sphere,
    Variable,
)
from repro.problems.base import EvaluationFailure


def small_space():
    return DesignSpace([
        Variable("w", 1.0, 10.0, unit="um"),
        Variable("n", 1, 8, kind="integer"),
    ])


class TestDesignSpace:
    def test_normalize_roundtrip(self):
        space = small_space()
        x = np.array([4.0, 3.0])
        np.testing.assert_allclose(space.denormalize(space.normalize(x)), x)

    def test_sample_within_bounds_and_integers(self):
        space = small_space()
        rng = np.random.default_rng(0)
        X = space.sample(rng, 50)
        assert np.all(X[:, 0] >= 1.0) and np.all(X[:, 0] <= 10.0)
        np.testing.assert_allclose(X[:, 1], np.round(X[:, 1]))

    def test_lhs_stratification(self):
        space = DesignSpace([Variable("x", 0.0, 1.0)])
        rng = np.random.default_rng(1)
        X = space.sample_lhs(rng, 10).ravel()
        # exactly one sample per decile
        bins = np.floor(X * 10).astype(int)
        assert sorted(bins) == list(range(10))

    def test_round_clips(self):
        space = small_space()
        out = space.round(np.array([100.0, -5.0]))
        np.testing.assert_allclose(out, [10.0, 1.0])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace([Variable("a", 0, 1), Variable("a", 0, 1)])

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            Variable("x", 2.0, 1.0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0.0, 1.0), min_size=2, max_size=2))
    def test_denormalize_stays_in_bounds(self, u):
        space = small_space()
        x = space.denormalize(np.array(u))
        assert np.all(x >= space.lower - 1e-9)
        assert np.all(x <= space.upper + 1e-9)


class TestSpec:
    def test_min_spec_violation_sign(self):
        spec = Spec("gain", "min", 60.0)
        assert spec.violation(70.0) < 0
        assert spec.violation(50.0) > 0
        assert spec.satisfied(60.0)

    def test_max_spec_violation_sign(self):
        spec = Spec("power", "max", 1e-3)
        assert spec.violation(0.5e-3) < 0
        assert spec.violation(2e-3) > 0

    def test_violation_is_normalized(self):
        spec = Spec("delay", "max", 10e-9)
        assert spec.violation(20e-9) == pytest.approx(1.0)

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            Spec("x", "equal", 0.0)

    def test_describe(self):
        assert Spec("gain", "min", 60.0, unit="dB").describe() == "gain >= 60 dB"


class _Toy(OptimizationProblem):
    def __init__(self, fail=False):
        self.fail = fail
        space = DesignSpace([Variable("x", -1.0, 1.0)])
        super().__init__(space, Objective("obj", scale=2.0),
                         [Spec("c", "max", 0.5)])

    def _evaluate(self, x):
        if self.fail:
            raise EvaluationFailure("boom")
        return [float(x[0] ** 2), float(x[0])]


class TestProblemBase:
    def test_evaluate_order_and_normalize(self):
        problem = _Toy()
        row = problem.evaluate(np.array([0.6]))
        np.testing.assert_allclose(row, [0.36, 0.6])
        normalized = problem.normalize(row)
        assert normalized[0] == pytest.approx(0.18)
        assert normalized[1] == pytest.approx((0.6 - 0.5) / 0.5)

    def test_normalize_preserves_ndim(self):
        problem = _Toy()
        assert problem.normalize(np.array([1.0, 0.0])).ndim == 1
        assert problem.normalize(np.ones((3, 2))).ndim == 2

    def test_failure_returns_penalty_vector(self):
        problem = _Toy(fail=True)
        row = problem.evaluate(np.array([0.0]))
        assert row[0] == pytest.approx(20.0)  # 10x objective scale
        assert not problem.is_feasible(row)[0]

    def test_nan_result_becomes_failure(self):
        class NaNProblem(_Toy):
            def _evaluate(self, x):
                return [np.nan, 0.0]

        row = NaNProblem().evaluate(np.array([0.0]))
        assert np.all(np.isfinite(row))

    def test_is_feasible_vector(self):
        problem = _Toy()
        F = problem.evaluate_batch(np.array([[0.1], [0.9]]))
        np.testing.assert_array_equal(problem.is_feasible(F), [True, False])

    def test_describe_mentions_constraints(self):
        text = _Toy().describe()
        assert "minimize obj" in text
        assert "c <=" in text


class TestSyntheticSuite:
    @pytest.mark.parametrize("cls", list(SYNTHETIC_SUITE.values()))
    def test_evaluates_and_shapes(self, cls):
        problem = cls()
        rng = np.random.default_rng(0)
        X = problem.space.sample(rng, 4)
        F = problem.evaluate_batch(X)
        assert F.shape == (4, 1 + problem.num_constraints)
        assert np.all(np.isfinite(F))

    def test_known_optima(self):
        assert Sphere(3).evaluate(np.zeros(3))[0] == pytest.approx(0.0)
        assert Rosenbrock(3).evaluate(np.ones(3))[0] == pytest.approx(0.0)
        assert Ackley(2).evaluate(np.zeros(2))[0] == pytest.approx(0.0, abs=1e-9)
        assert Rastrigin(2).evaluate(np.zeros(2))[0] == pytest.approx(0.0, abs=1e-9)
        assert Branin().evaluate(np.array([np.pi, 2.275]))[0] == pytest.approx(
            Branin.optimum, abs=1e-4)
        x_h = np.array([0.20169, 0.150011, 0.476874, 0.275332, 0.311652, 0.6573])
        assert Hartmann6().evaluate(x_h)[0] == pytest.approx(Hartmann6.optimum, abs=1e-3)

    def test_g06_known_optimum_feasible(self):
        problem = G06()
        x_opt = np.array([14.095, 0.84296])
        row = problem.evaluate(x_opt)
        assert row[0] == pytest.approx(G06.optimum, rel=1e-3)
        assert problem.is_feasible(row[None, :], tol=1e-3)[0]

    def test_constrained_sphere_optimum(self):
        problem = ConstrainedSphere(4)
        x_opt = np.full(4, 0.5)
        row = problem.evaluate(x_opt)
        assert row[0] == pytest.approx(problem.optimum)
        assert problem.is_feasible(row[None, :])[0]

    def test_pressure_vessel_integer_dims(self):
        problem = PressureVessel()
        row = problem.evaluate(np.array([13.2, 7.7, 42.0, 176.0]))
        # thickness variables are rounded before evaluation
        row2 = problem.evaluate(np.array([13.0, 8.0, 42.0, 176.0]))
        assert row[0] == pytest.approx(row2[0])
