"""Tests for the runtime lock sanitizer (``repro.tools.sanitize``).

The smoke tests run in a subprocess: ``install()`` permanently wraps the
instrumented classes' ``__init__``, which must not leak into the rest of
the suite (the suite-wide path is the ``REPRO_SANITIZE=1`` CI job, wired
in ``tests/conftest.py``).
"""
from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

from repro.tools.sanitize import SanitizedLock, _stack

SRC = Path(__file__).resolve().parents[2] / "src"


def _run(code: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH=str(SRC), PYTHONHASHSEED="0")
    env.pop("REPRO_SANITIZE", None)
    return subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, timeout=180)


# --------------------------------------------------- proxy unit behaviour

def test_proxy_records_nesting_order_once():
    a = SanitizedLock(threading.Lock(), "A._lock")
    b = SanitizedLock(threading.Lock(), "B._lock")
    from repro.tools import sanitize
    sanitize._STATE.edges.clear()
    with a:
        with b:
            pass
        with b:          # second nesting: same edge, first witness kept
            pass
    edges = sanitize.observed_edges()
    assert ("A._lock", "B._lock") in edges
    assert ("B._lock", "A._lock") not in edges
    assert not _stack()  # balanced: nothing leaked on this thread


def test_reentrant_rlock_is_not_an_edge():
    from repro.tools import sanitize
    inner = threading.RLock()
    lock = SanitizedLock(inner, "R._lock")
    sanitize._STATE.edges.clear()
    with lock:
        with lock:       # re-entrant: no self-edge, no crash
            pass
    assert sanitize.observed_edges() == {}
    assert not _stack()


def test_condition_wait_releases_on_shadow_stack():
    cond = SanitizedLock(threading.Condition(), "C._cond")
    with cond:
        assert cond.held_by_current_thread()
        cond.wait(0.01)  # times out; must re-appear as held afterwards
        assert cond.held_by_current_thread()
    assert not cond.held_by_current_thread()


def test_proxy_forwards_unknown_attrs_to_inner():
    cond = SanitizedLock(threading.Condition(), "C._cond")
    assert cond._is_owned() is False  # forwarded; used by fleet tests
    plain = SanitizedLock(threading.Lock(), "P._lock")
    assert plain.locked() is False
    with plain:
        assert plain.locked() is True


def test_acquire_release_api_matches_with_statement():
    lock = SanitizedLock(threading.Lock(), "L._lock")
    assert lock.acquire() is True
    assert lock.held_by_current_thread()
    lock.release()
    assert not lock.held_by_current_thread()
    assert lock.acquire(False) is True
    lock.release()


# ------------------------------------------------------- subprocess smoke

def test_smoke_engine_workload_edges_subset_of_static():
    proc = _run("""
import json, tempfile
import numpy as np
from repro.tools import sanitize
sanitize.install()
from repro.core import EvalEngine
from repro.problems import Sphere

problem = Sphere(4)
rng = np.random.default_rng(0)
X = problem.space.sample(rng, 8)
with tempfile.TemporaryDirectory() as d:
    with EvalEngine("thread", workers=2, cache_dir=d) as engine:
        engine.evaluate_batch(problem, X)
        engine.evaluate_batch(problem, X)   # cache-hit pass
print(json.dumps({
    "edges": sorted(f"{s}->{d}" for (s, d) in sanitize.observed_edges()),
    "problems": sanitize.check_against_static(),
    "violations": [v.render() for v in sanitize.violations()],
}))
""")
    assert proc.returncode == 0, proc.stderr
    out = json.loads(proc.stdout.strip().splitlines()[-1])
    assert "EvalEngine._state_lock->DiskCache._lock" in out["edges"]
    assert out["problems"] == []
    assert out["violations"] == []


def test_smoke_deliberate_guarded_violation_is_reported():
    proc = _run("""
import json
from repro.tools import sanitize
sanitize.install()
from repro.core import EvalEngine

engine = EvalEngine("serial")
sanitize.probe(engine, "_cache")       # guarded read, no lock held
engine.close()
violations = sanitize.drain_violations()
print(json.dumps([ (v.cls, v.attr, v.lock) for v in violations ]))
""")
    assert proc.returncode == 0, proc.stderr
    reported = json.loads(proc.stdout.strip().splitlines()[-1])
    assert ["EvalEngine", "_cache", "_state_lock"] in reported


def test_smoke_test_code_direct_pokes_are_not_violations():
    proc = _run("""
import json
from repro.tools import sanitize
sanitize.install()
from repro.core import EvalEngine

engine = EvalEngine("serial")
_ = engine._cache            # direct access from non-repo code: exempt
engine._closed               # same
engine.close()
print(json.dumps([v.render() for v in sanitize.violations()]))
""")
    assert proc.returncode == 0, proc.stderr
    assert json.loads(proc.stdout.strip().splitlines()[-1]) == []


def test_smoke_holds_annotated_entry_from_test_code_is_exempt():
    proc = _run("""
import json
import numpy as np
from repro.tools import sanitize
sanitize.install()
from repro.core import EvalEngine
from repro.problems import Sphere

problem = Sphere(2)
engine = EvalEngine("serial")
X = problem.space.sample(np.random.default_rng(0), 1)
engine.evaluate_batch(problem, X)
token = engine._problem_token(problem)
key = engine._key(token, problem.space.canonical(X)[0])
engine.close()
engine._cache_put(key, np.array([1.0]), True)   # holds: contract caller
print(json.dumps([v.render() for v in sanitize.violations()]))
""")
    assert proc.returncode == 0, proc.stderr
    assert json.loads(proc.stdout.strip().splitlines()[-1]) == []


def test_smoke_install_is_idempotent_and_preserves_behaviour():
    proc = _run("""
import numpy as np
from repro.tools import sanitize
sanitize.install()
sanitize.install()                      # second call: no double-wrap
from repro.core import EvalEngine
from repro.problems import Sphere

problem = Sphere(3)
X = problem.space.sample(np.random.default_rng(1), 5)
expected = problem.evaluate_batch(X)
with EvalEngine("thread", workers=2) as engine:
    np.testing.assert_array_equal(engine.evaluate_batch(problem, X), expected)
    assert isinstance(engine._state_lock, sanitize.SanitizedLock)
print("OK")
""")
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip().endswith("OK")
