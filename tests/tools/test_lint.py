"""Self-tests for the repo-contract linter (``repro.tools.lint``).

Each rule has a bad/ok fixture pair under ``fixtures/``; the bad one must
trip its rule (and only via that rule when ``--select``-ed), the ok one
must be clean under the *full* rule set — CI runs the CLI over both and
gates on the exit codes.
"""
from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.tools.lint import lint_paths, lint_text, main
from repro.tools.protocol_schema import OPS, PROTOCOL_VERSION, UNIVERSAL_KEYS

FIXTURES = Path(__file__).resolve().parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src"
RULES = ("RP01", "RP02", "RP03", "RP04", "RP05")

EXPECTED_BAD_COUNTS = {"RP01": 9, "RP02": 2, "RP03": 3, "RP04": 3, "RP05": 2}


def _fixture(rule: str, kind: str) -> str:
    return str(FIXTURES / f"{rule.lower()}_{kind}.py")


# ---------------------------------------------------------------- fixtures

@pytest.mark.parametrize("rule", RULES)
def test_bad_fixture_trips_its_rule(rule):
    result = lint_paths([_fixture(rule, "bad")], select={rule})
    assert len(result.findings) == EXPECTED_BAD_COUNTS[rule]
    assert {f.rule for f in result.findings} == {rule}
    assert result.exit_code == 1


@pytest.mark.parametrize("rule", RULES)
def test_ok_fixture_clean_under_all_rules(rule):
    result = lint_paths([_fixture(rule, "ok")])
    assert result.findings == []
    assert result.exit_code == 0


@pytest.mark.parametrize("rule", RULES)
def test_cli_exit_codes_match_fixture_kind(rule, capsys):
    assert main([_fixture(rule, "bad")]) == 1
    assert main([_fixture(rule, "ok")]) == 0
    capsys.readouterr()


def test_findings_carry_locations_and_messages():
    result = lint_paths([_fixture("RP01", "bad")], select={"RP01"})
    f = result.findings[0]
    assert f.path.endswith("rp01_bad.py")
    assert f.line > 0
    assert "np.random" in f.message
    assert f.render().startswith(f.path)


# ----------------------------------------------------------------- waivers

def test_inline_waiver_suppresses_and_counts():
    dirty = "k = id(object())\n"
    assert len(lint_text(dirty).findings) == 1
    waived = "k = id(object())  # lint: disable=RP01\n"
    result = lint_text(waived)
    assert result.findings == []
    assert result.n_waived == 1


def test_comment_line_waiver_covers_next_line():
    text = ("# identity key is fine here, see docs\n"
            "# lint: disable=RP01\n"
            "k = id(object())\n")
    result = lint_text(text)
    assert result.findings == []
    assert result.n_waived == 1


def test_waiver_is_code_specific():
    text = "k = id(object())  # lint: disable=RP02\n"
    result = lint_text(text)
    assert [f.rule for f in result.findings] == ["RP01"]
    assert result.n_waived == 0


def test_waiver_accepts_multiple_codes():
    text = "k = id(object())  # lint: disable=RP02,RP01\n"
    assert lint_text(text).findings == []


# ----------------------------------------------------------- select/ignore

def test_select_and_ignore():
    text = ("import time\n"
            "__all__ = [\"ghost\"]\n"
            "t = time.time()\n")
    both = lint_text(text)
    assert {f.rule for f in both.findings} == {"RP01", "RP05"}
    only01 = lint_text(text, select={"RP01"})
    assert {f.rule for f in only01.findings} == {"RP01"}
    no01 = lint_text(text, ignore={"RP01"})
    assert {f.rule for f in no01.findings} == {"RP05"}


def test_syntax_error_is_rp00_and_always_reported():
    result = lint_text("def broken(:\n", select={"RP05"})
    assert [f.rule for f in result.findings] == ["RP00"]
    assert result.exit_code == 1


# -------------------------------------------------------------------- CLI

def test_json_output_shape(capsys):
    code = main(["--format", "json", _fixture("RP03", "bad")])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["version"] == 1
    assert payload["files"] == 1
    assert payload["waived"] == 0
    assert len(payload["findings"]) == EXPECTED_BAD_COUNTS["RP03"]
    for entry in payload["findings"]:
        assert set(entry) == {"rule", "path", "line", "col", "message"}
        assert entry["rule"] == "RP03"


def test_cli_select_ignore_and_list_rules(capsys):
    assert main(["--select", "RP02", _fixture("RP01", "bad")]) == 0
    assert main(["--ignore", "RP01", _fixture("RP01", "bad")]) == 0
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out


# ------------------------------------------------------------------ schema

def test_protocol_schema_is_well_formed():
    assert PROTOCOL_VERSION == 2
    assert UNIVERSAL_KEYS == {"op", "id"}
    for name, spec in OPS.items():
        assert spec.name == name
        assert set(spec.roles) <= {"worker", "registry"}
        assert all(isinstance(k, str) for k in spec.required)
    # The ops the service/fleet layers actually speak must stay declared.
    assert {"hello", "put_problem", "eval", "stats", "shutdown",
            "register", "heartbeat", "deregister", "workers"} <= set(OPS)


# ------------------------------------------------------------------- smoke

def test_src_tree_is_clean():
    result = lint_paths([str(SRC)])
    assert result.findings == [], "\n".join(f.render() for f in result.findings)
    assert result.n_files > 50
    assert result.n_waived > 0  # the documented waivers in engine/tensor/fleet
