"""Self-tests for the repo-contract linter (``repro.tools.lint``).

Each rule has a bad/ok fixture pair under ``fixtures/``; the bad one must
trip its rule (and only via that rule when ``--select``-ed), the ok one
must be clean under the *full* rule set — CI runs the CLI over both and
gates on the exit codes.
"""
from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.tools.lint import lint_paths, lint_text, main
from repro.tools.protocol_schema import (OPS, PROTOCOL_VERSION, ROLES,
                                         SANITIZED_CLASSES, UNIVERSAL_KEYS)

FIXTURES = Path(__file__).resolve().parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src"
RULES = ("RP01", "RP02", "RP03", "RP04", "RP05", "RP06", "RP07", "RP08")

EXPECTED_BAD_COUNTS = {"RP01": 9, "RP02": 2, "RP03": 3, "RP04": 3, "RP05": 2,
                       "RP06": 1, "RP07": 3, "RP08": 3}


def _fixture(rule: str, kind: str) -> str:
    return str(FIXTURES / f"{rule.lower()}_{kind}.py")


# ---------------------------------------------------------------- fixtures

@pytest.mark.parametrize("rule", RULES)
def test_bad_fixture_trips_its_rule(rule):
    result = lint_paths([_fixture(rule, "bad")], select={rule})
    assert len(result.findings) == EXPECTED_BAD_COUNTS[rule]
    assert {f.rule for f in result.findings} == {rule}
    assert result.exit_code == 1


@pytest.mark.parametrize("rule", RULES)
def test_ok_fixture_clean_under_all_rules(rule):
    result = lint_paths([_fixture(rule, "ok")])
    assert result.findings == []
    assert result.exit_code == 0


@pytest.mark.parametrize("rule", RULES)
def test_cli_exit_codes_match_fixture_kind(rule, capsys):
    assert main([_fixture(rule, "bad")]) == 1
    assert main([_fixture(rule, "ok")]) == 0
    capsys.readouterr()


def test_findings_carry_locations_and_messages():
    result = lint_paths([_fixture("RP01", "bad")], select={"RP01"})
    f = result.findings[0]
    assert f.path.endswith("rp01_bad.py")
    assert f.line > 0
    assert "np.random" in f.message
    assert f.render().startswith(f.path)


# ----------------------------------------------------------------- waivers

def test_inline_waiver_suppresses_and_counts():
    dirty = "k = id(object())\n"
    assert len(lint_text(dirty).findings) == 1
    waived = "k = id(object())  # lint: disable=RP01\n"
    result = lint_text(waived)
    assert result.findings == []
    assert result.n_waived == 1


def test_comment_line_waiver_covers_next_line():
    text = ("# identity key is fine here, see docs\n"
            "# lint: disable=RP01\n"
            "k = id(object())\n")
    result = lint_text(text)
    assert result.findings == []
    assert result.n_waived == 1


def test_waiver_is_code_specific():
    text = "k = id(object())  # lint: disable=RP02\n"
    result = lint_text(text)
    assert [f.rule for f in result.findings] == ["RP01"]
    assert result.n_waived == 0


def test_waiver_accepts_multiple_codes():
    text = "k = id(object())  # lint: disable=RP02,RP01\n"
    assert lint_text(text).findings == []


# ----------------------------------------------------------- select/ignore

def test_select_and_ignore():
    text = ("import time\n"
            "__all__ = [\"ghost\"]\n"
            "t = time.time()\n")
    both = lint_text(text)
    assert {f.rule for f in both.findings} == {"RP01", "RP05"}
    only01 = lint_text(text, select={"RP01"})
    assert {f.rule for f in only01.findings} == {"RP01"}
    no01 = lint_text(text, ignore={"RP01"})
    assert {f.rule for f in no01.findings} == {"RP05"}


def test_syntax_error_is_rp00_and_always_reported():
    result = lint_text("def broken(:\n", select={"RP05"})
    assert [f.rule for f in result.findings] == ["RP00"]
    assert result.exit_code == 1


# -------------------------------------------------------------------- CLI

def test_json_output_shape(capsys):
    code = main(["--format", "json", _fixture("RP03", "bad")])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["version"] == 1
    assert payload["files"] == 1
    assert payload["waived"] == 0
    assert len(payload["findings"]) == EXPECTED_BAD_COUNTS["RP03"]
    for entry in payload["findings"]:
        assert set(entry) == {"rule", "path", "line", "col", "message"}
        assert entry["rule"] == "RP03"


def test_cli_select_ignore_and_list_rules(capsys):
    assert main(["--select", "RP02", _fixture("RP01", "bad")]) == 0
    assert main(["--ignore", "RP01", _fixture("RP01", "bad")]) == 0
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out


# ------------------------------------------------------- baseline and sarif

def test_baseline_roundtrip_suppresses_known_findings(tmp_path, capsys):
    baseline = tmp_path / "lint-baseline.json"
    bad = _fixture("RP01", "bad")
    assert main(["--write-baseline", str(baseline), bad]) == 0
    recorded = json.loads(baseline.read_text())
    assert recorded["version"] == 1
    assert sum(recorded["entries"].values()) == EXPECTED_BAD_COUNTS["RP01"]
    # Same findings again: all baselined, exit clean.
    assert main(["--baseline", str(baseline), bad]) == 0
    out = capsys.readouterr().out
    assert f"{EXPECTED_BAD_COUNTS['RP01']} baselined" in out


def test_baseline_still_fails_on_new_findings(tmp_path, capsys):
    baseline = tmp_path / "lint-baseline.json"
    assert main(["--write-baseline", str(baseline),
                 _fixture("RP01", "bad")]) == 0
    # A file with findings the baseline has never seen still fails.
    assert main(["--baseline", str(baseline), _fixture("RP01", "bad"),
                 _fixture("RP03", "bad")]) == 1
    payload_code = main(["--baseline", str(baseline), "--format", "json",
                         _fixture("RP01", "bad"), _fixture("RP03", "bad")])
    lines = capsys.readouterr().out
    payload = json.loads(lines[lines.index("{"):])
    assert payload_code == 1
    assert payload["baselined"] == EXPECTED_BAD_COUNTS["RP01"]
    assert {f["rule"] for f in payload["findings"]} == {"RP03"}


def test_missing_baseline_file_is_a_hard_error(tmp_path, capsys):
    assert main(["--baseline", str(tmp_path / "nope.json"),
                 _fixture("RP01", "ok")]) == 2
    capsys.readouterr()


def test_sarif_output_shape(capsys):
    code = main(["--format", "sarif", _fixture("RP03", "bad")])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-contract-lint"
    assert len(run["results"]) == EXPECTED_BAD_COUNTS["RP03"]
    for res in run["results"]:
        assert res["ruleId"] == "RP03"
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("rp03_bad.py")
        assert loc["region"]["startLine"] > 0
        assert loc["region"]["startColumn"] >= 1


# ------------------------------------------------------------------ schema

def test_protocol_schema_is_well_formed():
    assert PROTOCOL_VERSION == 2
    assert UNIVERSAL_KEYS == {"op", "id"}
    for name, spec in OPS.items():
        assert spec.name == name
        assert set(spec.roles) <= set(ROLES)
        assert all(isinstance(k, str) for k in spec.required)
    # The ops the service/fleet layers actually speak must stay declared.
    assert {"hello", "put_problem", "eval", "stats", "shutdown",
            "register", "heartbeat", "deregister", "workers"} <= set(OPS)


def test_sanitized_classes_table_matches_source():
    """Every class/lock the sanitizer instruments must exist with that
    lock attribute — the table in protocol_schema is the single source for
    the runtime half of the concurrency checks."""
    import importlib

    from repro.tools.flow import analyze_paths

    for module_name, classes in SANITIZED_CLASSES.items():
        module = importlib.import_module(module_name)
        analysis = analyze_paths([module.__file__])
        for cls_name, lock_attrs in classes.items():
            assert hasattr(module, cls_name), (module_name, cls_name)
            infos = analysis.classes.get(cls_name, [])
            assert infos, f"{module_name}.{cls_name} not seen by flow"
            declared = set().union(*(i.lock_attrs for i in infos))
            for attr in lock_attrs:
                assert attr in declared, \
                    f"{cls_name}.{attr} is not a lock attribute"


# ------------------------------------------------------------------- smoke

def test_src_tree_is_clean():
    result = lint_paths([str(SRC)])
    assert result.findings == [], "\n".join(f.render() for f in result.findings)
    assert result.n_files > 50
    assert result.n_waived > 0  # the documented waivers in engine/tensor/fleet
