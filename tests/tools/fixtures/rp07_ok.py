"""RP07 ok fixture: the sanctioned shapes — wait on the condition you
hold, snapshot-then-act outside the lock, and blocking with no lock held."""
import subprocess
import threading
import time


class Queue:
    def __init__(self):
        self._cond = threading.Condition()
        self.items = []

    def pop(self):
        with self._cond:
            while not self.items:
                self._cond.wait(0.1)   # fine: waiting on the held cond
            return self.items.pop(0)

    def drain_to_disk(self):
        with self._cond:
            batch, self.items = self.items, []   # swap under the lock ...
        flush_batch(batch)                       # ... block after release
        return len(batch)

    def idle_poll(self):
        time.sleep(0.01)               # fine: no lock held
        with self._cond:
            return len(self.items)


def flush_batch(batch):
    subprocess.run(["true"], check=False)
    return batch
