"""RP05 bad fixture: phantom export + heavy import in an entry point."""
import scipy.linalg

__all__ = ["solve", "does_not_exist"]


def solve():
    return scipy.linalg


if __name__ == "__main__":
    solve()
