"""RP01 bad fixture: one of every determinism violation the rule knows.

Never imported — parsed by tests/tools/test_lint.py and the CI lint job.
"""
import random
import time

import numpy as np


def entropy_soup():
    a = np.random.rand(3)           # global-state RNG draw
    np.random.seed(0)               # global-state RNG reseed
    rng = np.random.default_rng()   # unseeded instance
    r = random.random()             # global-state RNG draw
    u = random.Random()             # unseeded instance
    t = time.time()                 # wall-clock read
    k = id(a)                       # address-dependent key
    out = [v for v in {1, 2, 3}]    # set iteration in a comprehension
    for item in set([r, t]):        # set() iteration in a for loop
        k += item
    return a, rng, u, out, k
