"""RP02 bad fixture: guarded attribute touched without its lock."""
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.n = 0  # guarded by: _lock

    def bump(self):
        self.n += 1          # BAD: no lock held, no holds annotation

    def peek(self):
        with self._lock:
            return self.n    # fine: lexically under the lock

    def deferred(self):
        with self._lock:
            def later():
                return self.n    # BAD: closure runs after release
            return later
