"""RP06 ok fixture: nested acquisition in one consistent global order —
the lock-order graph has edges but no cycle."""
import threading


class Outer:
    def __init__(self, inner):
        self._lock = threading.Lock()
        self.inner = inner

    def update(self, key, value):
        with self._lock:                    # always Outer._lock first ...
            self.inner.store_value(key, value)  # ... then Inner._lock

    def fetch(self, key):
        with self._lock:
            return self.inner.load_value(key)


class Inner:
    def __init__(self):
        self._lock = threading.Lock()
        self.table = {}

    def store_value(self, key, value):
        with self._lock:
            self.table[key] = value

    def load_value(self, key):
        with self._lock:
            return self.table.get(key)
