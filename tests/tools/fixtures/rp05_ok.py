"""RP05 ok fixture: honest __all__ with a lazy heavy import."""

__all__ = ["solve", "heavy_helper"]


def solve():
    return 0


def __getattr__(name):
    if name == "heavy_helper":
        from scipy import linalg
        return linalg
    raise AttributeError(name)


if __name__ == "__main__":
    solve()
