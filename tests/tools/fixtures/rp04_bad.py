"""RP04 bad fixture: undeclared ops and a frame missing a required key."""


def send(conn):
    conn.request({"op": "teleport", "id": 7})      # BAD: undeclared op
    conn.request({"op": "eval", "token": "t"})     # BAD: missing "X"


def handle(msg):
    op = msg.get("op")
    if op == "frobnicate":                         # BAD: undeclared in dispatch
        return {"ok": True}
    if op == "eval":
        return {"ok": True}
    return {"ok": False}
