"""RP01 ok fixture: the sanctioned determinism idioms."""
import random
import time

import numpy as np


def disciplined(seed: int):
    rng = np.random.default_rng(seed)   # seeded instance
    r = random.Random(seed)             # seeded instance
    t0 = time.perf_counter()            # interval clock, not wall clock
    dt = time.monotonic() - t0
    for item in sorted({3, 1, 2}):      # ordered before iteration
        dt += item
    return rng.standard_normal(4), r.random(), dt
