"""RP03 ok fixture: contract-conforming devices."""
import math

import numpy as np


class LinearResistor:
    def stamp_static(self, sys, x, idx):
        return x[idx] * 2.0     # linear *read* of x is fine


class Diode:
    nonlinear = True

    def stamp_static(self, sys, x, idx):
        if x[idx] > 0.5:        # fine: declared nonlinear
            return 1.0
        return 0.0


class VoltageSource:
    def stamp_static(self, sys, x, idx):
        return sys.time * sys.source_scale   # fine: source class


class NoisyResistor:
    def noise_sources(self, xop, idx):
        prefactor = math.sqrt(2.0)           # fine: runs once in the body

        def psd(freq):
            return prefactor / np.sqrt(freq)   # fine: np broadcasts
        return [psd]
