"""RP08 ok fixture: every RNG argument is reachable from a seed — a
parameter, an attribute, a derived salt, and a helper's seeded return."""
import numpy as np


class Sampler:
    def __init__(self, seed):
        self.seed = seed
        self.rng = np.random.default_rng(seed)      # fine: seed parameter

    def restart(self):
        return np.random.default_rng(self.seed)     # fine: seed attribute

    def stream(self, worker):
        salt = self.seed * 1000 + worker
        return np.random.default_rng(salt)          # fine: derived salt


def from_checkpoint(state):
    return np.random.default_rng(state["rng_seed"])  # fine: seed field


def child_rng(seed):
    return np.random.default_rng(_mix(seed, 7))      # fine: helper of seed


def _mix(seed, stream_id):
    return seed ^ (stream_id * 2654435761)
