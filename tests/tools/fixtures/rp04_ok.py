"""RP04 ok fixture: declared ops with their required keys, both sides."""


def send(conn):
    conn.request({"op": "eval", "token": "t", "X": [1.0], "id": 3})
    conn.request({"op": "put_problem", "token": "t", "blob": "..."})


def forward(conn, extra):
    conn.request({"op": "eval", **extra})   # splat suppresses the key check


def handle(msg):
    op = msg.get("op", "")
    if op in ("eval", "put_problem"):
        return {"ok": True}
    return {"ok": False}
