"""RP07 bad fixture: blocking calls reachable while a hot lock is held —
directly, through a helper, and by waiting on a *different* object's
condition (the held lock is not released by that wait)."""
import subprocess
import threading
import time


class Station:
    def __init__(self, peer):
        self._lock = threading.Lock()
        self._cond = threading.Condition()
        self.peer = peer
        self.pending = []

    def poll(self):
        with self._lock:
            time.sleep(0.5)            # BAD: sleep while _lock is held
            return list(self.pending)

    def refresh(self):
        with self._lock:
            self._sync_disk()          # BAD: helper blocks under _lock

    def _sync_disk(self):
        subprocess.run(["sync"], check=False)

    def relay(self):
        with self._cond:
            self.peer.wait()           # BAD: waits on peer's condition
            return True                # while our _cond stays held


class Peer:
    def __init__(self):
        self._cond = threading.Condition()

    def wait(self):
        with self._cond:
            self._cond.wait(1.0)
