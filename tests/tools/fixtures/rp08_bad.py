"""RP08 bad fixture: RNG constructed from values with no path back to a
seed — a process id, a config field, and a helper's tainted return.  Each
call *looks* seeded (RP01 passes); only dataflow sees the problem."""
import os

import numpy as np


def fresh_entropy():
    return np.random.default_rng(os.getpid())  # BAD: pid is not a seed


def jittered_start(config):
    return np.random.default_rng(config.timestamp)  # BAD: wall-clock field


def forked_stream(run_id):
    mix = _scramble(run_id)
    return np.random.default_rng(mix)    # BAD: helper return isn't seeded


def _scramble(run_id):
    return run_id * run_id
