"""RP02 ok fixture: every guarded access locked or holds-annotated."""
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.n = 0  # guarded by: _lock

    def bump(self):
        with self._lock:
            self.n += 1

    def _bump_locked(self):  # holds: _lock
        self.n += 1

    def bump_twice(self):
        with self._lock:
            self._bump_locked()
            self._bump_locked()
