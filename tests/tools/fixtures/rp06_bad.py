"""RP06 bad fixture: two classes acquire each other's locks in opposite
orders — a classic AB/BA deadlock the lock-order graph reports as a cycle."""
import threading


class Ledger:
    def __init__(self, journal):
        self._lock = threading.Lock()
        self.journal = journal

    def post(self, entry):
        with self._lock:                     # Ledger._lock ...
            self.journal.record_entry(entry)  # ... then Journal._lock

    def audit_hook(self):
        with self._lock:
            return True


class Journal:
    def __init__(self):
        self._lock = threading.Lock()
        self.ledger = None
        self.rows = []

    def record_entry(self, entry):
        with self._lock:
            self.rows.append(entry)

    def audit(self):
        with self._lock:                     # Journal._lock ...
            return self.ledger.audit_hook()  # ... then Ledger._lock: CYCLE


def wire(ledger: Ledger, journal: Journal):
    journal.ledger = ledger
    return ledger, journal
