"""RP03 bad fixture: a 'linear' device breaking all three contract clauses."""
import math


class LeakyResistor:
    nonlinear = False

    def stamp_static(self, sys, x, idx):
        g = 1.0
        if x[idx] > 0.5:        # BAD: branches on x in an affine stamp
            g = 2.0
        t = sys.time            # BAD: non-source reads sweep time
        return g + t

    def noise_sources(self, xop, idx):
        def psd(freq):
            return 1.0 / math.sqrt(freq)   # BAD: scalar math in psd closure
        return [psd]
