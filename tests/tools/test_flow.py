"""Unit tests for the interprocedural concurrency analysis
(``repro.tools.flow``): call resolution, lock summaries, the lock-order
graph, RP07 reachability, RP08 taint, and the CLI artifact formats."""
from __future__ import annotations

import json
from pathlib import Path

from repro.tools.flow import HOT_LOCK_ATTRS, FlowAnalysis, analyze_paths, main
from repro.tools.lint import Module, parse_module

FIXTURES = Path(__file__).resolve().parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src"


def _analysis(tmp_path, text: str, name: str = "mod.py") -> FlowAnalysis:
    path = tmp_path / name
    path.write_text(text)
    parsed = parse_module(str(path))
    assert isinstance(parsed, Module), parsed
    return FlowAnalysis([parsed])


def _fn(analysis: FlowAnalysis, suffix: str):
    hits = [fn for key, fn in analysis.functions.items()
            if key.endswith(suffix)]
    assert len(hits) == 1, (suffix, sorted(analysis.functions))
    return hits[0]


# ------------------------------------------------------- call resolution

def test_resolves_self_method_calls(tmp_path):
    analysis = _analysis(tmp_path, """\
import threading

class A:
    def __init__(self):
        self._lock = threading.Lock()

    def outer(self):
        with self._lock:
            self.helper()

    def helper(self):
        pass
""")
    fn = _fn(analysis, "A.outer")
    (call,) = fn.calls
    assert call.callees and call.callees[0].endswith("A.helper")
    assert call.held == frozenset({"A._lock"})


def test_resolves_through_attribute_type_from_init(tmp_path):
    analysis = _analysis(tmp_path, """\
import threading

class Store:
    def __init__(self):
        self._lock = threading.Lock()

    def put_row(self, row):
        with self._lock:
            pass

class Owner:
    def __init__(self):
        self.store = Store()

    def save(self, row):
        self.store.put_row(row)
""")
    fn = _fn(analysis, "Owner.save")
    (call,) = fn.calls if fn.calls else (None,)
    acq = analysis.transitive_acquires()
    key = [k for k in analysis.functions if k.endswith("Owner.save")][0]
    assert acq[key] == frozenset({"Store._lock"})


def test_unique_method_fallback_skips_builtin_names(tmp_path):
    analysis = _analysis(tmp_path, """\
import threading

class Cache:
    def __init__(self):
        self._lock = threading.Lock()

    def get(self, key):
        with self._lock:
            return None

    def fetch_unique(self, key):
        with self._lock:
            return None

class User:
    def use(self, mapping, other):
        mapping.get("k")        # dict-ish name: never resolved by fallback
        other.fetch_unique("k")  # unique name: resolved to Cache
""")
    acq = analysis.transitive_acquires()
    key = [k for k in analysis.functions if k.endswith("User.use")][0]
    assert acq[key] == frozenset({"Cache._lock"})


def test_holds_annotation_seeds_entry_locks(tmp_path):
    analysis = _analysis(tmp_path, """\
import threading

class A:
    def __init__(self):
        self._lock = threading.Lock()

    def _locked_helper(self):  # holds: _lock
        return 1
""")
    fn = _fn(analysis, "A._locked_helper")
    assert fn.entry_holds == frozenset({"A._lock"})


# ------------------------------------------------------- lock-order graph

def test_lock_graph_reports_cycle_with_both_witnesses():
    analysis = analyze_paths([str(FIXTURES / "rp06_bad.py")])
    graph = analysis.lock_graph()
    cycles = graph.cycles()
    assert len(cycles) == 1
    assert cycles[0][0] == cycles[0][-1]
    assert set(cycles[0]) == {"Ledger._lock", "Journal._lock"}
    assert ("Ledger._lock", "Journal._lock") in graph.edges
    assert ("Journal._lock", "Ledger._lock") in graph.edges


def test_lock_graph_dag_has_edges_but_no_cycle():
    graph = analyze_paths([str(FIXTURES / "rp06_ok.py")]).lock_graph()
    assert ("Outer._lock", "Inner._lock") in graph.edges
    assert graph.cycles() == []


def test_edge_witness_points_at_the_acquisition_site():
    graph = analyze_paths([str(FIXTURES / "rp06_ok.py")]).lock_graph()
    witness = graph.edges[("Outer._lock", "Inner._lock")]
    assert witness.path.endswith("rp06_ok.py")
    assert witness.line > 0
    assert witness.via.startswith("call to")


def test_json_artifact_shape():
    graph = analyze_paths([str(FIXTURES / "rp06_bad.py")]).lock_graph()
    payload = graph.to_json()
    assert payload["version"] == 1
    assert set(payload) == {"version", "nodes", "edges", "cycles"}
    assert payload["cycles"]  # the AB/BA cycle
    for edge in payload["edges"]:
        assert set(edge) == {"src", "dst", "path", "line", "func", "via"}


def test_dot_artifact_marks_hot_locks_and_cycles():
    dot = analyze_paths([str(FIXTURES / "rp06_bad.py")]).lock_graph().to_dot()
    assert dot.startswith("digraph lock_order")
    assert "#ffe0e0" in dot       # _lock is a hot attr, filled red
    assert "// CYCLE:" in dot


# ---------------------------------------------------- RP07 reachability

def test_blocking_findings_direct_and_transitive():
    analysis = analyze_paths([str(FIXTURES / "rp07_bad.py")])
    findings = list(analysis.blocking_findings())
    msgs = [m for (_, _, _, m) in findings]
    assert len(findings) == 3
    assert any("time.sleep" in m for m in msgs)
    assert any("reaches blocking subprocess.run" in m for m in msgs)
    assert any("wait on a different object" in m for m in msgs)


def test_sanctioned_wait_and_swap_then_act_are_clean():
    analysis = analyze_paths([str(FIXTURES / "rp07_ok.py")])
    assert list(analysis.blocking_findings()) == []


def test_wait_on_held_condition_releases_it(tmp_path):
    analysis = _analysis(tmp_path, """\
import threading, time

class Q:
    def __init__(self):
        self._cond = threading.Condition()

    def pop(self):
        with self._cond:
            self._cond.wait(0.1)
""")
    assert list(analysis.blocking_findings()) == []


def test_coarse_serialization_locks_are_not_hot(tmp_path):
    analysis = _analysis(tmp_path, """\
import threading, time

class Worker:
    def __init__(self):
        self._eval_lock = threading.Lock()

    def serve(self):
        with self._eval_lock:
            time.sleep(0.1)   # by-design serialization, not a hot lock
""")
    assert list(analysis.blocking_findings()) == []
    assert "_eval_lock" not in HOT_LOCK_ATTRS


# ------------------------------------------------------------ RP08 taint

def test_rng_taint_bad_and_ok_fixtures():
    bad = analyze_paths([str(FIXTURES / "rp08_bad.py")])
    assert len(list(bad.rng_findings())) == 3
    ok = analyze_paths([str(FIXTURES / "rp08_ok.py")])
    assert list(ok.rng_findings()) == []


def test_taint_flows_through_assignments_and_helpers(tmp_path):
    analysis = _analysis(tmp_path, """\
import numpy as np

def seeded(seed):
    mixed = seed * 7 + 1
    return np.random.default_rng(mixed)

def helper_of_seed(seed):
    return seed + 1

def via_helper(seed):
    return np.random.default_rng(helper_of_seed(seed))

def unseeded(counter):
    derived = counter * counter
    return np.random.default_rng(derived)
""")
    findings = list(analysis.rng_findings())
    assert len(findings) == 1
    (path, line, _, _) = findings[0]
    assert "default_rng(derived)" in Path(path).read_text().splitlines()[line - 1]


# ------------------------------------------------------------------- CLI

def test_cli_check_fails_on_cycle_and_passes_on_dag(capsys):
    assert main([str(FIXTURES / "rp06_bad.py"), "--check"]) == 1
    assert "lock-order cycle" in capsys.readouterr().err
    assert main([str(FIXTURES / "rp06_ok.py"), "--check"]) == 0
    capsys.readouterr()


def test_cli_json_format(capsys):
    assert main([str(FIXTURES / "rp06_ok.py"), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["cycles"] == []
    assert any(e["src"] == "Outer._lock" for e in payload["edges"])


# ------------------------------------------------------------- src gate

def test_src_lock_graph_is_acyclic_with_expected_edges():
    graph = analyze_paths([str(SRC)]).lock_graph()
    assert graph.cycles() == []
    # Load-bearing orderings the runtime sanitizer validates against;
    # adding an edge here means re-checking the global acquisition order.
    for edge in [
        ("EvalEngine._state_lock", "DiskCache._lock"),
        ("EvalWorkerServer._eval_lock", "EvalEngine._state_lock"),
        ("FleetCoordinator._cond", "_DispatchState._lock"),
        ("MultiplexedConnection._v1_lock", "MultiplexedConnection._lock"),
    ]:
        assert edge in graph.edges, edge
