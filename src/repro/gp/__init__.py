"""Gaussian-process regression and acquisition functions (BO substrate)."""

from .acquisition import (
    expected_improvement,
    lower_confidence_bound,
    probability_of_feasibility,
    weighted_expected_improvement,
)
from .gpr import GaussianProcess
from .kernels import RBF, Kernel, Matern52

__all__ = [
    "GaussianProcess",
    "Kernel",
    "RBF",
    "Matern52",
    "expected_improvement",
    "weighted_expected_improvement",
    "probability_of_feasibility",
    "lower_confidence_bound",
]
