"""Gaussian-process regression with marginal-likelihood hyperparameter fits.

A standard Cholesky implementation: zero-mean GP on standardized targets,
jittered noise term, log-marginal-likelihood optimized with L-BFGS-B over
log hyperparameters (finite-difference gradients via scipy), with random
restarts.  Cubic cost in the number of samples — the scalability weakness
of BO methods that DNN-Opt's critic avoids, reproduced faithfully.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg, optimize

from .kernels import Kernel, Matern52

__all__ = ["GaussianProcess"]


class GaussianProcess:
    """GP regressor ``y ~ GP(0, k)`` on standardized targets."""

    def __init__(self, kernel: Kernel | None = None, dim: int | None = None, *,
                 noise: float = 1e-6, optimize_noise: bool = True):
        if kernel is None:
            if dim is None:
                raise ValueError("provide a kernel or the input dimension")
            kernel = Matern52(dim)
        self.kernel = kernel
        self.log_noise = np.log(noise)
        self.optimize_noise = bool(optimize_noise)
        self._X: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._chol: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0

    # ------------------------------------------------------------------
    @property
    def noise(self) -> float:
        return float(np.exp(self.log_noise))

    def _pack(self) -> np.ndarray:
        theta = self.kernel.get_params()
        if self.optimize_noise:
            theta = np.concatenate([theta, [self.log_noise]])
        return theta

    def _unpack(self, theta: np.ndarray) -> None:
        k = self.kernel.num_params
        self.kernel.set_params(theta[:k])
        if self.optimize_noise:
            self.log_noise = float(theta[k])

    def _nll(self, theta: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        self._unpack(theta)
        n = len(X)
        K = self.kernel(X, X) + (self.noise + 1e-10) * np.eye(n)
        try:
            chol = linalg.cholesky(K, lower=True)
        except linalg.LinAlgError:
            return 1e25
        alpha = linalg.cho_solve((chol, True), y)
        nll = 0.5 * y @ alpha + np.sum(np.log(np.diag(chol))) + 0.5 * n * np.log(2 * np.pi)
        return float(nll)

    def fit(self, X: np.ndarray, y: np.ndarray, *, restarts: int = 2,
            max_opt_iter: int = 60, rng: np.random.Generator | None = None) -> "GaussianProcess":
        """Fit hyperparameters by maximizing the log marginal likelihood."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        rng = rng or np.random.default_rng(0)

        self._y_mean = float(np.mean(y))
        self._y_std = float(np.std(y))
        if self._y_std < 1e-12:
            self._y_std = 1.0
        y_scaled = (y - self._y_mean) / self._y_std

        best_theta = self._pack()
        best_nll = self._nll(best_theta, X, y_scaled)
        starts = [best_theta]
        for _ in range(restarts):
            start = best_theta + rng.normal(0.0, 0.7, size=best_theta.shape)
            starts.append(start)
        bounds = [(-4.0, 4.0)] + [(-5.0, 3.0)] * self.kernel.dim
        if self.optimize_noise:
            bounds.append((np.log(1e-8), np.log(1e-1)))
        for start in starts:
            result = optimize.minimize(
                self._nll, start, args=(X, y_scaled), method="L-BFGS-B",
                bounds=bounds, options={"maxiter": max_opt_iter})
            if result.fun < best_nll:
                best_nll = result.fun
                best_theta = result.x
        self._unpack(best_theta)

        n = len(X)
        K = self.kernel(X, X) + (self.noise + 1e-10) * np.eye(n)
        self._chol = linalg.cholesky(K, lower=True)
        self._alpha = linalg.cho_solve((self._chol, True), y_scaled)
        self._X = X
        self._final_nll = float(best_nll)
        return self

    def predict(self, Xs: np.ndarray, return_std: bool = True):
        """Posterior mean (and std) at query points, in original target units."""
        if self._X is None:
            raise RuntimeError("GP is not fitted")
        Xs = np.atleast_2d(np.asarray(Xs, dtype=np.float64))
        Ks = self.kernel(Xs, self._X)
        mean = Ks @ self._alpha * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = linalg.solve_triangular(self._chol, Ks.T, lower=True)
        var = self.kernel.diag(Xs) - np.sum(v * v, axis=0)
        std = np.sqrt(np.maximum(var, 1e-14)) * self._y_std
        return mean, std

    def log_marginal_likelihood(self) -> float:
        """Log marginal likelihood of the fitted hyperparameters."""
        if self._X is None:
            raise RuntimeError("GP is not fitted")
        return -self._final_nll
