"""Covariance kernels for Gaussian-process regression.

Kernels operate on normalized inputs (the optimizers work in the unit
cube).  Hyperparameters are stored as log-values so the marginal-likelihood
optimization is unconstrained; ARD (per-dimension lengthscales) is
supported by both kernels.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Kernel", "RBF", "Matern52"]


def _scaled_sqdist(Xa: np.ndarray, Xb: np.ndarray, lengthscales: np.ndarray) -> np.ndarray:
    """Pairwise squared distances of inputs scaled by per-dim lengthscales."""
    A = Xa / lengthscales
    B = Xb / lengthscales
    aa = np.sum(A * A, axis=1)[:, None]
    bb = np.sum(B * B, axis=1)[None, :]
    sq = aa + bb - 2.0 * A @ B.T
    return np.maximum(sq, 0.0)


class Kernel:
    """Base kernel with log-parameter vector [log amp, log ls_1..ls_d]."""

    def __init__(self, dim: int, amplitude: float = 1.0, lengthscale: float = 0.3):
        self.dim = int(dim)
        self.log_amplitude = np.log(amplitude)
        self.log_lengthscales = np.full(dim, np.log(lengthscale))

    # -- parameter vector management -----------------------------------
    def get_params(self) -> np.ndarray:
        return np.concatenate([[self.log_amplitude], self.log_lengthscales])

    def set_params(self, theta: np.ndarray) -> None:
        theta = np.asarray(theta, dtype=np.float64)
        if theta.shape != (1 + self.dim,):
            raise ValueError(f"expected {1 + self.dim} parameters, got {theta.shape}")
        self.log_amplitude = float(theta[0])
        self.log_lengthscales = theta[1:].copy()

    @property
    def num_params(self) -> int:
        return 1 + self.dim

    @property
    def amplitude(self) -> float:
        return float(np.exp(self.log_amplitude))

    @property
    def lengthscales(self) -> np.ndarray:
        return np.exp(self.log_lengthscales)

    def __call__(self, Xa: np.ndarray, Xb: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(len(X), self.amplitude**2)


class RBF(Kernel):
    """Squared-exponential kernel with ARD lengthscales."""

    def __call__(self, Xa: np.ndarray, Xb: np.ndarray) -> np.ndarray:
        sq = _scaled_sqdist(np.atleast_2d(Xa), np.atleast_2d(Xb), self.lengthscales)
        return self.amplitude**2 * np.exp(-0.5 * sq)


class Matern52(Kernel):
    """Matern 5/2 kernel with ARD lengthscales (the GASPAD default)."""

    def __call__(self, Xa: np.ndarray, Xb: np.ndarray) -> np.ndarray:
        sq = _scaled_sqdist(np.atleast_2d(Xa), np.atleast_2d(Xb), self.lengthscales)
        r = np.sqrt(sq + 1e-30)
        c = np.sqrt(5.0) * r
        return self.amplitude**2 * (1.0 + c + (5.0 / 3.0) * sq) * np.exp(-c)
