"""Acquisition functions for the Bayesian-optimization baselines.

Implements the constrained-BO vocabulary used by BO-wEI (Lyu et al.,
DAC'18): expected improvement, *weighted* expected improvement (a convex
blend of the exploitation and exploration terms), probability of
feasibility, and the lower confidence bound used by GASPAD prescreening.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = [
    "expected_improvement",
    "weighted_expected_improvement",
    "probability_of_feasibility",
    "lower_confidence_bound",
]


def _improvement_terms(mean: np.ndarray, std: np.ndarray, best: float):
    std = np.maximum(np.asarray(std, dtype=np.float64), 1e-12)
    z = (best - np.asarray(mean, dtype=np.float64)) / std
    return z, std


def expected_improvement(mean: np.ndarray, std: np.ndarray, best: float) -> np.ndarray:
    """EI for minimization: ``E[max(0, best - Y)]``."""
    z, std = _improvement_terms(mean, std, best)
    return std * (z * stats.norm.cdf(z) + stats.norm.pdf(z))


def weighted_expected_improvement(mean: np.ndarray, std: np.ndarray, best: float,
                                  w: float = 0.5) -> np.ndarray:
    """Weighted EI: ``w * (best-mu) Phi(z) + (1-w) * sigma phi(z)``.

    ``w > 0.5`` exploits, ``w < 0.5`` explores; ``w = 0.5`` halves plain EI.
    """
    if not 0.0 <= w <= 1.0:
        raise ValueError("w must be in [0, 1]")
    z, std = _improvement_terms(mean, std, best)
    exploit = (best - mean) * stats.norm.cdf(z)
    explore = std * stats.norm.pdf(z)
    return w * exploit + (1.0 - w) * explore


def probability_of_feasibility(mean: np.ndarray, std: np.ndarray) -> np.ndarray:
    """P[constraint <= 0] for a GP modelling a normalized violation value."""
    std = np.maximum(np.asarray(std, dtype=np.float64), 1e-12)
    return stats.norm.cdf(-np.asarray(mean, dtype=np.float64) / std)


def lower_confidence_bound(mean: np.ndarray, std: np.ndarray, beta: float = 2.0) -> np.ndarray:
    """LCB prescreening score for minimization (smaller is more promising)."""
    return np.asarray(mean) - beta * np.asarray(std)
