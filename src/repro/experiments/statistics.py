"""Per-algorithm statistics — the rows of Tables II, IV and V."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.history import OptimizationHistory

__all__ = ["AlgorithmStats", "algorithm_stats"]


@dataclass
class AlgorithmStats:
    """Aggregated multi-trial results for one optimizer on one problem."""

    name: str
    n_trials: int
    n_success: int
    #: median simulations-to-first-feasible over successful trials (None if 0)
    sims_to_feasible: float | None
    #: per-trial budget actually used (max over trials)
    budget: int
    min_objective: float | None
    max_objective: float | None
    mean_objective: float | None
    mean_modeling_time_s: float
    mean_simulation_time_s: float

    @property
    def success_rate(self) -> str:
        return f"{self.n_success}/{self.n_trials}"

    @property
    def sims_label(self) -> str:
        """Formatted like the paper: a number, or '>budget' when never met."""
        if self.sims_to_feasible is None:
            return f">{self.budget}"
        return f"{self.sims_to_feasible:.0f}"


def algorithm_stats(name: str, histories: list[OptimizationHistory]) -> AlgorithmStats:
    """Aggregate trial histories into one paper-style statistics row."""
    if not histories:
        raise ValueError("need at least one history")
    firsts = [h.evals_to_first_feasible for h in histories]
    successes = [f for f in firsts if f is not None]
    objectives = [h.best_feasible_objective for h in histories
                  if h.best_feasible_objective is not None]
    return AlgorithmStats(
        name=name,
        n_trials=len(histories),
        n_success=len(successes),
        sims_to_feasible=float(np.median(successes)) if successes else None,
        budget=max(h.n_evals for h in histories),
        min_objective=float(np.min(objectives)) if objectives else None,
        max_objective=float(np.max(objectives)) if objectives else None,
        mean_objective=float(np.mean(objectives)) if objectives else None,
        mean_modeling_time_s=float(np.mean([h.modeling_time for h in histories])),
        mean_simulation_time_s=float(np.mean([h.simulation_time for h in histories])),
    )
