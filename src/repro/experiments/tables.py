"""Plain-text table rendering for the reproduced paper tables."""

from __future__ import annotations

__all__ = ["render_table"]


def render_table(headers: list[str], rows: list[tuple], title: str = "") -> str:
    """Fixed-width ASCII table (paper tables are regenerated through this)."""
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append("| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |")
    lines.append(sep)
    for row in text_rows:
        lines.append("| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |")
    lines.append(sep)
    return "\n".join(lines)


def _fmt(cell) -> str:
    if cell is None:
        return "NA"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)
