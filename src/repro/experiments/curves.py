"""FoM convergence curves — the series of Figures 3 and 4."""

from __future__ import annotations

import numpy as np

from ..core.history import OptimizationHistory

__all__ = ["mean_fom_curve", "curve_table", "ascii_plot"]


def mean_fom_curve(histories: list[OptimizationHistory], length: int | None = None) -> np.ndarray:
    """Average running-minimum FoM across trials, padded to ``length``.

    Trials shorter than ``length`` are extended with their final best FoM
    (the optimizer would not get worse by stopping), which is how the paper
    can average DE (10000 sims) with the 500-sim methods on one axis.
    """
    if not histories:
        raise ValueError("need at least one history")
    if length is None:
        length = max(h.n_evals for h in histories)
    rows = []
    for history in histories:
        curve = history.fom_curve()
        if len(curve) >= length:
            rows.append(curve[:length])
        else:
            pad = np.full(length - len(curve), curve[-1] if len(curve) else np.nan)
            rows.append(np.concatenate([curve, pad]))
    return np.mean(np.asarray(rows), axis=0)


def curve_table(curves: dict[str, np.ndarray], stride: int = 10) -> list[tuple]:
    """Rows ``(n_sims, fom_algo1, fom_algo2, ...)`` sampled every ``stride``."""
    length = max(len(c) for c in curves.values())
    rows = []
    for i in range(0, length, stride):
        row = [i + 1]
        for curve in curves.values():
            row.append(float(curve[min(i, len(curve) - 1)]))
        rows.append(tuple(row))
    return rows


def ascii_plot(curves: dict[str, np.ndarray], *, width: int = 72, height: int = 18,
               title: str = "") -> str:
    """Plain-text rendition of the FoM-vs-simulations figure."""
    symbols = "*o+x#@"
    length = max(len(c) for c in curves.values())
    all_values = np.concatenate([np.asarray(c, dtype=float) for c in curves.values()])
    finite = all_values[np.isfinite(all_values)]
    lo, hi = float(np.min(finite)), float(np.max(finite))
    if hi - lo < 1e-12:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for k, (name, curve) in enumerate(curves.items()):
        sym = symbols[k % len(symbols)]
        for col in range(width):
            idx = min(int(col / (width - 1) * (length - 1)), len(curve) - 1)
            value = float(curve[idx])
            if not np.isfinite(value):
                continue
            row = int((hi - value) / (hi - lo) * (height - 1))
            grid[min(max(row, 0), height - 1)][col] = sym
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:8.3f} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 9 + "|" + "".join(row) + "|")
    lines.append(f"{lo:8.3f} +" + "-" * width + "+")
    lines.append(" " * 10 + f"1 ... {length} simulations")
    legend = "   ".join(f"{symbols[k % len(symbols)]}={name}"
                        for k, name in enumerate(curves))
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
