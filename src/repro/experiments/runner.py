"""Multi-trial experiment runner.

The paper repeats every experiment ten times to account for randomization
(Section III-A); :func:`run_trials` reproduces that protocol and
:func:`compare_algorithms` runs it for a dictionary of optimizer factories
on one problem, returning per-algorithm history lists ready for the
statistics/curve modules.
"""

from __future__ import annotations

from typing import Callable

from ..core.history import OptimizationHistory

__all__ = ["run_trials", "compare_algorithms"]

OptimizerFactory = Callable[[object, int, int], object]
"""Signature: factory(problem, budget, seed) -> Optimizer."""


def run_trials(factory: OptimizerFactory, problem_factory: Callable[[], object],
               *, budget: int, n_trials: int, base_seed: int = 0,
               verbose: bool = False) -> list[OptimizationHistory]:
    """Run ``n_trials`` independent optimizations with seeds
    ``base_seed, base_seed+1, ...`` (a fresh problem instance per trial)."""
    histories = []
    for trial in range(n_trials):
        problem = problem_factory()
        optimizer = factory(problem, budget, base_seed + trial)
        history = optimizer.run()
        histories.append(history)
        if verbose:
            summary = history.summary()
            print(f"  [{summary['optimizer']}] trial {trial}: "
                  f"feasible={summary['feasible']} "
                  f"first={summary['evals_to_first_feasible']} "
                  f"best_obj={summary['best_feasible_objective']}")
    return histories


def compare_algorithms(optimizers: dict[str, OptimizerFactory],
                       problem_factory: Callable[[], object], *,
                       budget: int, n_trials: int, base_seed: int = 0,
                       budgets: dict[str, int] | None = None,
                       verbose: bool = False) -> dict[str, list[OptimizationHistory]]:
    """Run every algorithm with the multi-trial protocol.

    ``budgets`` overrides the budget per algorithm (the paper gives DE 10000
    simulations but the model-based methods only 500).
    """
    results: dict[str, list[OptimizationHistory]] = {}
    for name, factory in optimizers.items():
        algo_budget = (budgets or {}).get(name, budget)
        if verbose:
            print(f"running {name} (budget {algo_budget}, {n_trials} trials)")
        results[name] = run_trials(factory, problem_factory, budget=algo_budget,
                                   n_trials=n_trials, base_seed=base_seed,
                                   verbose=verbose)
    return results
