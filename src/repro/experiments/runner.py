"""Multi-trial experiment runner.

The paper repeats every experiment ten times to account for randomization
(Section III-A); :func:`run_trials` reproduces that protocol and
:func:`compare_algorithms` runs it for a dictionary of optimizer factories
on one problem, returning per-algorithm history lists ready for the
statistics/curve modules.

Trials are independent — trial ``i`` always runs with seed
``base_seed + i`` on a fresh problem instance — so ``workers > 1``
dispatches them across a process pool with no change to the results: the
parallel-runner tests pin that ``workers=4`` histories are identical,
trial for trial, to the serial run.  On platforms with ``fork`` the worker
processes inherit the factories directly (lambdas work); elsewhere, and
inside already-parallel (daemonic) contexts, the runner degrades to a
thread pool or the serial loop.

Trial context travels *with* each dispatch — as an explicit argument for
the serial/thread paths and through the pool initializer for process
pools — never through a module-level global, so concurrent
:func:`run_trials` calls (thread pools, the async evaluation service)
can never run each other's factories.

``engine_factory`` points the trials at an evaluation backend: each trial
builds its own :class:`~repro.core.engine.EvalEngine` from the factory,
attaches it to the optimizer, and closes it when the trial ends.  With
``engine_factory=lambda: EvalEngine("remote", hosts=[...])`` every trial
targets an already-running evaluation service (see
:mod:`repro.core.service`).

Every trial is driven by a :class:`~repro.core.Study` (the ask/tell
driver); ``pipeline_depth > 1`` turns on pipelined dispatch inside each
trial, overlapping the optimizer's proposal generation with in-flight
evaluations on the async/remote backends.  Pipelined proposals condition
on a slightly stale archive, so unlike ``workers``/``engine_factory`` this
knob *may* change trajectories of adaptive optimizers — leave it at 1 for
paper-protocol reproduction runs.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Callable

from ..core.history import OptimizationHistory
from ..core.study import Study

__all__ = ["run_trials", "compare_algorithms"]


def _cache_engine(cache_dir: str):
    """Module-level engine factory (picklable into pool workers)."""
    from ..core.engine import EvalEngine
    return EvalEngine(cache_dir=cache_dir)

OptimizerFactory = Callable[[object, int, int], object]
"""Signature: factory(problem, budget, seed) -> Optimizer."""

# Context bound inside *pool worker processes* by the pool initializer; each
# pool gets its own workers, so concurrent run_trials calls never share it.
_POOL_CONTEXT: tuple | None = None


def _init_pool_worker(context: tuple) -> None:
    global _POOL_CONTEXT
    _POOL_CONTEXT = context


def _pool_trial(trial: int) -> OptimizationHistory:
    return _execute_trial(_POOL_CONTEXT, trial)


def _execute_trial(context: tuple, trial: int) -> OptimizationHistory:
    (factory, problem_factory, budget, base_seed, engine_factory, depth,
     warm_start) = context
    problem = problem_factory()
    optimizer = factory(problem, budget, base_seed + trial)
    engine = engine_factory() if engine_factory is not None else None
    try:
        if _is_legacy(optimizer):
            # Third-party _run()-style optimizers cannot be driven by a
            # Study (and cannot pipeline or warm-start); keep the historic
            # blocking path.
            if engine is not None:
                optimizer.engine = engine
            return optimizer.run()
        return Study(optimizer, engine=engine, pipeline_depth=depth,
                     warm_start=warm_start).run()
    finally:
        if engine is not None:
            engine.close()


def _is_legacy(optimizer) -> bool:
    from ..core.history import Optimizer
    return (isinstance(optimizer, Optimizer)
            and type(optimizer)._run is not Optimizer._run)


def run_trials(factory: OptimizerFactory, problem_factory: Callable[[], object],
               *, budget: int, n_trials: int, base_seed: int = 0,
               workers: int = 1, verbose: bool = False,
               engine_factory: Callable[[], object] | None = None,
               pipeline_depth: int = 1,
               warm_start=None,
               cache_dir: str | None = None,
               fleet=None,
               fleet_kwargs: dict | None = None,
               ) -> list[OptimizationHistory]:
    """Run ``n_trials`` independent optimizations with seeds
    ``base_seed, base_seed+1, ...`` (a fresh problem instance per trial).

    ``workers > 1`` runs trials concurrently on a process pool; histories
    come back in trial order and are identical to a serial run.
    ``engine_factory`` builds a per-trial :class:`~repro.core.EvalEngine`
    (e.g. pointing at a running evaluation service) that is attached to the
    optimizer and closed after its trial.  ``pipeline_depth > 1`` pipelines
    each trial's proposal/evaluation loop (see :class:`~repro.core.Study`).

    ``warm_start`` is a :class:`~repro.core.WarmStart` applied to *every*
    trial (each trial maps/tells the donor archive independently — the
    per-trial seeds still differ, so trials stay independent).
    ``cache_dir`` gives each trial's engine a persistent disk cache tier;
    trials of a repeated sweep then answer duplicate designs with zero
    simulations, even across processes.  Ignored when ``engine_factory``
    is given — configure the factory's engines instead (or set
    ``REPRO_CACHE_DIR``, which every default-configured engine honors).

    ``fleet`` points every trial at a shared
    :class:`~repro.core.fleet.FleetCoordinator`: each trial becomes its
    own tenant (``fleet.engine()`` per trial), so concurrent trials share
    the worker fleet under the fair scheduler.  Mutually exclusive with
    ``engine_factory``.  The coordinator lives in *this* process, so
    parallel trials run on the thread pool rather than forked workers.
    ``fleet_kwargs`` forwards per-tenant scheduling knobs to every trial's
    ``fleet.engine()`` call — e.g. ``{"priority": 2.0, "quota": 300,
    "deadline_s": 600}``; a trial that exhausts its quota ends gracefully
    with its partial history (the Study catches ``BudgetExhausted``).
    """
    workers = max(1, int(workers))
    if fleet_kwargs and fleet is None:
        raise ValueError("fleet_kwargs requires fleet=")
    if fleet is not None:
        if engine_factory is not None:
            raise ValueError("pass either fleet= or engine_factory=, not both")
        engine_factory = (partial(fleet.engine, **fleet_kwargs)
                          if fleet_kwargs else fleet.engine)
    elif engine_factory is None and cache_dir:
        engine_factory = partial(_cache_engine, os.fspath(cache_dir))
    context = (factory, problem_factory, int(budget), int(base_seed),
               engine_factory, max(1, int(pipeline_depth)), warm_start)
    if workers == 1 or n_trials <= 1:
        histories = []
        for trial in range(n_trials):
            histories.append(_execute_trial(context, trial))
            if verbose:
                _print_trial(trial, histories[-1])
        return histories
    histories = _map_trials(context, range(n_trials), min(workers, n_trials),
                            force_threads=fleet is not None)
    if verbose:
        # Parallel trials finish out of order; report once all are in.
        for trial, history in enumerate(histories):
            _print_trial(trial, history)
    return histories


def _print_trial(trial: int, history: OptimizationHistory) -> None:
    summary = history.summary()
    print(f"  [{summary['optimizer']}] trial {trial}: "
          f"feasible={summary['feasible']} "
          f"first={summary['evals_to_first_feasible']} "
          f"best_obj={summary['best_feasible_objective']}")


def _map_trials(context: tuple, trials, workers: int, *,
                force_threads: bool = False) -> list[OptimizationHistory]:
    """Map the trials over the best pool available.

    Preference order: fork-based process pool (true parallelism, factories
    inherited without pickling, context bound per-worker by the pool
    initializer) -> thread pool (daemonic/parallel contexts and platforms
    without fork; context passed by partial) -> serial loop.
    ``force_threads`` skips the fork pool — a fleet coordinator's threads
    and sockets don't survive fork, so its tenants must dispatch from this
    process.
    """
    use_fork = (not force_threads
                and "fork" in mp.get_all_start_methods()
                and not mp.current_process().daemon)
    if use_fork:
        try:
            pool = mp.get_context("fork").Pool(processes=workers,
                                               initializer=_init_pool_worker,
                                               initargs=(context,))
        except OSError:
            pool = None  # out of processes — fall through to threads
        if pool is not None:
            # Trial exceptions propagate from pool.map untouched; only a
            # failure to *create* the pool triggers the thread fallback.
            with pool:
                return pool.map(_pool_trial, trials)
    with ThreadPoolExecutor(max_workers=workers) as executor:
        return list(executor.map(partial(_execute_trial, context), trials))


def compare_algorithms(optimizers: dict[str, OptimizerFactory],
                       problem_factory: Callable[[], object], *,
                       budget: int, n_trials: int, base_seed: int = 0,
                       budgets: dict[str, int] | None = None,
                       workers: int = 1,
                       verbose: bool = False,
                       engine_factory: Callable[[], object] | None = None,
                       pipeline_depth: int = 1,
                       warm_start=None,
                       cache_dir: str | None = None,
                       fleet=None,
                       fleet_kwargs: dict | None = None,
                       ) -> dict[str, list[OptimizationHistory]]:
    """Run every algorithm with the multi-trial protocol.

    ``budgets`` overrides the budget per algorithm (the paper gives DE 10000
    simulations but the model-based methods only 500); overrides are applied
    per algorithm before its trials are dispatched, so they hold under any
    ``workers`` setting.  ``engine_factory``, ``pipeline_depth``,
    ``warm_start`` and ``cache_dir`` are forwarded to :func:`run_trials`
    (with a shared ``cache_dir``, an algorithm re-proposing a design any
    earlier algorithm already simulated gets it answered from disk).
    """
    workers = max(1, int(workers))
    results: dict[str, list[OptimizationHistory]] = {}
    for name, factory in optimizers.items():
        algo_budget = (budgets or {}).get(name, budget)
        if verbose:
            print(f"running {name} (budget {algo_budget}, {n_trials} trials, "
                  f"{workers} workers)")
        results[name] = run_trials(factory, problem_factory, budget=algo_budget,
                                   n_trials=n_trials, base_seed=base_seed,
                                   workers=workers, verbose=verbose,
                                   engine_factory=engine_factory,
                                   pipeline_depth=pipeline_depth,
                                   warm_start=warm_start, cache_dir=cache_dir,
                                   fleet=fleet, fleet_kwargs=fleet_kwargs)
    return results
