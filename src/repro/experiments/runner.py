"""Multi-trial experiment runner.

The paper repeats every experiment ten times to account for randomization
(Section III-A); :func:`run_trials` reproduces that protocol and
:func:`compare_algorithms` runs it for a dictionary of optimizer factories
on one problem, returning per-algorithm history lists ready for the
statistics/curve modules.

Trials are independent — trial ``i`` always runs with seed
``base_seed + i`` on a fresh problem instance — so ``workers > 1``
dispatches them across a process pool with no change to the results: the
parallel-runner tests pin that ``workers=4`` histories are identical,
trial for trial, to the serial run.  On platforms with ``fork`` the worker
processes inherit the factories directly (lambdas work); elsewhere, and
inside already-parallel (daemonic) contexts, the runner degrades to a
thread pool or the serial loop.
"""

from __future__ import annotations

import multiprocessing as mp
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

from ..core.history import OptimizationHistory

__all__ = ["run_trials", "compare_algorithms"]

OptimizerFactory = Callable[[object, int, int], object]
"""Signature: factory(problem, budget, seed) -> Optimizer."""

# Trial context inherited by fork-pool workers (and shared with threads).
# Set immediately before the pool is created, cleared after the map returns.
_TRIAL_CONTEXT: tuple | None = None


def _run_one_trial(trial: int) -> OptimizationHistory:
    factory, problem_factory, budget, base_seed = _TRIAL_CONTEXT
    problem = problem_factory()
    optimizer = factory(problem, budget, base_seed + trial)
    return optimizer.run()


def run_trials(factory: OptimizerFactory, problem_factory: Callable[[], object],
               *, budget: int, n_trials: int, base_seed: int = 0,
               workers: int = 1, verbose: bool = False) -> list[OptimizationHistory]:
    """Run ``n_trials`` independent optimizations with seeds
    ``base_seed, base_seed+1, ...`` (a fresh problem instance per trial).

    ``workers > 1`` runs trials concurrently on a process pool; histories
    come back in trial order and are identical to a serial run.
    """
    workers = max(1, int(workers))
    global _TRIAL_CONTEXT
    previous_context = _TRIAL_CONTEXT
    _TRIAL_CONTEXT = (factory, problem_factory, int(budget), int(base_seed))
    try:
        if workers == 1 or n_trials <= 1:
            histories = []
            for trial in range(n_trials):
                histories.append(_run_one_trial(trial))
                if verbose:
                    _print_trial(trial, histories[-1])
            return histories
        histories = _map_trials(range(n_trials), min(workers, n_trials))
    finally:
        _TRIAL_CONTEXT = previous_context
    if verbose:
        # Parallel trials finish out of order; report once all are in.
        for trial, history in enumerate(histories):
            _print_trial(trial, history)
    return histories


def _print_trial(trial: int, history: OptimizationHistory) -> None:
    summary = history.summary()
    print(f"  [{summary['optimizer']}] trial {trial}: "
          f"feasible={summary['feasible']} "
          f"first={summary['evals_to_first_feasible']} "
          f"best_obj={summary['best_feasible_objective']}")


def _map_trials(trials, workers: int) -> list[OptimizationHistory]:
    """Map :func:`_run_one_trial` over ``trials`` with the best pool available.

    Preference order: fork-based process pool (true parallelism, factories
    inherited without pickling) -> thread pool (daemonic/parallel contexts
    and platforms without fork) -> serial loop.
    """
    use_fork = ("fork" in mp.get_all_start_methods()
                and not mp.current_process().daemon)
    if use_fork:
        try:
            pool = mp.get_context("fork").Pool(processes=workers)
        except OSError:
            pool = None  # out of processes — fall through to threads
        if pool is not None:
            # Trial exceptions propagate from pool.map untouched; only a
            # failure to *create* the pool triggers the thread fallback.
            with pool:
                return pool.map(_run_one_trial, trials)
    with ThreadPoolExecutor(max_workers=workers) as executor:
        return list(executor.map(_run_one_trial, trials))


def compare_algorithms(optimizers: dict[str, OptimizerFactory],
                       problem_factory: Callable[[], object], *,
                       budget: int, n_trials: int, base_seed: int = 0,
                       budgets: dict[str, int] | None = None,
                       workers: int = 1,
                       verbose: bool = False) -> dict[str, list[OptimizationHistory]]:
    """Run every algorithm with the multi-trial protocol.

    ``budgets`` overrides the budget per algorithm (the paper gives DE 10000
    simulations but the model-based methods only 500); overrides are applied
    per algorithm before its trials are dispatched, so they hold under any
    ``workers`` setting.
    """
    workers = max(1, int(workers))
    results: dict[str, list[OptimizationHistory]] = {}
    for name, factory in optimizers.items():
        algo_budget = (budgets or {}).get(name, budget)
        if verbose:
            print(f"running {name} (budget {algo_budget}, {n_trials} trials, "
                  f"{workers} workers)")
        results[name] = run_trials(factory, problem_factory, budget=algo_budget,
                                   n_trials=n_trials, base_seed=base_seed,
                                   workers=workers, verbose=verbose)
    return results
