"""Per-table/figure experiment configurations.

Each ``run_*`` function regenerates one artifact of the paper's evaluation
section and returns both the raw data and a rendered plain-text table or
figure.  Budgets and trial counts are scaled down by default so the whole
benchmark suite finishes on a laptop; set ``REPRO_FULL=1`` in the
environment for paper-scale runs (10 trials, 500-simulation budgets,
10000 for DE).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..baselines import BOwEI, GASPAD, DifferentialEvolution, SimulatedAnnealing
from ..circuits import (
    CTLE,
    InverterChain,
    LDORegulator,
    LevelShifter,
)
from ..core import DNNOpt
from ..sensitivity import reduce_problem, sensitivity_analysis
from .curves import ascii_plot, mean_fom_curve
from .runner import compare_algorithms
from .statistics import algorithm_stats
from .tables import render_table

__all__ = [
    "ExperimentScale",
    "current_scale",
    "building_block_optimizers",
    "run_parameter_table",
    "run_building_block_comparison",
    "render_stats_table",
    "render_fom_figure",
    "run_industrial_comparison",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Trial counts and budgets for one run of the experiment suite."""

    n_trials: int
    budget: int          # model-based methods (paper: 500)
    de_budget: int       # DE (paper: 10000)
    industrial_budget: int
    sa_budget: int       # simulated-annealing industrial baseline

    @property
    def label(self) -> str:
        return (f"{self.n_trials} trials, budget {self.budget} "
                f"(DE {self.de_budget}, SA {self.sa_budget})")


_SMOKE = ExperimentScale(n_trials=2, budget=60, de_budget=240,
                         industrial_budget=50, sa_budget=150)
_FULL = ExperimentScale(n_trials=10, budget=500, de_budget=10_000,
                        industrial_budget=200, sa_budget=1200)


def current_scale() -> ExperimentScale:
    """Scaled-down defaults unless ``REPRO_FULL=1``."""
    return _FULL if os.environ.get("REPRO_FULL") == "1" else _SMOKE


def building_block_optimizers(n_init: int = 20) -> dict:
    """The four algorithms of Tables II/IV as ``factory(problem, budget, seed)``."""
    return {
        "DE": lambda p, b, s: DifferentialEvolution(p, b, s),
        "BO-wEI": lambda p, b, s: BOwEI(p, b, s, n_init=n_init, refit_every=5),
        "GASPAD": lambda p, b, s: GASPAD(p, b, s, n_init=n_init, refit_every=2),
        "DNN-Opt": lambda p, b, s: DNNOpt(p, b, s, n_init=n_init),
    }


# ----------------------------------------------------------------------
# Tables I and III: design-variable ranges
# ----------------------------------------------------------------------
def run_parameter_table(circuit) -> str:
    """Regenerate a parameter/range table (Tables I and III) from the code."""
    rows = [(name, unit or "-", lower, upper)
            for name, unit, lower, upper in circuit.parameter_table()]
    return render_table(["Parameter", "Unit", "LB", "UB"], rows,
                        title=f"Design parameters and ranges: {circuit.name}")


# ----------------------------------------------------------------------
# Tables II/IV and Figures 3/4: building-block comparisons
# ----------------------------------------------------------------------
def run_building_block_comparison(circuit_cls, *, scale: ExperimentScale | None = None,
                                  workers: int = 1, verbose: bool = False,
                                  engine_factory=None,
                                  pipeline_depth: int = 1,
                                  warm_start=None,
                                  cache_dir: str | None = None) -> dict:
    """Run the 4-algorithm comparison on a building block.

    Returns ``{"histories": ..., "stats": ..., "curves": ...}`` — everything
    Table II/IV and Figure 3/4 need.  ``workers > 1`` spreads the
    independent trials over a process pool without changing any result;
    ``engine_factory`` gives every trial its own evaluation engine (e.g.
    ``lambda: EvalEngine("remote", hosts=[...])`` to target a running
    evaluation service) — also without changing any result.
    ``pipeline_depth > 1`` overlaps each trial's proposal generation with
    its in-flight evaluations (throughput mode; adaptive optimizers then
    condition on a slightly stale archive, so keep it at 1 for
    paper-protocol reproduction).
    """
    scale = scale or current_scale()
    problem_factory = lambda: circuit_cls().problem()
    optimizers = building_block_optimizers()
    budgets = {"DE": scale.de_budget}
    histories = compare_algorithms(optimizers, problem_factory, budget=scale.budget,
                                   n_trials=scale.n_trials, budgets=budgets,
                                   workers=workers, verbose=verbose,
                                   engine_factory=engine_factory,
                                   pipeline_depth=pipeline_depth,
                                   warm_start=warm_start, cache_dir=cache_dir)
    stats = {name: algorithm_stats(name, hs) for name, hs in histories.items()}
    curves = {name: mean_fom_curve(hs, length=scale.budget)
              for name, hs in histories.items()}
    return {"histories": histories, "stats": stats, "curves": curves,
            "scale": scale}


def render_stats_table(stats: dict, *, objective_label: str, unit_scale: float,
                       title: str) -> str:
    """Render Tables II/IV: success rate, sims-to-feasible, objective stats,
    modeling/simulation time."""
    names = list(stats)
    rows = [
        tuple(["success rate"] + [stats[n].success_rate for n in names]),
        tuple(["# of simulations"] + [stats[n].sims_label for n in names]),
        tuple([f"Min {objective_label}"] + [_scaled(stats[n].min_objective, unit_scale)
                                            for n in names]),
        tuple([f"Max {objective_label}"] + [_scaled(stats[n].max_objective, unit_scale)
                                            for n in names]),
        tuple([f"Mean {objective_label}"] + [_scaled(stats[n].mean_objective, unit_scale)
                                             for n in names]),
        tuple(["Modeling time (s)"] + [f"{stats[n].mean_modeling_time_s:.1f}"
                                       for n in names]),
        tuple(["Simulation time (s)"] + [f"{stats[n].mean_simulation_time_s:.1f}"
                                         for n in names]),
    ]
    return render_table(["Metric"] + names, rows, title=title)


def render_fom_figure(curves: dict, title: str) -> str:
    """Render Figures 3/4 as an ASCII plot of average FoM vs simulations."""
    return ascii_plot(curves, title=title)


def _scaled(value, unit_scale: float) -> str:
    if value is None:
        return "NA"
    return f"{value / unit_scale:.3g}"


# ----------------------------------------------------------------------
# Table V: industrial circuits, SA baseline vs DNN-Opt
# ----------------------------------------------------------------------
def run_industrial_comparison(*, scale: ExperimentScale | None = None,
                              sensitivity_threshold: float = 0.02,
                              verbose: bool = False) -> dict:
    """Reproduce Table V: sims to meet all constraints, SA vs DNN-Opt.

    Follows the paper's recipe: start from the designer's (nominal) sizing,
    run sensitivity analysis on the failing constraints, reduce to the
    critical variables, then optimize with ``stop_when_feasible``.
    """
    scale = scale or current_scale()
    circuits = {
        "Inverter Chain": InverterChain,
        "Level Shifter": LevelShifter,
        "LDO": LDORegulator,
        "CTLE": CTLE,
    }
    rows = []
    details = {}
    for label, cls in circuits.items():
        circuit = cls()
        problem = circuit.problem()
        nominal = np.array([circuit.nominal()[v] for v in problem.space.names])

        # Sensitivity pruning on the failing constraints (Eq. 7 recipe).
        sens = sensitivity_analysis(problem, nominal, step=0.1)
        nominal_row = problem.evaluate(nominal)
        violations = problem.normalize(nominal_row)[1:]
        failing = [s.name for s, v in zip(problem.specs, violations) if v > 0]
        reduced = reduce_problem(problem, sens, threshold=sensitivity_threshold,
                                 metrics=failing or None, min_keep=4)

        def sims(optimizer) -> str:
            history = optimizer.run()
            first = history.evals_to_first_feasible
            return str(first) if first is not None else f">{history.n_evals}"

        # Both methods start from the designer's sizing (the paper's
        # industrial circuits were mid-manual-tuning).
        reduced_nominal = nominal[reduced.keep_columns]
        sa = SimulatedAnnealing(reduced, scale.sa_budget, seed=1,
                                x0=reduced_nominal, initial_step=0.1,
                                stop_when_feasible=True)
        dnn = DNNOpt(reduced, scale.industrial_budget, seed=1,
                     n_init=min(20, max(8, 2 * reduced.dim)),
                     initial_designs=reduced_nominal[None, :],
                     stop_when_feasible=True)
        sa_sims = sims(sa)
        dnn_sims = sims(dnn)
        if verbose:
            print(f"{label}: kept {reduced.dim}/{problem.dim} variables, "
                  f"SA {sa_sims}, DNN-Opt {dnn_sims}")
        rows.append((label, problem.dim, reduced.dim, sa_sims, dnn_sims))
        details[label] = {"sensitivity": sens, "reduced": reduced,
                          "failing": failing}

    table = render_table(
        ["Circuit", "Vars", "Critical", "Simulated Annealing", "DNN-Opt"],
        rows,
        title="Table V: simulations to meet constraints on industrial circuits")
    return {"rows": rows, "table": table, "details": details, "scale": scale}
