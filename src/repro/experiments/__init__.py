"""Experiment harness: trial runner, statistics, curves, paper artifacts."""

from .curves import ascii_plot, curve_table, mean_fom_curve
from .paper import (
    ExperimentScale,
    building_block_optimizers,
    current_scale,
    render_fom_figure,
    render_stats_table,
    run_building_block_comparison,
    run_industrial_comparison,
    run_parameter_table,
)
from .runner import compare_algorithms, run_trials
from .statistics import AlgorithmStats, algorithm_stats
from .tables import render_table

__all__ = [
    "run_trials",
    "compare_algorithms",
    "AlgorithmStats",
    "algorithm_stats",
    "mean_fom_curve",
    "curve_table",
    "ascii_plot",
    "render_table",
    "ExperimentScale",
    "current_scale",
    "building_block_optimizers",
    "run_parameter_table",
    "run_building_block_comparison",
    "render_stats_table",
    "render_fom_figure",
    "run_industrial_comparison",
]
