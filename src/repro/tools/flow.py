"""Interprocedural concurrency analysis: call graph + per-function lock summaries.

This is the second stage of the contract linter (see ``repro.tools.lint``).
RP01-RP05 are lexical, one function at a time; the bugs they cannot see are
the *cross-function* ones — a lock-order inversion split across two methods,
a socket recv four calls below a ``with self._lock:``, an RNG seeded from a
value that never met the caller's seed.  This module builds the shared
machinery those checks need, stdlib-only so it runs anywhere the repo does:

* a module-level **call graph** over every function/method in the linted
  tree, resolved through imports (including relative ones), ``self.*``
  attribute types inferred from ``__init__``, and a unique-method-name
  fallback for duck-typed calls;
* per-function **lock summaries**: locks acquired directly via
  ``with self._lock:``, entry-held locks from ``# holds:`` annotations
  (the rp02 convention), and the transitive closure through calls;
* the global **lock-order graph** (nodes = class-qualified lock attrs,
  edges = "acquired while holding", each edge carrying a witness
  location) consumed by RP06 and diffed against the runtime sanitizer
  (``repro.tools.sanitize``);
* **blocking-call reachability** (RP07) and **RNG seed-taint** (RP08)
  queries layered on the same graph.

Run ``python -m repro.tools.flow [paths] --format dot|json`` to emit the
lock-order graph as a reviewable artifact; ``--check`` exits non-zero on
cycles (CI uploads the artifact from the lint job).
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Sequence

from .lint import Context, Module, _iter_py_files, dotted_of, parse_module
from .lint.rp02 import _guard_on, _holds_on

#: Lock attribute names considered *hot* (guarding in-memory state touched on
#: the request path).  Blocking while holding one of these stalls every
#: concurrent dispatch, so RP07 flags it; coarse serialization locks with
#: descriptive names (``_eval_lock``, ``_v1_lock``, ``_send_lock``,
#: ``_conn_lock``) intentionally fall outside this set — blocking under them
#: is their documented purpose.
HOT_LOCK_ATTRS = frozenset({"_lock", "_cond", "_state_lock"})

#: Constructors whose result is treated as a lock when assigned to ``self.X``.
_LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
})

#: Fully-resolved call targets that block the calling thread.
_BLOCKING_DOTTED = {
    "time.sleep": "time.sleep()",
    "select.select": "select.select()",
    "socket.create_connection": "socket.create_connection() (TCP connect)",
    "subprocess.run": "subprocess.run()",
    "subprocess.Popen": "subprocess.Popen()",
    "subprocess.call": "subprocess.call()",
    "subprocess.check_call": "subprocess.check_call()",
    "subprocess.check_output": "subprocess.check_output()",
    "os.waitpid": "os.waitpid()",
}

#: Method names that block regardless of receiver type.  ``wait`` and
#: ``shutdown`` are handled specially in :meth:`_Walker._classify_blocking`;
#: ``evaluate``/``evaluate_batch`` are the simulator dispatch calls the issue
#: class exists for — a SPICE run takes seconds to minutes.
_BLOCKING_ATTRS = {
    "sendall": "socket send",
    "recv": "socket recv",
    "recv_into": "socket recv",
    "recvfrom": "socket recv",
    "accept": "socket accept",
    "evaluate": "simulator dispatch (.evaluate)",
    "evaluate_batch": "simulator dispatch (.evaluate_batch)",
    "result": "Future.result()",
    "join": "Thread.join()",
}

#: Function keys (``Cls.method`` or bare function name) whose wait-style
#: blocking under a lock is an audited, intentional pattern.  Waiving here
#: (with a why-comment at the entry) suppresses RP07 for the whole function;
#: single sites are waived inline with ``# lint: disable=RP07``.
RP07_WAIT_ALLOWLIST: frozenset[str] = frozenset()

_SEEDISH = re.compile(r"seed|salt|entropy", re.IGNORECASE)

#: Method names too generic for the unique-method resolution fallback: they
#: exist on builtin containers / stdlib concurrency objects, so a call like
#: ``self._pending.get(...)`` must not resolve to the one tree class that
#: happens to define ``get``.
_COMMON_METHODS = frozenset(
    name
    for obj in (dict, list, set, str, bytes, tuple, frozenset, int, float)
    for name in dir(obj) if not name.startswith("__")
) | frozenset({
    "close", "join", "wait", "acquire", "release", "notify", "notify_all",
    "start", "run", "submit", "shutdown", "result", "put", "get_nowait",
    "put_nowait", "send", "recv", "sendall", "accept", "connect", "read",
    "write", "flush", "open", "stop", "cancel", "set", "is_set", "empty",
    "locked", "fileno", "settimeout", "snapshot", "name",
})

_RNG_MAKERS = frozenset({"default_rng", "Random", "SeedSequence", "RandomState"})


def _self_attr(node: ast.AST) -> str | None:
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name) and node.value.id == "self"):
        return node.attr
    return None


@dataclass(frozen=True)
class AcquireSite:
    """One ``with self.<lock>:`` acquisition."""

    lock: str                    # class-qualified, e.g. "EvalEngine._state_lock"
    line: int
    col: int
    held_before: frozenset[str]  # qualified lock ids held on entry to the with


@dataclass(frozen=True)
class CallSite:
    """One call expression with the locks lexically held around it."""

    callees: tuple[str, ...]     # resolved candidate function keys (may be empty)
    display: str                 # how the call is spelled at the site
    line: int
    col: int
    held: frozenset[str]
    #: the same node was already recorded as a direct BlockSite — keep the
    #: call edge for the lock graph but don't double-report it under RP07
    also_block: bool = False


@dataclass(frozen=True)
class BlockSite:
    """One directly-blocking operation."""

    desc: str
    line: int
    col: int
    held: frozenset[str]         # already excludes a same-object cond wait


@dataclass(frozen=True)
class RngSite:
    """One seeded RNG construction whose argument RP08 must taint-check."""

    maker: str                   # "default_rng" / "Random" / ...
    arg: ast.expr
    line: int
    col: int


@dataclass
class ClassInfo:
    """Per-class facts needed for resolution and lock qualification."""

    name: str
    module: Module
    node: ast.ClassDef
    methods: dict[str, str] = field(default_factory=dict)     # name -> fn key
    lock_attrs: set[str] = field(default_factory=set)
    guarded: dict[str, str] = field(default_factory=dict)     # attr -> lock attr
    attr_types: dict[str, str] = field(default_factory=dict)  # attr -> class name


@dataclass
class FnInfo:
    """One function/method with its lock, call, blocking and taint facts."""

    key: str                     # "repro.core.engine.EvalEngine.close"
    qual: str                    # "EvalEngine.close" — display name
    module: Module
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: ClassInfo | None
    entry_holds: frozenset[str] = frozenset()
    acquires: list[AcquireSite] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    blocks: list[BlockSite] = field(default_factory=list)
    rng_sites: list[RngSite] = field(default_factory=list)
    returns: list[ast.expr] = field(default_factory=list)
    assigns: dict[str, list[ast.expr]] = field(default_factory=dict)
    params: frozenset[str] = frozenset()


@dataclass(frozen=True)
class EdgeWitness:
    """Where one lock-order edge was observed in source."""

    path: str
    line: int
    func: str                    # qualified function name
    via: str                     # "with" or "call to <name>"


@dataclass
class LockGraph:
    """The global lock acquisition-order graph."""

    nodes: set[str] = field(default_factory=set)
    edges: dict[tuple[str, str], EdgeWitness] = field(default_factory=dict)

    def add(self, src: str, dst: str, witness: EdgeWitness) -> None:
        if src == dst:
            return  # re-entrant acquisition (RLock) is not an ordering edge
        self.nodes.add(src)
        self.nodes.add(dst)
        self.edges.setdefault((src, dst), witness)

    def cycles(self, cap: int = 20) -> list[list[str]]:
        """Simple cycles, each as a node list (first node repeated last)."""
        adj: dict[str, list[str]] = {}
        for (src, dst) in self.edges:
            adj.setdefault(src, []).append(dst)
        for outs in adj.values():
            outs.sort()
        found: list[list[str]] = []
        seen_keys: set[tuple[str, ...]] = set()

        def dfs(start: str, node: str, path: list[str],
                on_path: set[str]) -> None:
            if len(found) >= cap:
                return
            for nxt in adj.get(node, ()):
                if nxt < start:
                    continue  # canonical: cycles rooted at their min node
                if nxt == start:
                    cyc = path + [start]
                    key = tuple(cyc)
                    if key not in seen_keys:
                        seen_keys.add(key)
                        found.append(cyc)
                elif nxt not in on_path:
                    on_path.add(nxt)
                    dfs(start, nxt, path + [nxt], on_path)
                    on_path.discard(nxt)

        for start in sorted(self.nodes):
            dfs(start, start, [start], {start})
        return found

    def to_json(self) -> dict[str, object]:
        edges = [
            {"src": src, "dst": dst, "path": w.path, "line": w.line,
             "func": w.func, "via": w.via}
            for (src, dst), w in sorted(self.edges.items())
        ]
        return {
            "version": 1,
            "nodes": sorted(self.nodes),
            "edges": edges,
            "cycles": [" -> ".join(c) for c in self.cycles()],
        }

    def to_dot(self) -> str:
        out = ["digraph lock_order {", "  rankdir=LR;",
               '  node [shape=box, fontname="monospace"];']
        for node in sorted(self.nodes):
            attr = node.rsplit(".", 1)[-1]
            style = ', style=filled, fillcolor="#ffe0e0"' \
                if attr in HOT_LOCK_ATTRS else ""
            out.append(f'  "{node}" [label="{node}"{style}];')
        for (src, dst), w in sorted(self.edges.items()):
            label = f"{Path(w.path).name}:{w.line}"
            out.append(f'  "{src}" -> "{dst}" [label="{label}"];')
        for cyc in self.cycles():
            out.append(f'  // CYCLE: {" -> ".join(cyc)}')
        out.append("}")
        return "\n".join(out)


def _hot(held: frozenset[str]) -> list[str]:
    """The hot locks within a held set (class-qualified ids)."""
    return sorted(h for h in held if h.rsplit(".", 1)[-1] in HOT_LOCK_ATTRS)


class _Aliases:
    """Import table for one module, with relative imports resolved."""

    def __init__(self, module: Module) -> None:
        self.map: dict[str, str] = {}
        dotted = module.dotted_name()
        parts = dotted.split(".") if dotted else []
        is_pkg = Path(module.path).name == "__init__.py"
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    self.map[local] = target
            elif isinstance(node, ast.ImportFrom):
                base: str | None
                if node.level:
                    anchor = parts if is_pkg else parts[:-1]
                    anchor = anchor[:len(anchor) - (node.level - 1)] \
                        if node.level > 1 else anchor
                    if not anchor:
                        continue
                    base = ".".join(anchor)
                    if node.module:
                        base = f"{base}.{node.module}"
                else:
                    base = node.module
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.map[local] = f"{base}.{alias.name}"

    def resolve(self, dotted: str) -> str:
        root, _, rest = dotted.partition(".")
        base = self.map.get(root, root)
        return f"{base}.{rest}" if rest else base


class FlowAnalysis:
    """Call graph + lock/blocking/taint summaries over a set of modules."""

    def __init__(self, modules: Sequence[Module]) -> None:
        self.modules = list(modules)
        self.classes: dict[str, list[ClassInfo]] = {}       # bare name -> infos
        self.functions: dict[str, FnInfo] = {}
        self.method_owners: dict[str, list[ClassInfo]] = {}
        self._module_funcs: dict[str, dict[str, str]] = {}  # dotted -> name -> key
        self._aliases: dict[str, _Aliases] = {}
        self._module_assigns: dict[str, dict[str, list[ast.expr]]] = {}
        for module in self.modules:
            self._collect(module)
        for module in self.modules:
            self._walk_module(module)
        self._trans_acq: dict[str, frozenset[str]] | None = None
        self._trans_block: dict[str, tuple[BlockSite, ...]] | None = None

    # -- pass 1: symbol tables --------------------------------------------
    def _collect(self, module: Module) -> None:
        dotted = module.dotted_name()
        aliases = _Aliases(module)
        self._aliases[module.path] = aliases
        funcs = self._module_funcs.setdefault(dotted, {})
        assigns = self._module_assigns.setdefault(module.path, {})
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                funcs[stmt.name] = f"{dotted}.{stmt.name}"
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        assigns.setdefault(target.id, []).append(stmt.value)
            elif (isinstance(stmt, ast.AnnAssign) and stmt.value is not None
                    and isinstance(stmt.target, ast.Name)):
                assigns.setdefault(stmt.target.id, []).append(stmt.value)
            elif isinstance(stmt, ast.ClassDef):
                self._collect_class(module, aliases, stmt)

    def _collect_class(self, module: Module, aliases: _Aliases,
                       cls_node: ast.ClassDef) -> None:
        dotted = module.dotted_name()
        info = ClassInfo(cls_node.name, module, cls_node)
        for stmt in cls_node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            info.methods[stmt.name] = f"{dotted}.{cls_node.name}.{stmt.name}"
            for node in ast.walk(stmt):
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                if value is None:
                    continue
                for target in targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    lock = _guard_on(module, node.lineno)
                    if lock is not None:
                        info.guarded[attr] = lock
                    if isinstance(value, ast.Call):
                        callee = dotted_of(value.func)
                        if callee is None:
                            continue
                        resolved = aliases.resolve(callee)
                        if resolved in _LOCK_FACTORIES:
                            info.lock_attrs.add(attr)
                        else:
                            info.attr_types.setdefault(
                                attr, resolved.rsplit(".", 1)[-1])
        self.classes.setdefault(cls_node.name, []).append(info)
        for name in info.methods:
            self.method_owners.setdefault(name, []).append(info)

    # -- pass 2: function walks -------------------------------------------
    def _walk_module(self, module: Module) -> None:
        dotted = module.dotted_name()
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk_function(module, stmt, None, f"{dotted}.{stmt.name}",
                                    stmt.name)
            elif isinstance(stmt, ast.ClassDef):
                infos = self.classes.get(stmt.name, [])
                info = next((c for c in infos if c.node is stmt), None)
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._walk_function(
                            module, sub, info,
                            f"{dotted}.{stmt.name}.{sub.name}",
                            f"{stmt.name}.{sub.name}")

    def _qualify(self, cls: ClassInfo | None, attr: str) -> str:
        return f"{cls.name}.{attr}" if cls is not None else f"<module>.{attr}"

    def _walk_function(self, module: Module,
                       fn_node: ast.FunctionDef | ast.AsyncFunctionDef,
                       cls: ClassInfo | None, key: str, qual: str) -> FnInfo:
        holds = frozenset(self._qualify(cls, name)
                          for name in _holds_on(module, fn_node))
        params = frozenset(
            a.arg for a in (fn_node.args.posonlyargs + fn_node.args.args
                            + fn_node.args.kwonlyargs))
        info = FnInfo(key, qual, module, fn_node, cls,
                      entry_holds=holds, params=params)
        self.functions[key] = info
        aliases = self._aliases[module.path]

        def lock_of(expr: ast.expr) -> str | None:
            attr = _self_attr(expr)
            if attr is None:
                return None
            if cls is not None and attr in cls.lock_attrs:
                return f"{cls.name}.{attr}"
            return None

        def visit(node: ast.AST, held: frozenset[str]) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired = set(held)
                for item in node.items:
                    visit(item.context_expr, held)
                    lock = lock_of(item.context_expr)
                    if lock is not None:
                        info.acquires.append(AcquireSite(
                            lock, item.context_expr.lineno,
                            item.context_expr.col_offset, frozenset(acquired)))
                        acquired.add(lock)
                inner = frozenset(acquired)
                for stmt in node.body:
                    visit(stmt, inner)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested def runs later (thread target, callback): it does
                # not inherit the lexical locks; only # holds: applies.
                self._walk_function(module, node, cls, f"{key}.{node.name}",
                                    f"{qual}.{node.name}")
                return
            if isinstance(node, ast.Lambda):
                visit(node.body, frozenset())
                return
            if isinstance(node, ast.Return) and node.value is not None:
                info.returns.append(node.value)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        info.assigns.setdefault(target.id, []).append(node.value)
            elif (isinstance(node, ast.AnnAssign) and node.value is not None
                    and isinstance(node.target, ast.Name)):
                info.assigns.setdefault(node.target.id, []).append(node.value)
            elif isinstance(node, ast.Call):
                self._classify_call(info, aliases, node, held, lock_of)
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for stmt in fn_node.body:
            visit(stmt, holds)
        return info

    def _classify_call(self, info: FnInfo, aliases: _Aliases, node: ast.Call,
                       held: frozenset[str],
                       lock_of: Callable[[ast.expr], str | None]) -> None:
        func = node.func
        dotted = dotted_of(func)
        resolved = aliases.resolve(dotted) if dotted else None
        display = dotted or "<call>"

        # RNG construction sites for RP08 (seeded ones only; unseeded is RP01).
        if resolved is not None and (node.args or node.keywords):
            tail = resolved.rsplit(".", 1)[-1]
            if tail in _RNG_MAKERS and (
                    resolved.startswith("numpy.random.")
                    or resolved.startswith("random.")
                    or resolved == tail):
                arg: ast.expr | None = node.args[0] if node.args else None
                if arg is None:
                    for kw in node.keywords:
                        if kw.arg in ("seed", "x"):
                            arg = kw.value
                if arg is not None and not isinstance(arg, ast.Starred):
                    info.rng_sites.append(RngSite(
                        tail, arg, node.lineno, node.col_offset))

        # Directly-blocking operations.
        block_desc = self._blocking_desc(node, resolved, held, lock_of)
        is_block = block_desc is not None
        if block_desc is not None:
            desc, effective_held = block_desc
            info.blocks.append(BlockSite(
                desc, node.lineno, node.col_offset, effective_held))

        # Still record the call edge: a blocking call (e.g. evaluate_batch)
        # can transitively acquire locks the lock graph must know about.
        callees = self._resolve_call(info, aliases, node)
        if callees or held:
            info.calls.append(CallSite(
                callees, display, node.lineno, node.col_offset, held,
                also_block=is_block))

    def _blocking_desc(
            self, node: ast.Call, resolved: str | None,
            held: frozenset[str],
            lock_of: Callable[[ast.expr], str | None],
    ) -> tuple[str, frozenset[str]] | None:
        if resolved is not None and resolved in _BLOCKING_DOTTED:
            return _BLOCKING_DOTTED[resolved], held
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        if attr == "wait":
            # cond.wait() releases the lock it waits on; waiting on the very
            # lock you hold is the sanctioned producer/consumer idiom.  Any
            # *other* lock stays held across the (blocking) wait.
            waited = lock_of(func.value)
            effective = held - {waited} if waited else held
            return ("wait on a different object"
                    if waited is None else "Condition.wait", effective)
        if attr == "shutdown":
            # Executor.shutdown(wait=True) joins worker threads/processes;
            # socket.shutdown(SHUT_RDWR) is instant and takes a positional
            # how-flag, which tells the two apart.
            if node.args:
                return None
            return "Executor.shutdown() (pool join)", held
        if attr not in _BLOCKING_ATTRS:
            return None
        if attr == "join":
            if isinstance(func.value, ast.Constant):
                return None  # "sep".join(...) — str.join
            if resolved is not None and resolved.startswith(("os.path.",
                                                             "posixpath.",
                                                             "ntpath.")):
                return None
        return _BLOCKING_ATTRS[attr], held

    # -- call resolution ---------------------------------------------------
    def _resolve_call(self, info: FnInfo, aliases: _Aliases,
                      node: ast.Call) -> tuple[str, ...]:
        func = node.func
        if isinstance(func, ast.Name):
            local = self._module_funcs.get(
                info.module.dotted_name(), {}).get(func.id)
            if local is not None:
                return (local,)
            return self._resolve_dotted(aliases.resolve(func.id))
        if not isinstance(func, ast.Attribute):
            return ()
        attr = func.attr
        base = func.value
        cls = info.cls
        # self.m(...)
        if isinstance(base, ast.Name) and base.id == "self" and cls is not None:
            key = cls.methods.get(attr)
            if key is not None:
                return (key,)
            return ()
        # self._attr.m(...) via __init__-inferred attribute types
        inner = _self_attr(base)
        if inner is not None and cls is not None:
            type_name = cls.attr_types.get(inner)
            if type_name is not None:
                for owner in self.classes.get(type_name, []):
                    key = owner.methods.get(attr)
                    if key is not None:
                        return (key,)
        # pkg.mod.func / pkg.mod.Cls / Cls.method through the import table
        dotted = dotted_of(func)
        if dotted is not None:
            hit = self._resolve_dotted(aliases.resolve(dotted))
            if hit:
                return hit
        # unique-method fallback: duck-typed call, but only one class in the
        # tree defines the method, so the target is unambiguous.  Generic
        # container/stdlib method names are excluded — ``pending.get(...)``
        # must not resolve to the one tree class that defines ``get``.
        if not attr.startswith("__") and attr not in _COMMON_METHODS:
            owners = self.method_owners.get(attr, [])
            if len(owners) == 1:
                return (owners[0].methods[attr],)
        return ()

    def _resolve_dotted(self, dotted: str) -> tuple[str, ...]:
        if dotted in self.functions:
            return (dotted,)
        head, _, tail = dotted.rpartition(".")
        # pkg.mod.Cls (or a bare, tree-unique class name) -> its constructor
        candidates = [c for c in self.classes.get(tail, [])
                      if not head
                      or f"{c.module.dotted_name()}.{c.name}" == dotted]
        if not head and len(candidates) != 1:
            candidates = []
        for c in candidates:
            key = c.methods.get("__init__")
            return (key,) if key is not None else ()
        # pkg.mod.Cls.method / Cls.method
        if head:
            grand, _, cls_name = head.rpartition(".")
            for c in self.classes.get(cls_name, []):
                if not grand or c.module.dotted_name() == grand:
                    key = c.methods.get(tail)
                    if key is not None:
                        return (key,)
        return ()

    # -- transitive summaries ----------------------------------------------
    def transitive_acquires(self) -> dict[str, frozenset[str]]:
        """For each function: every lock it may acquire, through calls."""
        if self._trans_acq is not None:
            return self._trans_acq
        acq = {key: {a.lock for a in fn.acquires}
               for key, fn in self.functions.items()}
        changed = True
        while changed:
            changed = False
            for key, fn in self.functions.items():
                mine = acq[key]
                before = len(mine)
                for call in fn.calls:
                    for callee in call.callees:
                        mine |= acq.get(callee, set())
                if len(mine) != before:
                    changed = True
        self._trans_acq = {k: frozenset(v) for k, v in acq.items()}
        return self._trans_acq

    def transitive_blocking(self) -> dict[str, tuple[BlockSite, ...]]:
        """For each function: representative blocking ops it may reach."""
        if self._trans_block is not None:
            return self._trans_block
        block: dict[str, dict[str, BlockSite]] = {
            key: {b.desc: b for b in fn.blocks}
            for key, fn in self.functions.items()
        }
        changed = True
        while changed:
            changed = False
            for key, fn in self.functions.items():
                mine = block[key]
                before = len(mine)
                for call in fn.calls:
                    for callee in call.callees:
                        for desc, site in block.get(callee, {}).items():
                            mine.setdefault(desc, site)
                if len(mine) != before:
                    changed = True
        self._trans_block = {
            k: tuple(sorted(v.values(), key=lambda b: b.desc))
            for k, v in block.items()
        }
        return self._trans_block

    # -- RP06: the lock-order graph ----------------------------------------
    def lock_graph(self) -> LockGraph:
        graph = LockGraph()
        trans = self.transitive_acquires()
        for fn in self.functions.values():
            for site in fn.acquires:
                graph.nodes.add(site.lock)
                for held in site.held_before:
                    graph.add(held, site.lock, EdgeWitness(
                        fn.module.path, site.line, fn.qual, "with"))
            for call in fn.calls:
                if not call.held:
                    continue
                reached: set[str] = set()
                for callee in call.callees:
                    reached |= trans.get(callee, frozenset())
                for lock in reached:
                    for held in call.held:
                        graph.add(held, lock, EdgeWitness(
                            fn.module.path, call.line, fn.qual,
                            f"call to {call.display}"))
        return graph

    # -- RP07: blocking reachable under a hot lock -------------------------
    def blocking_findings(self) -> Iterator[tuple[str, int, int, str]]:
        """(path, line, col, message) for every blocking-under-hot-lock."""
        trans = self.transitive_blocking()
        for fn in self.functions.values():
            if fn.qual in RP07_WAIT_ALLOWLIST or fn.key in RP07_WAIT_ALLOWLIST:
                continue
            for site in fn.blocks:
                hot = _hot(site.held)
                if hot:
                    yield (fn.module.path, site.line, site.col,
                           f"blocking {site.desc} while holding hot lock "
                           f"{', '.join(hot)}; move the blocking work outside "
                           "the lock (swap state under the lock, act after)")
            for call in fn.calls:
                hot = _hot(call.held)
                if not hot or call.also_block:
                    continue
                for callee in call.callees:
                    reached = trans.get(callee, ())
                    if not reached:
                        continue
                    first = reached[0]
                    where = (f"{Path(self.functions[callee].module.path).name}"
                             f":{first.line}")
                    yield (fn.module.path, call.line, call.col,
                           f"call to {call.display}() reaches blocking "
                           f"{first.desc} ({where}) while holding hot lock "
                           f"{', '.join(hot)}")
                    break

    # -- RP08: RNG seed-taint ----------------------------------------------
    def rng_findings(self) -> Iterator[tuple[str, int, int, str]]:
        """(path, line, col, message) for RNG args with no seed provenance."""
        for fn in self.functions.values():
            for site in fn.rng_sites:
                if not self._tainted(site.arg, fn, set()):
                    yield (fn.module.path, site.line, site.col,
                           f"{site.maker}() argument is not derived from a "
                           "seed parameter, seed/salt attribute, or literal "
                           "constant; thread the caller's seed through "
                           "(dataflow-checked, see RP08)")

    def _tainted(self, expr: ast.AST, fn: FnInfo,
                 stack: set[tuple[str, str]]) -> bool:
        if isinstance(expr, ast.Constant):
            return True
        if isinstance(expr, ast.Name):
            if _SEEDISH.search(expr.id):
                return True
            guard = (fn.key, expr.id)
            if guard in stack:
                return False
            stack.add(guard)
            try:
                for value in fn.assigns.get(expr.id, []):
                    if self._tainted(value, fn, stack):
                        return True
                mod_assigns = self._module_assigns.get(fn.module.path, {})
                for value in mod_assigns.get(expr.id, []):
                    if self._tainted(value, fn, stack):
                        return True
            finally:
                stack.discard(guard)
            return False
        if isinstance(expr, ast.Attribute):
            return bool(_SEEDISH.search(expr.attr)) \
                or self._tainted(expr.value, fn, stack)
        if isinstance(expr, ast.Subscript):
            sl = expr.slice
            if (isinstance(sl, ast.Constant) and isinstance(sl.value, str)
                    and _SEEDISH.search(sl.value)):
                return True
            return self._tainted(expr.value, fn, stack) \
                or self._tainted(sl, fn, stack)
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Attribute) \
                    and self._tainted(expr.func.value, fn, stack):
                return True  # method on a seed-derived object (.digest(), ...)
            for arg in expr.args:
                if self._tainted(arg, fn, stack):
                    return True
            for kw in expr.keywords:
                if self._tainted(kw.value, fn, stack):
                    return True
            # A zero-interesting-arg call can still return seed-derived data
            # (a helper returning self.seed); follow the resolved callee.
            aliases = self._aliases[fn.module.path]
            for callee_key in self._resolve_call(fn, aliases, expr):
                guard = (callee_key, "<return>")
                if guard in stack:
                    continue
                stack.add(guard)
                try:
                    callee = self.functions.get(callee_key)
                    if callee is not None and any(
                            self._tainted(r, callee, stack)
                            for r in callee.returns):
                        return True
                finally:
                    stack.discard(guard)
            return False
        if isinstance(expr, (ast.BinOp, ast.BoolOp, ast.UnaryOp, ast.Compare,
                             ast.IfExp, ast.Tuple, ast.List, ast.Set, ast.Dict,
                             ast.JoinedStr, ast.FormattedValue, ast.Starred)):
            return any(self._tainted(child, fn, stack)
                       for child in ast.iter_child_nodes(expr)
                       if isinstance(child, ast.expr))
        return False


# -- shared-analysis plumbing for the lint rules ---------------------------
def register(ctx: Context, module: Module) -> None:
    """Record a module for the whole-tree analysis built at finalize time."""
    bucket = ctx.bucket("FLOW")
    bucket.setdefault("modules", {})[module.path] = module


def analysis_of(ctx: Context) -> FlowAnalysis:
    """The (cached) FlowAnalysis over every registered module."""
    bucket = ctx.bucket("FLOW")
    analysis = bucket.get("analysis")
    if not isinstance(analysis, FlowAnalysis):
        modules = bucket.get("modules", {})
        assert isinstance(modules, dict)
        analysis = FlowAnalysis(list(modules.values()))
        bucket["analysis"] = analysis
    return analysis


def analyze_paths(paths: Sequence[str]) -> FlowAnalysis:
    """Build a FlowAnalysis straight from files/directories."""
    modules: list[Module] = []
    for path in _iter_py_files(paths):
        parsed = parse_module(path)
        if isinstance(parsed, Module):
            modules.append(parsed)
    return FlowAnalysis(modules)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.flow",
        description="Emit the interprocedural lock-order graph.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--format", choices=("dot", "json"), default="dot")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when the lock-order graph has a cycle")
    args = parser.parse_args(argv)
    graph = analyze_paths(args.paths).lock_graph()
    if args.format == "json":
        print(json.dumps(graph.to_json(), indent=2, sort_keys=True))
    else:
        print(graph.to_dot())
    cycles = graph.cycles()
    if args.check and cycles:
        for cyc in cycles:
            print(f"lock-order cycle: {' -> '.join(cyc)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
