"""Developer tooling for the repo: static analysis and contract checks.

Nothing in here is imported by the library at runtime; ``repro.tools`` is
only reached explicitly (``python -m repro.tools.lint``) so that the
science code never pays for tooling imports.
"""

__all__: list[str] = []
