"""Single source of truth for the eval-service wire-protocol frame schema.

Transcribed from the spec in the :mod:`repro.core.service` module docstring
(the prose remains normative; this table is its machine-checkable mirror).
Every frame is a length-prefixed UTF-8 JSON object; requests carry ``"op"``
and replies carry ``"ok"``.  Protocol v2 adds an optional integer ``"id"``
on any request, echoed on its reply — ``"id"`` is therefore legal on every
op and never listed among the required keys below.

The RP04 checker in :mod:`repro.tools.lint` validates every literal frame
construction and every ``op == "..."`` handler dispatch in the linted tree
against this table, so adding an op means adding a row here first — which
is exactly the point.
"""

from __future__ import annotations

from dataclasses import dataclass

PROTOCOL_VERSION = 2


@dataclass(frozen=True)
class OpSpec:
    """One request op of the wire protocol.

    ``required`` are the request keys that must accompany ``"op"``.
    ``reply`` documents the keys of a successful reply (beyond ``"ok"``) —
    informational, not currently enforced.  ``roles`` says which server
    handles the op (``"worker"`` = :class:`EvalWorkerServer`,
    ``"registry"`` = :class:`RegistryServer`).  ``external`` marks ops whose
    senders legitimately live outside ``src/`` (CLI tools, tests, operator
    scripts), so RP04 does not require an in-tree consumer for them.
    """

    name: str
    required: tuple[str, ...]
    reply: tuple[str, ...]
    roles: tuple[str, ...]
    external: bool = False


OPS: dict[str, OpSpec] = {
    spec.name: spec
    for spec in (
        OpSpec("hello", (), ("protocol", "pid", "problems"),
               ("worker", "registry")),
        OpSpec("put_problem", ("token", "blob"), (), ("worker",)),
        OpSpec("eval", ("token", "X"), ("F", "counters", "n_sims"),
               ("worker",)),
        OpSpec("stats", (), ("pid", "n_sims", "cache_hits", "disk_hits",
                             "cache_entries", "problems", "uptime_s"),
               ("worker", "registry"), external=True),
        OpSpec("shutdown", (), (), ("worker",), external=True),
        OpSpec("register", ("address",), (), ("registry",)),
        OpSpec("heartbeat", ("address",), (), ("registry",)),
        OpSpec("deregister", ("address",), (), ("registry",)),
        OpSpec("workers", (), ("workers",), ("registry",), external=True),
    )
}

#: Keys legal on any request regardless of op (v2 multiplexing).
UNIVERSAL_KEYS = frozenset({"op", "id"})

#: Every server role appearing in ``OpSpec.roles`` — the single source for
#: RP04's whole-tree reconciliation gate and for fixtures/tests that need
#: the role universe (previously duplicated as literals in both).
ROLES: tuple[str, ...] = ("worker", "registry")

#: The concurrency-stack classes the runtime lock sanitizer
#: (:mod:`repro.tools.sanitize`, ``REPRO_SANITIZE=1``) instruments:
#: dotted module -> class name -> lock attributes to wrap.  This is also
#: the class universe whose observed lock-order edges are diffed against
#: the static graph from :mod:`repro.tools.flow` (RP06), so keep it in
#: sync with the locks those modules create — the "adding a lock"
#: checklist in the README points here.
SANITIZED_CLASSES: dict[str, dict[str, tuple[str, ...]]] = {
    "repro.core.engine": {
        "EvalEngine": ("_state_lock",),
    },
    "repro.core.service": {
        "MultiplexedConnection": ("_lock", "_send_lock", "_v1_lock"),
        "EvalWorkerServer": ("_problems_lock", "_eval_lock"),
        "RemoteDispatcher": ("_lock",),
    },
    "repro.core.fleet": {
        "WorkerRegistry": ("_lock",),
        "FleetCoordinator": ("_cond",),
        "_HostPump": ("_conn_lock",),
        "_DispatchState": ("_lock",),
    },
    "repro.core.diskcache": {
        "DiskCache": ("_lock",),
    },
    "repro.core.chaos": {
        "FaultPlan": ("_lock",),
        "ChaosProxy": ("_lock",),
        "_Session": ("_lock",),
    },
}
