"""CLI entry: ``python -m repro.tools.lint [paths...]``."""

import sys

from . import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
