"""RP03 — the stamping-plan device contract (``spice/devices/base.py``).

A class that defines ``stamp_static`` and does not declare
``nonlinear = True`` has promised the solver an *affine* stamp: constant
Jacobian, no Newton iteration.  Reading the state vector ``x`` linearly is
fine; *branching* on it (``if``/``while``/ternary tests, comparisons)
breaks the promise silently — the plan caches the stamp once and the
branch never re-evaluates.

Two further clauses from the same contract:

* only source devices (``VoltageSource``/``CurrentSource``) may read
  ``sys.time``/``sys.source_scale`` — any other device reading them would
  make cached static stamps time-dependent;
* ``NoiseSource.psd`` callbacks must broadcast over an ndarray frequency
  grid, so scalar-only ``math.*`` calls inside psd closures defined in
  ``noise_sources`` are flagged (hoist scalar prefactors out of the
  closure, or use ``np.*``).
"""

from __future__ import annotations

from typing import Iterator

import ast

from . import Context, Finding, ImportMap, Module, Rule, dotted_of

#: Class names allowed to read sys.time / sys.source_scale in stamps.
SOURCE_CLASSES = frozenset({"VoltageSource", "CurrentSource"})

_TIME_ATTRS = frozenset({"time", "source_scale"})


def _arg_names(fn: ast.FunctionDef) -> list[str]:
    return [a.arg for a in fn.args.posonlyargs + fn.args.args]


def _contains_name(node: ast.AST, name: str) -> bool:
    return any(isinstance(n, ast.Name) and n.id == name
               for n in ast.walk(node))


class DeviceContract(Rule):
    code = "RP03"
    name = "device-contract"

    def check(self, module: Module, ctx: Context) -> Iterator[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, imports, node)

    def _check_class(self, module: Module, imports: ImportMap,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        stamp = None
        nonlinear = False
        for stmt in cls.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "stamp_static":
                stamp = stmt
            if (isinstance(stmt, ast.Assign)
                    and any(isinstance(t, ast.Name) and t.id == "nonlinear"
                            for t in stmt.targets)
                    and isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is True):
                nonlinear = True
        if stamp is None:
            # Not a stamping device class; psd hygiene still applies below.
            yield from self._check_noise(module, imports, cls)
            return

        args = _arg_names(stamp)
        sys_name = args[1] if len(args) > 1 else None
        x_name = args[2] if len(args) > 2 else None

        if not nonlinear and x_name is not None:
            yield from self._check_affine(module, stamp, x_name)
        for stmt in cls.body:
            if (isinstance(stmt, ast.FunctionDef)
                    and stmt.name.startswith("stamp")
                    and cls.name not in SOURCE_CLASSES):
                method_args = _arg_names(stmt)
                sysn = method_args[1] if len(method_args) > 1 else sys_name
                if sysn is not None:
                    yield from self._check_time_reads(module, stmt, sysn)
        yield from self._check_noise(module, imports, cls)

    def _check_affine(self, module: Module, stamp: ast.FunctionDef,
                      x_name: str) -> Iterator[Finding]:
        tests: list[ast.expr] = []
        for node in ast.walk(stamp):
            if isinstance(node, (ast.If, ast.While, ast.IfExp)):
                tests.append(node.test)
            elif isinstance(node, (ast.Compare, ast.BoolOp)):
                tests.append(node)
        seen: set[tuple[int, int]] = set()
        for test in tests:
            where = (test.lineno, test.col_offset)
            if where in seen:
                continue
            seen.add(where)
            if _contains_name(test, x_name):
                yield Finding(
                    self.code, module.path, test.lineno, test.col_offset,
                    f"stamp_static of a linear (nonlinear=False) device "
                    f"branches on '{x_name}'; declare nonlinear = True or "
                    f"make the stamp affine")

    def _check_time_reads(self, module: Module, stamp: ast.FunctionDef,
                          sys_name: str) -> Iterator[Finding]:
        for node in ast.walk(stamp):
            if (isinstance(node, ast.Attribute) and node.attr in _TIME_ATTRS
                    and isinstance(node.value, ast.Name)
                    and node.value.id == sys_name):
                yield Finding(
                    self.code, module.path, node.lineno, node.col_offset,
                    f"non-source device reads {sys_name}.{node.attr}; only "
                    f"{'/'.join(sorted(SOURCE_CLASSES))} may depend on "
                    f"sweep time / source ramp")

    def _check_noise(self, module: Module, imports: ImportMap,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        for stmt in cls.body:
            if (isinstance(stmt, ast.FunctionDef)
                    and stmt.name == "noise_sources"):
                yield from self._check_psd_closures(module, imports, stmt)

    def _check_psd_closures(self, module: Module, imports: ImportMap,
                            fn: ast.FunctionDef) -> Iterator[Finding]:
        # math.* is fine in the noise_sources body itself (runs once,
        # produces captured scalars); inside the psd closure it runs per
        # frequency grid and silently rejects ndarrays.
        for node in ast.walk(fn):
            inner = None
            if isinstance(node, ast.FunctionDef) and node is not fn:
                inner = node
            elif isinstance(node, ast.Lambda):
                inner = node
            if inner is None:
                continue
            for call in ast.walk(inner):
                if not isinstance(call, ast.Call):
                    continue
                dotted = dotted_of(call.func)
                if dotted is None:
                    continue
                if imports.resolve(dotted).startswith("math."):
                    yield Finding(
                        self.code, module.path, call.lineno, call.col_offset,
                        f"scalar-only {dotted}() inside a noise PSD closure; "
                        f"use the np.* equivalent so psd(freq) broadcasts "
                        f"over an ndarray grid")
