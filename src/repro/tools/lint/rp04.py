"""RP04 — wire-protocol frames must match ``repro.tools.protocol_schema``.

Checks three things across the linted tree:

* every **literal frame construction** — a dict literal whose ``"op"`` key
  is a string constant, wherever it feeds ``send_msg``/``conn.request`` —
  names a declared op and carries that op's required keys (a ``**splat``
  in the literal suppresses the required-key check for that site);
* every **handler dispatch** — a comparison of the conventional ``op``
  variable (or ``msg.get("op")``) against string constants — names
  declared ops only;
* cross-file, when the linted tree contains both senders and handlers:
  every op sent has a handler, and every handled op has an in-tree sender
  unless the schema marks it ``external`` (CLI/operator-driven ops such as
  ``shutdown``).

Adding an op therefore starts in ``protocol_schema.py`` — the schema is
transcribed from the normative spec in the ``service.py`` docstring.
"""

from __future__ import annotations

from typing import Iterator

import ast

from ..protocol_schema import OPS, ROLES
from . import Context, Finding, Module, Rule

_OP_KEY = "op"


def _is_get_op(node: ast.AST) -> bool:
    """True for ``<expr>.get("op")`` / ``<expr>.get("op", default)``."""
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and len(node.args) >= 1
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == _OP_KEY)


def _is_op_expr(node: ast.AST) -> bool:
    return (isinstance(node, ast.Name) and node.id == _OP_KEY) or _is_get_op(node)


def _str_constants(node: ast.AST) -> list[ast.Constant]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node]
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return [el for el in node.elts
                if isinstance(el, ast.Constant) and isinstance(el.value, str)]
    return []


class WireProtocol(Rule):
    code = "RP04"
    name = "wire-protocol"

    def check(self, module: Module, ctx: Context) -> Iterator[Finding]:
        bucket = ctx.bucket(self.code)
        sent = bucket.setdefault("sent", {})        # op -> (path, line)
        handled = bucket.setdefault("handled", {})  # op -> (path, line)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Dict):
                yield from self._check_frame(module, node, sent)
            elif isinstance(node, ast.Compare):
                yield from self._check_dispatch(module, node, handled)

    def _check_frame(self, module: Module, node: ast.Dict,
                     sent: dict) -> Iterator[Finding]:
        op_name = None
        literal_keys: set[str] = set()
        has_splat = False
        for key, value in zip(node.keys, node.values):
            if key is None:
                has_splat = True
                continue
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                literal_keys.add(key.value)
                if (key.value == _OP_KEY and isinstance(value, ast.Constant)
                        and isinstance(value.value, str)):
                    op_name = value.value
        if op_name is None:
            return
        spec = OPS.get(op_name)
        if spec is None:
            yield Finding(
                self.code, module.path, node.lineno, node.col_offset,
                f"frame uses undeclared op '{op_name}'; declare it in "
                f"repro/tools/protocol_schema.py first")
            return
        sent.setdefault(op_name, (module.path, node.lineno))
        if not has_splat:
            missing = sorted(set(spec.required) - literal_keys)
            if missing:
                yield Finding(
                    self.code, module.path, node.lineno, node.col_offset,
                    f"frame for op '{op_name}' is missing required "
                    f"key(s) {missing}")

    def _check_dispatch(self, module: Module, node: ast.Compare,
                        handled: dict) -> Iterator[Finding]:
        sides: list[ast.AST] = []
        if _is_op_expr(node.left):
            sides = list(node.comparators)
        elif any(_is_op_expr(comp) for comp in node.comparators):
            sides = [node.left]
        for side in sides:
            for const in _str_constants(side):
                op_name = const.value
                if op_name in OPS:
                    handled.setdefault(op_name, (module.path, node.lineno))
                else:
                    yield Finding(
                        self.code, module.path, node.lineno, node.col_offset,
                        f"handler dispatches on undeclared op '{op_name}'; "
                        f"declare it in repro/tools/protocol_schema.py")

    def finalize(self, ctx: Context) -> Iterator[Finding]:
        bucket = ctx.bucket(self.code)
        sent: dict = bucket.get("sent", {})
        handled: dict = bucket.get("handled", {})
        if not sent or not handled:
            # Partial tree (e.g. a single fixture file): the cross-check
            # needs both sides of the protocol to be meaningful.
            return
        # Which server roles does the linted tree actually contain?  An op
        # handled by exactly one role proves that role's server is present;
        # sent-op checks are then limited to present roles, and the
        # reverse (handled-but-unsent) check only runs on a whole tree —
        # a single module is never a protocol hole by itself.
        present_roles: set[str] = set()
        for op_name in handled:
            roles = OPS[op_name].roles
            if len(roles) == 1:
                present_roles.add(roles[0])
        whole_tree = set(ROLES) <= present_roles
        for op_name, (path, line) in sorted(sent.items()):
            if (op_name not in handled
                    and set(OPS[op_name].roles) & present_roles):
                yield Finding(
                    self.code, path, line, 0,
                    f"op '{op_name}' is sent but no handler in the linted "
                    f"tree dispatches on it")
        if not whole_tree:
            return
        for op_name, (path, line) in sorted(handled.items()):
            if op_name not in sent and not OPS[op_name].external:
                yield Finding(
                    self.code, path, line, 0,
                    f"op '{op_name}' is handled but never sent in the "
                    f"linted tree (mark it external in protocol_schema.py "
                    f"if out-of-tree clients drive it)")
