"""RP01 — determinism: no hidden entropy or order-dependence in results.

The repo's bit-identity guarantees (serial == remote == fleet histories,
reproducible seeds) only hold if nothing reads ambient nondeterminism.
Flagged anywhere outside a ``# lint: disable=RP01`` waiver:

* global-state RNG calls (``np.random.rand``/``seed``/...,
  ``random.random``/...) — seeded ``np.random.default_rng(seed)`` /
  ``random.Random(seed)`` instances are the sanctioned idiom;
* unseeded construction of those instances (``default_rng()`` with no
  arguments);
* wall-clock reads (``time.time``, ``datetime.now``, ...) — use
  ``time.monotonic``/``perf_counter`` for intervals;
* ``id(...)`` — CPython address reuse makes it run-dependent;
* iterating an unordered ``set`` literal/constructor in a ``for`` or
  comprehension — wrap in ``sorted(...)``.
"""

from __future__ import annotations

from typing import Iterator

import ast

from . import Context, Finding, ImportMap, Module, Rule, dotted_of

#: np.random.<name> constructors that produce *seedable instances* — allowed.
_NP_RANDOM_OK = frozenset({
    "default_rng", "Generator", "RandomState", "SeedSequence",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64", "BitGenerator",
})

#: random.<name> that are seedable-instance constructors, not global draws.
_RANDOM_OK = frozenset({"Random", "SystemRandom"})

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.ctime", "time.localtime",
    "time.gmtime", "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

_SET_MAKERS = frozenset({"set", "frozenset"})


class Determinism(Rule):
    code = "RP01"
    name = "determinism"

    def check(self, module: Module, ctx: Context) -> Iterator[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, imports, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iter(module, imports, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    yield from self._check_iter(module, imports, gen.iter)

    def _check_call(self, module: Module, imports: ImportMap,
                    node: ast.Call) -> Iterator[Finding]:
        if isinstance(node.func, ast.Name) and node.func.id == "id":
            yield self._finding(
                module, node,
                "id() is run-dependent (CPython address reuse); derive a "
                "stable key instead")
            return
        dotted = dotted_of(node.func)
        if dotted is None:
            return
        resolved = imports.resolve(dotted)
        if resolved in _WALL_CLOCK:
            yield self._finding(
                module, node,
                f"wall-clock read {resolved}(); use time.monotonic/"
                "perf_counter for intervals or pass timestamps in")
        elif resolved.startswith("numpy.random."):
            tail = resolved.rsplit(".", 1)[1]
            if tail not in _NP_RANDOM_OK:
                yield self._finding(
                    module, node,
                    f"global-state RNG call {dotted}(); use a seeded "
                    "np.random.default_rng(seed) instance")
            elif tail == "default_rng" and not node.args and not node.keywords:
                yield self._finding(
                    module, node,
                    "unseeded np.random.default_rng(); pass an explicit seed")
        elif resolved.startswith("random."):
            tail = resolved.split(".", 1)[1]
            if "." in tail:
                return  # method on random.Random instance, e.g. random.Random.x
            if tail not in _RANDOM_OK:
                yield self._finding(
                    module, node,
                    f"global-state RNG call {dotted}(); use a seeded "
                    "random.Random(seed) instance")
            elif tail == "Random" and not node.args and not node.keywords:
                yield self._finding(
                    module, node,
                    "unseeded random.Random(); pass an explicit seed")

    def _check_iter(self, module: Module, imports: ImportMap,
                    iter_node: ast.expr) -> Iterator[Finding]:
        is_set = isinstance(iter_node, (ast.Set, ast.SetComp))
        if (not is_set and isinstance(iter_node, ast.Call)
                and isinstance(iter_node.func, ast.Name)
                and iter_node.func.id in _SET_MAKERS):
            is_set = True
        if is_set:
            yield self._finding(
                module, iter_node,
                "iteration over an unordered set feeds results in "
                "nondeterministic order; wrap in sorted(...)")

    def _finding(self, module: Module, node: ast.AST,
                 message: str) -> Finding:
        return Finding(self.code, module.path, node.lineno,
                       node.col_offset, message)
