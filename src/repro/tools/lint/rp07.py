"""RP07 — no blocking operations while a *hot* lock is held.

Built on :mod:`repro.tools.flow`: a blocking operation — socket
send/recv/accept, ``subprocess``, ``Future.result()``, ``Thread.join()``,
``Executor.shutdown()``, ``Condition``/``Event`` ``wait`` on a *different*
object, or a simulator dispatch (``.evaluate``/``.evaluate_batch``) — must
not be reachable, directly or through any resolved call chain, while one of
the hot locks (``_lock``/``_cond``/``_state_lock``, see
``flow.HOT_LOCK_ATTRS``) is held.  Hot locks guard in-memory state on the
request path; blocking under one stalls every concurrent dispatch, and the
repo's own close()/stats() deadlocks came from exactly this shape.

Sanctioned patterns that are *not* flagged:

* ``self._cond.wait(...)`` while holding ``self._cond`` — the
  producer/consumer idiom (the wait releases the lock it waits on);
* blocking under a coarse serialization lock with a descriptive name
  (``_eval_lock``, ``_v1_lock``, ``_send_lock``, ``_conn_lock``) — those
  locks exist to serialize blocking work;
* sites waived with ``# lint: disable=RP07`` plus a why-comment, or whole
  functions listed in ``flow.RP07_WAIT_ALLOWLIST``.

The fix shape is always the same: swap state out under the lock, do the
blocking work after releasing it (see ``EvalEngine.close`` /
``FleetCoordinator.stats`` for worked examples).
"""

from __future__ import annotations

from typing import Iterator

from .. import flow
from . import Context, Finding, Module, Rule


class BlockingUnderLock(Rule):
    code = "RP07"
    name = "blocking-under-lock"

    def check(self, module: Module, ctx: Context) -> Iterator[Finding]:
        flow.register(ctx, module)
        return iter(())

    def finalize(self, ctx: Context) -> Iterator[Finding]:
        analysis = flow.analysis_of(ctx)
        for path, line, col, message in analysis.blocking_findings():
            yield Finding(self.code, path, line, col, message)
