"""RP05 — export hygiene: honest ``__all__`` and runpy-clean entry points.

* Every name in a module's ``__all__`` must be bound at module top level
  *or* resolvable by a module-level ``__getattr__`` (the lazy-export idiom
  ``repro.core`` uses so ``python -m repro.core.service`` does not import
  the service module twice).  A string constant inside ``__getattr__``
  counts as lazily resolvable.
* A module with an ``if __name__ == "__main__":`` block is an entry point:
  it must not import heavyweight subsystems at top level (keep startup
  cheap and side-effect free), and — cross-file — its package
  ``__init__`` must not import it eagerly (runpy would warn and run a
  second copy).
"""

from __future__ import annotations

from typing import Iterator

import ast

from . import Context, Finding, Module, Rule

#: Top-level imports an entry-point module must defer (heavy subsystems).
HEAVY_PREFIXES = ("repro.spice", "repro.circuits", "repro.experiments",
                  "repro.nn", "repro.gp", "repro.baselines", "scipy",
                  "matplotlib")


def _is_main_guard(stmt: ast.stmt) -> bool:
    if not isinstance(stmt, ast.If) or not isinstance(stmt.test, ast.Compare):
        return False
    test = stmt.test
    names = [n.id for n in ast.walk(test) if isinstance(n, ast.Name)]
    consts = [c.value for c in ast.walk(test) if isinstance(c, ast.Constant)]
    return "__name__" in names and "__main__" in consts


def _top_level_stmts(tree: ast.Module) -> Iterator[ast.stmt]:
    """Module statements, descending into top-level if/try (but not defs)."""
    stack = list(tree.body)
    while stack:
        stmt = stack.pop(0)
        yield stmt
        if isinstance(stmt, ast.If):
            stack.extend(stmt.body + stmt.orelse)
        elif isinstance(stmt, ast.Try):
            stack.extend(stmt.body + stmt.orelse + stmt.finalbody)
            for handler in stmt.handlers:
                stack.extend(handler.body)


def _resolve_import(module: Module, node: ast.stmt) -> list[tuple[str, int]]:
    """Absolute dotted module names imported by a top-level import stmt."""
    out: list[tuple[str, int]] = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            out.append((alias.name, node.lineno))
    elif isinstance(node, ast.ImportFrom):
        dotted = module.dotted_name()
        package = dotted.rsplit(".", 1)[0] if "." in dotted else dotted
        if node.level:
            base_parts = package.split(".")
            # level=1 is the module's own package; each extra level pops one.
            base_parts = base_parts[:len(base_parts) - (node.level - 1)]
            base = ".".join(p for p in base_parts if p)
        else:
            base = ""
        stem = node.module or ""
        prefix = ".".join(p for p in (base, stem) if p)
        if node.module:
            out.append((prefix, node.lineno))
        for alias in node.names:
            if alias.name != "*":
                out.append((f"{prefix}.{alias.name}" if prefix else alias.name,
                            node.lineno))
    return out


class ExportHygiene(Rule):
    code = "RP05"
    name = "export-hygiene"

    def check(self, module: Module, ctx: Context) -> Iterator[Finding]:
        bucket = ctx.bucket(self.code)
        entries = bucket.setdefault("entry_points", set())
        imports = bucket.setdefault("imports", {})  # dotted -> [(imported, path, line)]

        bound: set[str] = set()
        lazy: set[str] = set()
        all_node: ast.expr | None = None
        all_line = 0
        is_entry = False
        top_imports: list[tuple[str, int]] = []

        for stmt in _top_level_stmts(module.tree):
            if _is_main_guard(stmt):
                is_entry = True
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                top_imports.extend(_resolve_import(module, stmt))
                for alias in stmt.names:
                    if alias.name != "*":
                        local = alias.asname or alias.name.split(".")[0]
                        bound.add(local)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                bound.add(stmt.name)
                if stmt.name == "__getattr__":
                    lazy.update(
                        c.value for c in ast.walk(stmt)
                        if isinstance(c, ast.Constant)
                        and isinstance(c.value, str))
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
                        if target.id == "__all__":
                            all_node, all_line = stmt.value, stmt.lineno
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    bound.add(stmt.target.id)
                    if stmt.target.id == "__all__":
                        all_node, all_line = stmt.value, stmt.lineno

        dotted = module.dotted_name()
        if is_entry:
            entries.add(dotted)
        imports[dotted] = [(name, module.path, line)
                           for name, line in top_imports]

        if all_node is not None and isinstance(all_node, (ast.List, ast.Tuple)):
            for el in all_node.elts:
                if not (isinstance(el, ast.Constant)
                        and isinstance(el.value, str)):
                    continue
                if el.value not in bound and el.value not in lazy:
                    yield Finding(
                        self.code, module.path, all_line, 0,
                        f"__all__ exports '{el.value}' but the module "
                        f"neither binds it nor resolves it in __getattr__")

        if is_entry:
            for name, line in top_imports:
                if any(name == p or name.startswith(p + ".")
                       for p in HEAVY_PREFIXES):
                    yield Finding(
                        self.code, module.path, line, 0,
                        f"entry-point module imports '{name}' at top level; "
                        f"defer heavy imports into main()/handlers to keep "
                        f"python -m startup runpy-clean")

    def finalize(self, ctx: Context) -> Iterator[Finding]:
        bucket = ctx.bucket(self.code)
        entries: set[str] = bucket.get("entry_points", set())
        imports: dict = bucket.get("imports", {})
        for entry in sorted(entries):
            if "." not in entry:
                continue
            package = entry.rsplit(".", 1)[0]
            for name, path, line in imports.get(package, ()):
                if name == entry or name.startswith(entry + "."):
                    yield Finding(
                        self.code, path, line, 0,
                        f"package __init__ eagerly imports entry-point "
                        f"module '{entry}'; python -m would run a second "
                        f"copy — resolve it lazily via __getattr__")
