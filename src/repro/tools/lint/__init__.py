"""Repo-contract linter: AST-based static analysis for ``src/``.

Eight checkers enforce the contracts that this repo's correctness rests on
(see README "Static analysis & contracts"):

========  ============================================================
RP01      determinism: no global RNG state, wall-clock reads, ``id()``
          or unordered-set iteration feeding results
RP02      lock discipline: ``# guarded by: <lock>`` attributes accessed
          only under ``with self.<lock>:`` or ``# holds: <lock>`` methods
RP03      stamping-plan device contract (``spice/devices/base.py``)
RP04      wire-protocol frame schema (``repro/tools/protocol_schema.py``)
RP05      export hygiene: ``__all__`` consistency + runpy-clean entry
          points
RP06      lock-order: the interprocedural lock acquisition graph must be
          acyclic (``repro.tools.flow``)
RP07      blocking-under-lock: no socket/subprocess/join/result/wait or
          simulator dispatch reachable while a hot lock is held
RP08      RNG seed-taint: ``default_rng(x)``/``Random(x)`` arguments must
          be derived from a seed parameter/field/salt (dataflow)
========  ============================================================

RP01-RP05 are lexical, per-module; RP06-RP08 are interprocedural finalize
passes over the whole linted tree, built on :mod:`repro.tools.flow`.

Run it with ``python -m repro.tools.lint [paths...]``; exit code 0 means
clean, 1 means findings, 2 means usage error.  Waive a single line with
``# lint: disable=RP0x`` (inline, or on a comment-only line immediately
above).  ``--baseline FILE`` fails only on findings not in a recorded
baseline (write one with ``--write-baseline``); ``--format sarif`` emits
SARIF 2.1.0 for code-scanning UIs.  Only the stdlib is used — the linter
runs anywhere the repo does.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import re
import sys
import tokenize
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Iterator

PARSE_ERROR = "RP00"

_WAIVER_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\s]+)")
_CODE_RE = re.compile(r"RP\d+")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class Module:
    """A parsed source file plus its comment/waiver side tables."""

    def __init__(self, path: str, text: str, tree: ast.Module) -> None:
        self.path = path
        self.text = text
        self.tree = tree
        self.lines = text.splitlines()
        self.comments: dict[int, str] = {}
        self._waived: dict[int, set[str]] = {}
        self._scan_comments()

    def _scan_comments(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.text).readline)
            for tok in tokens:
                if tok.type == tokenize.COMMENT:
                    self.comments[tok.start[0]] = tok.string
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            return
        for lineno, comment in self.comments.items():
            match = _WAIVER_RE.search(comment)
            if not match:
                continue
            codes = set(_CODE_RE.findall(match.group(1)))
            if not codes:
                continue
            self._waived.setdefault(lineno, set()).update(codes)
            # A comment-only line waives the next code line too.
            src_line = (self.lines[lineno - 1]
                        if lineno - 1 < len(self.lines) else "")
            if src_line.lstrip().startswith("#"):
                self._waived.setdefault(lineno + 1, set()).update(codes)

    def comment_on(self, lineno: int) -> str:
        """The comment on a physical line ('' when there is none)."""
        return self.comments.get(lineno, "")

    def is_comment_only(self, lineno: int) -> bool:
        if not 1 <= lineno <= len(self.lines):
            return False
        return self.lines[lineno - 1].lstrip().startswith("#")

    def waived_codes(self, lineno: int) -> set[str]:
        return self._waived.get(lineno, set())

    def dotted_name(self) -> str:
        """Best-effort dotted module name, derived from the file path.

        ``src/repro/core/service.py`` -> ``repro.core.service``; a path
        with no recognizable package root returns its stem.
        """
        parts = list(Path(self.path).with_suffix("").parts)
        if "src" in parts:
            parts = parts[parts.index("src") + 1:]
        elif "repro" in parts:
            parts = parts[parts.index("repro"):]
        else:
            parts = parts[-1:]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)


class ImportMap:
    """Resolves local names to canonical dotted paths via the import table.

    ``import numpy as np`` maps ``np`` -> ``numpy``; ``from datetime import
    datetime`` maps ``datetime`` -> ``datetime.datetime``; unresolved roots
    pass through unchanged.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, dotted: str) -> str:
        root, _, rest = dotted.partition(".")
        base = self.aliases.get(root, root)
        return f"{base}.{rest}" if rest else base


def dotted_of(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Context:
    """Per-run shared state so rules can do cross-file checks."""

    def __init__(self) -> None:
        self.store: dict[str, object] = {}

    def bucket(self, rule_code: str) -> dict:
        return self.store.setdefault(rule_code, {})  # type: ignore[return-value]


class Rule:
    """Base class for a checker; subclasses set ``code``/``name``."""

    code = "RP99"
    name = "unnamed"

    def check(self, module: Module, ctx: Context) -> Iterator[Finding]:
        raise NotImplementedError

    def finalize(self, ctx: Context) -> Iterator[Finding]:
        return iter(())


def all_rules() -> list[Rule]:
    from . import rp01, rp02, rp03, rp04, rp05, rp06, rp07, rp08

    return [rp01.Determinism(), rp02.LockDiscipline(), rp03.DeviceContract(),
            rp04.WireProtocol(), rp05.ExportHygiene(), rp06.LockOrder(),
            rp07.BlockingUnderLock(), rp08.RngTaint()]


@dataclass
class LintResult:
    findings: list[Finding]
    n_files: int
    n_waived: int

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def _iter_py_files(paths: Iterable[str]) -> list[str]:
    out: list[str] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(str(f) for f in sorted(p.rglob("*.py")))
        else:
            out.append(str(p))
    return out


def _selected(code: str, select: set[str] | None, ignore: set[str]) -> bool:
    if code == PARSE_ERROR:
        return True
    if select is not None and code not in select:
        return False
    return code not in ignore


def lint_modules(modules: list[Module], select: set[str] | None = None,
                 ignore: set[str] | None = None,
                 rules: list[Rule] | None = None) -> LintResult:
    """Run the (selected) rules over already-parsed modules."""
    ignore = ignore or set()
    rules = rules if rules is not None else all_rules()
    active = [r for r in rules if _selected(r.code, select, ignore)]
    ctx = Context()
    raw: list[Finding] = []
    mod_by_path: dict[str, Module] = {}
    for module in modules:
        mod_by_path[module.path] = module
        for rule in active:
            raw.extend(rule.check(module, ctx))
    for rule in active:
        raw.extend(rule.finalize(ctx))

    findings: list[Finding] = []
    n_waived = 0
    for f in raw:
        mod = mod_by_path.get(f.path)
        if mod is not None and f.rule in mod.waived_codes(f.line):
            n_waived += 1
            continue
        findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintResult(findings, len(modules), n_waived)


def parse_module(path: str, text: str | None = None) -> Module | Finding:
    """Parse one file; a syntax error comes back as an RP00 finding."""
    if text is None:
        text = Path(path).read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError as exc:
        return Finding(PARSE_ERROR, path, exc.lineno or 1, exc.offset or 0,
                       f"syntax error: {exc.msg}")
    return Module(path, text, tree)


def lint_paths(paths: Iterable[str], select: set[str] | None = None,
               ignore: set[str] | None = None) -> LintResult:
    modules: list[Module] = []
    errors: list[Finding] = []
    for path in _iter_py_files(paths):
        parsed = parse_module(path)
        if isinstance(parsed, Finding):
            errors.append(parsed)
        else:
            modules.append(parsed)
    result = lint_modules(modules, select=select, ignore=ignore)
    result.findings = sorted(
        errors + result.findings,
        key=lambda f: (f.path, f.line, f.col, f.rule))
    result.n_files += len(errors)
    return result


def lint_text(text: str, path: str = "<memory>",
              select: set[str] | None = None,
              ignore: set[str] | None = None) -> LintResult:
    """Lint a source string — the unit-test entry point."""
    parsed = parse_module(path, text)
    if isinstance(parsed, Finding):
        return LintResult([parsed], 1, 0)
    return lint_modules([parsed], select=select, ignore=ignore)


def _parse_codes(spec: str | None) -> set[str] | None:
    if spec is None:
        return None
    return {tok.strip().upper() for tok in spec.split(",") if tok.strip()}


def _baseline_key(f: Finding) -> str:
    # Line numbers drift with unrelated edits, so the baseline keys on
    # (rule, path, message) with multiset counts instead.
    return f"{f.rule}|{f.path}|{f.message}"


def write_baseline(path: str, result: LintResult) -> None:
    """Record the current findings so later runs fail only on new ones."""
    counts: dict[str, int] = {}
    for f in result.findings:
        key = _baseline_key(f)
        counts[key] = counts.get(key, 0) + 1
    payload = {"version": 1, "entries": counts}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")


def apply_baseline(path: str, result: LintResult) -> int:
    """Drop findings recorded in the baseline file; returns how many."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    budget = dict(data.get("entries", {}))
    kept: list[Finding] = []
    dropped = 0
    for f in result.findings:
        key = _baseline_key(f)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            dropped += 1
        else:
            kept.append(f)
    result.findings = kept
    return dropped


def sarif_payload(result: LintResult) -> dict:
    """Minimal SARIF 2.1.0 document for code-scanning UIs."""
    rule_ids = sorted({f.rule for f in result.findings})
    return {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                    "master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-contract-lint",
                "informationUri": "https://example.invalid/repro.tools.lint",
                "rules": [{"id": rid} for rid in rule_ids],
            }},
            "results": [{
                "ruleId": f.rule,
                "level": "error",
                "message": {"text": f.message},
                "locations": [{"physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {"startLine": f.line,
                               "startColumn": f.col + 1},
                }}],
            } for f in result.findings],
        }],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.lint",
        description="Repo-contract linter (rules RP01-RP08).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run exclusively")
    parser.add_argument("--ignore", metavar="CODES", default="",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text")
    parser.add_argument("--baseline", metavar="FILE",
                        help="suppress findings recorded in FILE; fail only "
                             "on new ones")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="record the current findings to FILE and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}")
        return 0

    result = lint_paths(args.paths, select=_parse_codes(args.select),
                        ignore=_parse_codes(args.ignore) or set())

    if args.write_baseline:
        write_baseline(args.write_baseline, result)
        print(f"baseline: {len(result.findings)} finding(s) recorded to "
              f"{args.write_baseline}")
        return 0
    n_baselined = 0
    if args.baseline:
        if not Path(args.baseline).exists():
            print(f"baseline file not found: {args.baseline}", file=sys.stderr)
            return 2
        n_baselined = apply_baseline(args.baseline, result)

    if args.format == "json":
        payload = {
            "version": 1,
            "files": result.n_files,
            "waived": result.n_waived,
            "baselined": n_baselined,
            "findings": [asdict(f) for f in result.findings],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.format == "sarif":
        print(json.dumps(sarif_payload(result), indent=2, sort_keys=True))
    else:
        for finding in result.findings:
            print(finding.render())
        suffix = f"; {n_baselined} baselined" if n_baselined else ""
        summary = (f"{len(result.findings)} finding(s) in {result.n_files} "
                   f"file(s); {result.n_waived} waived{suffix}")
        print(summary if result.findings or result.n_waived or n_baselined
              else f"clean: {result.n_files} file(s), 0 findings")
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
