"""RP02 — lock discipline via ``# guarded by:`` annotations.

Convention (used throughout ``repro.core``): an attribute assignment in
``__init__`` carries ``# guarded by: <lockname>`` naming the ``self.<lock>``
(Lock/RLock/Condition) that protects it.  The checker then flags every
read or write of ``self.<attr>`` in any *other* method of the class that
is not

* lexically inside ``with self.<lockname>:`` (Condition objects count), or
* in a method annotated ``# holds: <lockname>`` on (or directly above) its
  ``def`` line — the called-with-lock-held convention, or
* explicitly waived with ``# lint: disable=RP02`` plus a why-comment.

``__init__`` itself is exempt (object construction happens-before any
concurrent access).  A function *defined* inside a ``with`` block does not
inherit the lock — closures run later, after the lock is released.

Known limitation: only direct ``self.<attr>`` accesses are checked; an
alias (``cache = self._cache``) escapes, as does access through another
object (``other._cache``).  Keep guarded state access un-aliased.
"""

from __future__ import annotations

import re
from typing import Iterator

import ast

from . import Context, Finding, Module, Rule

_GUARD_RE = re.compile(r"#.*?guarded by:\s*([A-Za-z_]\w*)")
_HOLDS_RE = re.compile(r"#.*?holds:\s*([A-Za-z_]\w*(?:\s*,\s*[A-Za-z_]\w*)*)")


def _guard_on(module: Module, lineno: int) -> str | None:
    """Lock name annotated on this line, or on a comment-only line above."""
    match = _GUARD_RE.search(module.comment_on(lineno))
    if match:
        return match.group(1)
    if module.is_comment_only(lineno - 1):
        match = _GUARD_RE.search(module.comment_on(lineno - 1))
        if match:
            return match.group(1)
    return None


def _holds_on(module: Module, fn: ast.FunctionDef) -> set[str]:
    """Locks a method declares it is called with (``# holds: ...``).

    The annotation may sit on the line above ``def`` or on any signature
    line (multi-line signatures put it on the closing-paren line).
    """
    held: set[str] = set()
    body_start = fn.body[0].lineno if fn.body else fn.lineno + 1
    for lineno in range(fn.lineno - 1, body_start):
        match = _HOLDS_RE.search(module.comment_on(lineno))
        if match:
            held.update(name.strip() for name in match.group(1).split(","))
    return held


def _self_attr(node: ast.AST) -> str | None:
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name) and node.value.id == "self"):
        return node.attr
    return None


class LockDiscipline(Rule):
    code = "RP02"
    name = "lock-discipline"

    def check(self, module: Module, ctx: Context) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(self, module: Module,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        guarded = self._collect_guards(module, cls)
        if not guarded:
            return
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name == "__init__":
                continue
            holds = _holds_on(module, stmt)
            yield from self._walk_fn(module, stmt, guarded, holds)

    def _collect_guards(self, module: Module,
                        cls: ast.ClassDef) -> dict[str, str]:
        """attr -> lock name, from annotations on ``self.x = ...`` lines."""
        guarded: dict[str, str] = {}
        for fn in cls.body:
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(fn):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = [node.target]
                for target in targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    lock = _guard_on(module, node.lineno)
                    if lock is not None:
                        guarded[attr] = lock
        return guarded

    def _walk_fn(self, module: Module, fn: ast.AST, guarded: dict[str, str],
                 holds: set[str]) -> Iterator[Finding]:
        """Visit a function body tracking which locks are lexically held."""

        def visit(node: ast.AST, held: frozenset[str]) -> Iterator[Finding]:
            if isinstance(node, ast.With):
                acquired = set(held)
                for item in node.items:
                    lock_attr = _self_attr(item.context_expr)
                    if lock_attr is not None:
                        acquired.add(lock_attr)
                    # The with-header expression itself runs unlocked.
                    yield from visit(item.context_expr, held)
                    if item.optional_vars is not None:
                        yield from visit(item.optional_vars, held)
                inner = frozenset(acquired)
                for stmt in node.body:
                    yield from visit(stmt, inner)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested def runs later: it holds nothing unless annotated.
                nested_holds = _holds_on(module, node)
                for child in node.body:
                    yield from visit(child, frozenset(nested_holds))
                return
            if isinstance(node, ast.Lambda):
                yield from visit(node.body, frozenset())
                return
            attr = _self_attr(node)
            if attr is not None and attr in guarded:
                lock = guarded[attr]
                if lock not in held:
                    yield Finding(
                        self.code, module.path, node.lineno, node.col_offset,
                        f"access to self.{attr} (guarded by {lock}) outside "
                        f"'with self.{lock}:'; annotate the method with "
                        f"'# holds: {lock}' if callers lock")
            for child in ast.iter_child_nodes(node):
                yield from visit(child, held)

        assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        for stmt in fn.body:
            yield from visit(stmt, frozenset(holds))
