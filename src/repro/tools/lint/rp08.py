"""RP08 — RNG seed provenance: dataflow upgrade of RP01's lexical check.

RP01 flags an *unseeded* ``default_rng()`` / ``Random()``.  RP08 checks the
seeded ones: the argument must be **reachable from a seed source** —
a parameter or variable whose name mentions seed/salt/entropy, an attribute
or checkpoint field of such a name (``self.seed``, ``ckpt["seed"]``), a
literal constant (a hard-coded seed is deterministic), or any expression
derived from one (hashes, ``int.from_bytes``, f-strings, arithmetic,
helper-function returns) — tracked through assignments, attributes, and
resolved call boundaries by :mod:`repro.tools.flow`.

What it catches that RP01 cannot: ``default_rng(worker_id)``,
``Random(os.getpid())``, ``default_rng(counter)`` — seeded *syntactically*
but from a value with no provenance back to the run's seed, which silently
breaks the bit-identical-histories guarantee across backends.
"""

from __future__ import annotations

from typing import Iterator

from .. import flow
from . import Context, Finding, Module, Rule


class RngTaint(Rule):
    code = "RP08"
    name = "rng-seed-taint"

    def check(self, module: Module, ctx: Context) -> Iterator[Finding]:
        flow.register(ctx, module)
        return iter(())

    def finalize(self, ctx: Context) -> Iterator[Finding]:
        analysis = flow.analysis_of(ctx)
        for path, line, col, message in analysis.rng_findings():
            yield Finding(self.code, path, line, col, message)
