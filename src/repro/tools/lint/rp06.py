"""RP06 — lock-order: the global acquisition graph must be acyclic.

Built on :mod:`repro.tools.flow`: every ``with self.<lock>:`` nested inside
another (directly, or through any resolved call chain) contributes an edge
``outer -> inner`` to a whole-tree graph whose nodes are class-qualified
lock attributes (``EvalEngine._state_lock``).  A cycle means two threads
can acquire the same pair of locks in opposite orders — the classic
deadlock — so each cycle is reported once, with the witness site of every
edge on it, at the first edge's location.

Emit the graph itself for review with
``python -m repro.tools.flow src --format dot|json`` (CI uploads it as an
artifact); the runtime sanitizer (``repro.tools.sanitize``) records the
*observed* acquisition order under ``REPRO_SANITIZE=1`` and checks it is a
subset of this static graph, so each side catches the other's blind spots.
"""

from __future__ import annotations

from typing import Iterator

from .. import flow
from . import Context, Finding, Module, Rule


class LockOrder(Rule):
    code = "RP06"
    name = "lock-order"

    def check(self, module: Module, ctx: Context) -> Iterator[Finding]:
        flow.register(ctx, module)
        return iter(())

    def finalize(self, ctx: Context) -> Iterator[Finding]:
        analysis = flow.analysis_of(ctx)
        graph = analysis.lock_graph()
        for cycle in graph.cycles():
            pairs = list(zip(cycle, cycle[1:]))
            witnesses = [graph.edges[p] for p in pairs if p in graph.edges]
            if not witnesses:  # pragma: no cover — cycles come from edges
                continue
            steps = "; ".join(
                f"{src}->{dst} at {w.path}:{w.line} ({w.via} in {w.func})"
                for (src, dst), w in zip(pairs, witnesses))
            first = witnesses[0]
            yield Finding(
                self.code, first.path, first.line, 0,
                f"lock-order cycle {' -> '.join(cycle)}; acquire these locks "
                f"in one global order or collapse them [{steps}]")
