"""Runtime lock sanitizer: the dynamic half of the RP06/RP07 story.

Enable with ``REPRO_SANITIZE=1`` (the tests' ``conftest.py`` calls
:func:`install` and cross-checks at session end).  Static analysis
(:mod:`repro.tools.flow`) can only see locks the AST resolver reaches;
runtime can only see orders that actually executed.  Diffing the two makes
each side catch the other's blind spots:

* every lock of the classes in
  :data:`repro.tools.protocol_schema.SANITIZED_CLASSES` is wrapped in a
  recording proxy; each acquisition while other locks are held records an
  *observed* lock-order edge ``held -> acquired`` (re-entrant RLock
  acquisitions are not edges);
* every attribute annotated ``# guarded by: <lock>`` (parsed from source
  with the same machinery RP02 uses) becomes a checking descriptor: an
  access from repo code without the guard lock held — and not on an
  ``# lint: disable=RP02`` waived line — records a violation;
* :func:`check_against_static` asserts the observed edge set is a subset
  of the static lock-order graph, so an order the linter failed to model
  fails the sanitizer CI job instead of shipping silently.

The wrappers preserve mutual exclusion (they delegate to the *same*
underlying lock object) and add only a thread-local list walk per
acquisition, so behaviour — including the repo's bit-identical-histories
guarantee — is unchanged; only timing shifts slightly.
"""

from __future__ import annotations

import importlib
import os
import sys
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from .protocol_schema import SANITIZED_CLASSES

_MAX_VIOLATIONS = 200


@dataclass(frozen=True)
class Violation:
    """One guarded-attribute access without its lock held."""

    cls: str
    attr: str
    lock: str
    path: str
    line: int

    def render(self) -> str:
        return (f"{self.path}:{self.line}: {self.cls}.{self.attr} accessed "
                f"without holding {self.lock}")


class _State:
    def __init__(self) -> None:
        self.mutex = threading.Lock()
        self.edges: dict[tuple[str, str], str] = {}   # (src, dst) -> site
        self.violations: list[Violation] = []
        self.installed = False
        self.waived: set[tuple[str, int]] = set()     # (abspath, lineno)
        # (abspath, def lineno) -> lock attrs that function declares via
        # ``# holds:`` — its *callers* own the acquisition.
        self.holds: dict[tuple[str, int], frozenset[str]] = {}


_STATE = _State()
_tls = threading.local()


def _stack() -> list[tuple[int, str]]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


class SanitizedLock:
    """Order-recording proxy around one Lock/RLock/Condition instance.

    Delegates to the *same* inner lock, so wrapping mid-flight (other
    threads still holding a reference) preserves mutual exclusion.
    """

    __slots__ = ("_inner", "name")

    def __init__(self, inner: Any, name: str) -> None:
        self._inner = inner
        self.name = name

    # -- recording helpers -------------------------------------------------
    def _push(self) -> None:
        stack = _stack()
        # Shadow-stack entries key on the inner lock's identity within this
        # process only — never persisted or compared across runs.
        inner_id = id(self._inner)  # lint: disable=RP01
        if not any(eid == inner_id for eid, _ in stack):
            held: list[str] = []
            seen: set[str] = set()
            for _, name in stack:
                if name != self.name and name not in seen:
                    held.append(name)
                    seen.add(name)
            if held:
                frame = sys._getframe(2)
                site = f"{frame.f_code.co_filename}:{frame.f_lineno}"
                with _STATE.mutex:
                    for src in held:
                        _STATE.edges.setdefault((src, self.name), site)
        stack.append((inner_id, self.name))

    def _pop(self) -> bool:
        stack = _stack()
        inner_id = id(self._inner)  # lint: disable=RP01
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][0] == inner_id:
                del stack[i]
                return True
        return False

    def held_by_current_thread(self) -> bool:
        inner_id = id(self._inner)  # lint: disable=RP01
        return any(eid == inner_id for eid, _ in _stack())

    # -- lock surface ------------------------------------------------------
    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        got = self._inner.acquire(*args, **kwargs)
        if got:
            self._push()
        return bool(got)

    def release(self) -> None:
        self._pop()
        self._inner.release()

    def __enter__(self) -> "SanitizedLock":
        self._inner.__enter__()
        self._push()
        return self

    def __exit__(self, *exc: Any) -> Any:
        self._pop()
        return self._inner.__exit__(*exc)

    # -- Condition surface -------------------------------------------------
    def wait(self, timeout: float | None = None) -> bool:
        # wait() releases the lock while blocked and re-acquires on return;
        # mirror that in the thread-local stack so guarded accesses by other
        # code paths of this thread are judged against the truth.  Re-push
        # only what was popped: a thread that entered the ``with`` through
        # the raw condition (pre-wrap startup race) has no shadow entry,
        # and pushing one here would leak it past the raw ``__exit__``.
        popped = self._pop()
        try:
            return bool(self._inner.wait(timeout))
        finally:
            if popped:
                self._push()

    def wait_for(self, predicate: Callable[[], Any],
                 timeout: float | None = None) -> Any:
        # Kept held on the shadow stack: the predicate runs with the lock
        # re-acquired, and this thread is blocked in between anyway.
        return self._inner.wait_for(predicate, timeout)

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()

    def __getattr__(self, item: str) -> Any:
        return getattr(self._inner, item)

    def __repr__(self) -> str:
        return f"<SanitizedLock {self.name} of {self._inner!r}>"


def _in_repo(path: str) -> bool:
    norm = path.replace(os.sep, "/")
    return "/repro/" in norm and "/tools/lint" not in norm


def _record_violation(cls_name: str, attr: str, lock_attr: str) -> None:
    # _record_violation <- _check_guard <- descriptor <- access site
    frame = sys._getframe(3)
    path = frame.f_code.co_filename
    if not _in_repo(path):
        return  # only repo-code accesses count; tests poke state on purpose
    lineno = frame.f_lineno
    if (os.path.abspath(path), lineno) in _STATE.waived:
        return
    # Walk outward to the repo entry frame of this call chain.  If it is a
    # ``# holds: <lock>`` method invoked directly from outside the tree
    # (tests exercising internals), the external caller assumed the
    # contract — the same exemption the static RP02 check grants.
    entry = frame
    walker = frame.f_back
    while walker is not None and _in_repo(walker.f_code.co_filename):
        entry = walker
        walker = walker.f_back
    code = entry.f_code
    declared = _STATE.holds.get(
        (os.path.abspath(code.co_filename), code.co_firstlineno))
    if walker is not None and declared is not None and lock_attr in declared:
        return
    with _STATE.mutex:
        if len(_STATE.violations) < _MAX_VIOLATIONS:
            _STATE.violations.append(Violation(
                cls_name, attr, lock_attr, path, lineno))


class _GuardedDescriptor:
    """Data descriptor enforcing ``# guarded by:`` at runtime.

    The value lives in the instance ``__dict__`` under the same name (a
    data descriptor takes precedence on lookup); checks only start once
    the wrapped ``__init__`` has marked the instance ready — construction
    happens-before any concurrent access, same exemption RP02 grants.
    """

    __slots__ = ("attr", "lock_attr", "cls_name")

    def __init__(self, attr: str, lock_attr: str, cls_name: str) -> None:
        self.attr = attr
        self.lock_attr = lock_attr
        self.cls_name = cls_name

    def _check_guard(self, obj: Any) -> None:
        d = obj.__dict__
        if not d.get("_repro_sanitize_ready"):
            return
        lock = d.get(self.lock_attr)
        if not isinstance(lock, SanitizedLock) \
                or lock.held_by_current_thread():
            return
        # Shadow stack says "not held" — double-check against the inner
        # lock before reporting: a thread that acquired the raw object
        # (pre-wrap startup race) holds the lock without a shadow entry.
        # Erring towards "held when anyone holds it" trades a sliver of
        # detection for zero false positives.
        inner = lock._inner
        owned = getattr(inner, "_is_owned", None)
        if owned is not None:
            if owned():
                return
        else:
            locked = getattr(inner, "locked", None)
            if locked is not None and locked():
                return
        _record_violation(self.cls_name, self.attr, self.lock_attr)

    def __get__(self, obj: Any, objtype: type | None = None) -> Any:
        if obj is None:
            return self
        try:
            value = obj.__dict__[self.attr]
        except KeyError:
            raise AttributeError(self.attr) from None
        self._check_guard(obj)
        return value

    def __set__(self, obj: Any, value: Any) -> None:
        self._check_guard(obj)
        obj.__dict__[self.attr] = value

    def __delete__(self, obj: Any) -> None:
        self._check_guard(obj)
        obj.__dict__.pop(self.attr, None)


def _collect_annotations(module: Any) -> tuple[dict[str, dict[str, str]],
                                               set[int]]:
    """(class -> attr -> lock) guard table + RP02-waived line numbers.

    Also registers every ``# holds:`` function of the module in
    ``_STATE.holds`` for the entry-contract exemption above.
    """
    from .flow import FlowAnalysis
    from .lint import Module, parse_module

    path = getattr(module, "__file__", None)
    if path is None:  # pragma: no cover — SANITIZED_CLASSES are file-backed
        return {}, set()
    parsed = parse_module(path)
    if not isinstance(parsed, Module):  # pragma: no cover
        return {}, set()
    analysis = FlowAnalysis([parsed])
    guards = {
        name: dict(infos[0].guarded)
        for name, infos in analysis.classes.items() if infos
    }
    abspath = os.path.abspath(path)
    for fn in analysis.functions.values():
        if fn.entry_holds:
            lines = {fn.node.lineno}
            lines.update(d.lineno for d in fn.node.decorator_list)
            held = frozenset(h.rpartition(".")[2] for h in fn.entry_holds)
            for line in lines:
                _STATE.holds[(abspath, line)] = held
    waived = {line for line, codes in parsed._waived.items()
              if "RP02" in codes or "RP07" in codes}
    return guards, waived


def _wrap_class(cls: type, lock_attrs: tuple[str, ...],
                guarded: dict[str, str]) -> None:
    if getattr(cls, "_repro_sanitize_wrapped", False):
        return
    orig_init = cls.__init__

    def init(self: Any, *args: Any, **kwargs: Any) -> None:
        orig_init(self, *args, **kwargs)
        for attr in lock_attrs:
            inner = getattr(self, attr, None)
            if inner is not None and not isinstance(inner, SanitizedLock):
                setattr(self, attr,
                        SanitizedLock(inner, f"{cls.__name__}.{attr}"))
        if hasattr(self, "__dict__"):
            self.__dict__["_repro_sanitize_ready"] = True

    init.__name__ = orig_init.__name__
    init.__qualname__ = getattr(orig_init, "__qualname__", orig_init.__name__)
    init.__doc__ = orig_init.__doc__
    cls.__init__ = init  # type: ignore[method-assign]
    cls._repro_sanitize_wrapped = True  # type: ignore[attr-defined]

    if "__slots__" in vars(cls):
        return  # no instance __dict__ to back a checking descriptor
    for attr, lock_attr in guarded.items():
        if attr in lock_attrs or attr.startswith("__"):
            continue
        setattr(cls, attr, _GuardedDescriptor(attr, lock_attr, cls.__name__))


def install() -> None:
    """Instrument every class in ``SANITIZED_CLASSES`` (idempotent)."""
    if _STATE.installed:
        return
    _STATE.installed = True
    for module_name, classes in SANITIZED_CLASSES.items():
        module = importlib.import_module(module_name)
        guards, waived = _collect_annotations(module)
        path = os.path.abspath(module.__file__ or "")
        _STATE.waived.update((path, line) for line in waived)
        for cls_name, lock_attrs in classes.items():
            cls = getattr(module, cls_name)
            _wrap_class(cls, lock_attrs, guards.get(cls_name, {}))


def installed() -> bool:
    return _STATE.installed


def observed_edges() -> dict[tuple[str, str], str]:
    """Observed lock-order edges ``(held, acquired) -> first witness site``."""
    with _STATE.mutex:
        return dict(_STATE.edges)


def violations() -> list[Violation]:
    with _STATE.mutex:
        return list(_STATE.violations)


def drain_violations() -> list[Violation]:
    """Return and clear the recorded violations (test isolation)."""
    with _STATE.mutex:
        out = list(_STATE.violations)
        _STATE.violations.clear()
        return out


def probe(obj: Any, attr: str) -> Any:
    """Deliberately read a guarded attribute from repo code, lock-free.

    Exists for the sanitizer's own smoke test: the access happens *here*,
    inside the ``repro`` tree, so the violation filter keeps it — a test
    file reading the attribute directly would be filtered out as test
    scaffolding.
    """
    return getattr(obj, attr)


def check_against_static(paths: list[str] | None = None) -> list[str]:
    """Every observed edge must appear in the static lock-order graph.

    Returns human-readable problem strings (empty list = consistent).
    """
    from .flow import analyze_paths

    if paths is None:
        import repro
        paths = [str(Path(repro.__file__).parent)]
    static = set(analyze_paths(paths).lock_graph().edges)
    problems = []
    for (src, dst), site in sorted(observed_edges().items()):
        if (src, dst) not in static:
            problems.append(
                f"observed lock-order edge {src} -> {dst} (first at {site}) "
                "is missing from the static graph — teach repro.tools.flow "
                "to resolve that call chain, or the RP06 check is blind here")
    return problems


def report() -> dict[str, Any]:
    """Summary dict: observed edges, violations, install state."""
    return {
        "installed": _STATE.installed,
        "edges": {f"{s} -> {d}": site
                  for (s, d), site in sorted(observed_edges().items())},
        "violations": [v.render() for v in violations()],
    }
