"""Uniform random search — the sanity-check floor for every comparison."""

from __future__ import annotations

import numpy as np

from ..core.history import Optimizer

__all__ = ["RandomSearch"]


class RandomSearch(Optimizer):
    """Sample the design space uniformly until the budget is exhausted.

    Stateless under ask/tell: proposals never depend on told results, so
    random search pipelines at any depth with bit-identical histories.
    """

    name = "Random"

    def _ask(self, k: int | None) -> np.ndarray:
        count = 1 if k is None else k
        # One draw per design (not one (k, d) draw) keeps the RNG stream
        # identical to the historic one-query loop for any batch shape.
        return np.vstack([self.problem.space.sample(self.rng, 1)
                          for _ in range(count)])
