"""Uniform random search — the sanity-check floor for every comparison."""

from __future__ import annotations

from ..core.history import Optimizer

__all__ = ["RandomSearch"]


class RandomSearch(Optimizer):
    """Sample the design space uniformly until the budget is exhausted."""

    name = "Random"

    def _run(self) -> None:
        while True:
            x = self.problem.space.sample(self.rng, 1)[0]
            self.evaluate(x)
