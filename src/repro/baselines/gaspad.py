"""GASPAD: GP-assisted evolutionary optimization (Liu et al., TCAD 2014).

The surrogate-assisted loop: keep an elite population, breed a full DE
child generation each iteration, *prescreen* the children with a GP's
lower confidence bound, and spend the one real simulation per iteration on
the most promising child.  Following the original's penalty-based ranking,
our GP models the scalar FoM (objective + clipped weighted violations) —
documented as a simplification in DESIGN.md; it preserves GASPAD's
characteristic slow-but-steady convergence at one simulation per
generation.
"""

from __future__ import annotations

import numpy as np

from ..core.history import Optimizer
from ..gp import GaussianProcess, lower_confidence_bound

__all__ = ["GASPAD"]


class GASPAD(Optimizer):
    """Surrogate (GP) assisted differential evolution."""

    name = "GASPAD"

    def __init__(self, problem, budget: int, seed: int = 0, *,
                 n_init: int = 20, pop_size: int | None = None,
                 f_weight: float = 0.6, crossover: float = 0.9,
                 lcb_beta: float = 2.0, refit_every: int = 1,
                 gp_restarts: int = 1, max_train: int = 200,
                 stop_when_feasible: bool = False, engine=None):
        super().__init__(problem, budget, seed, stop_when_feasible=stop_when_feasible,
                         engine=engine)
        if pop_size is None:
            pop_size = min(40, max(10, 4 * problem.dim))
        self.n_init = int(n_init)
        self.pop_size = int(pop_size)
        self.f_weight = float(f_weight)
        self.crossover = float(crossover)
        self.lcb_beta = float(lcb_beta)
        self.refit_every = max(1, int(refit_every))
        self.gp_restarts = int(gp_restarts)
        self.max_train = int(max_train)
        self._gp: GaussianProcess | None = None
        self._init_plan: np.ndarray | None = None
        self._init_served = 0
        self._iteration = 0

    # ------------------------------------------------------------------
    # ask/tell protocol: the GP prescreen reads the told archive directly,
    # so there is no per-result hook; a speculative (pipelined) ask breeds
    # and prescreens against a one-batch-stale archive.
    # ------------------------------------------------------------------
    def _ask(self, k: int | None) -> np.ndarray:
        space = self.problem.space
        if self._init_plan is None:
            # Donor-tell path (warm start): archive rows told before the
            # first ask already feed the GP prescreen and the elite
            # population, so they replace LHS samples one for one.
            warm = self.history.n_total
            self._init_plan = space.sample_lhs(
                self.rng, max(0, min(self.n_init - warm, self.budget)))
        if self._init_served < len(self._init_plan):
            stop = (len(self._init_plan) if k is None
                    else min(len(self._init_plan), self._init_served + k))
            chunk = self._init_plan[self._init_served:stop]
            self._init_served = stop
            return chunk
        count = 1 if k is None else k
        candidates = []
        for _ in range(count):
            candidates.append(self._next_candidate(self._iteration))
            self._iteration += 1
        return np.asarray(candidates)

    # ------------------------------------------------------------------
    def _next_candidate(self, iteration: int) -> np.ndarray:
        space = self.problem.space
        with self.timed_modeling():
            Xn = space.normalize(self.history.X)
            fom = self.history.fom

            # GP on the FoM surface (trained on the best max_train archive rows;
            # the best region matters most for prescreening).
            order = np.argsort(fom)
            train = order[:self.max_train]
            refit = (iteration % self.refit_every == 0) or self._gp is None
            gp = self._gp or GaussianProcess(dim=space.dim)
            gp.fit(Xn[train], fom[train],
                   restarts=self.gp_restarts if refit else 0,
                   max_opt_iter=60 if refit else 0, rng=self.rng)
            self._gp = gp

            # Current population = elite archive designs.
            pop = Xn[order[:min(self.pop_size, len(order))]]
            children = self._breed(pop)
            mean, std = gp.predict(children)
            score = lower_confidence_bound(mean, std, self.lcb_beta)
            ranked = np.argsort(score)
            chosen = children[ranked[0]]
            # Avoid archive duplicates (wasted simulations).
            for index in ranked:
                candidate = children[index]
                distance = np.min(np.linalg.norm(Xn - candidate, axis=1))
                if distance > 1e-9:
                    chosen = candidate
                    break
        return space.denormalize(chosen)

    def _breed(self, pop: np.ndarray) -> np.ndarray:
        n = len(pop)
        if n < 4:
            extra = self.rng.random((4 - n, pop.shape[1]))
            pop = np.vstack([pop, extra])
            n = len(pop)
        children = np.empty_like(pop)
        for i in range(n):
            choices = [k for k in range(n) if k != i]
            r1, r2, r3 = self.rng.choice(choices, size=3, replace=False)
            mutant = pop[r1] + self.f_weight * (pop[r2] - pop[r3])
            mutant = np.clip(mutant, 0.0, 1.0)
            cross = self.rng.random(pop.shape[1]) < self.crossover
            cross[self.rng.integers(pop.shape[1])] = True
            children[i] = np.where(cross, mutant, pop[i])
        return children
