"""Adaptive simulated annealing.

Stand-in for the commercial SA-based black-box optimizer the paper uses as
its industrial baseline (Table V).  Standard Metropolis acceptance on the
FoM with geometric cooling and step-size adaptation toward a target
acceptance rate.
"""

from __future__ import annotations

import numpy as np

from ..core.fom import fom_from_raw
from ..core.history import Optimizer

__all__ = ["SimulatedAnnealing"]


class SimulatedAnnealing(Optimizer):
    """Metropolis SA over the normalized design cube."""

    name = "SA"

    def __init__(self, problem, budget: int, seed: int = 0, *,
                 initial_temperature: float | None = None,
                 cooling: float = 0.97, steps_per_temperature: int = 10,
                 initial_step: float = 0.25, target_acceptance: float = 0.4,
                 x0: np.ndarray | None = None,
                 stop_when_feasible: bool = False, engine=None):
        super().__init__(problem, budget, seed, stop_when_feasible=stop_when_feasible,
                         engine=engine)
        if not 0.0 < cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")
        self.initial_temperature = initial_temperature
        self.cooling = float(cooling)
        self.steps_per_temperature = int(steps_per_temperature)
        self.initial_step = float(initial_step)
        self.target_acceptance = float(target_acceptance)
        self.x0 = None if x0 is None else np.asarray(x0, dtype=np.float64).ravel()

    def _run(self) -> None:
        space = self.problem.space
        if self.x0 is not None:
            current = space.normalize(space.round(self.x0))
        else:
            current = space.normalize(space.sample(self.rng, 1)[0])
        f_raw = self.evaluate(space.denormalize(current))
        current_fom = float(fom_from_raw(self.problem, f_raw[None, :])[0])

        temperature = self.initial_temperature
        if temperature is None:
            # Calibrate so a typical early uphill move is accepted ~50%.
            temperature = max(0.3 * abs(current_fom), 0.1)
        step = self.initial_step

        while True:
            accepted = 0
            for _ in range(self.steps_per_temperature):
                proposal = current + self.rng.normal(0.0, step, size=space.dim)
                proposal = np.clip(proposal, 0.0, 1.0)
                f_raw = self.evaluate(space.denormalize(proposal))
                proposal_fom = float(fom_from_raw(self.problem, f_raw[None, :])[0])
                delta = proposal_fom - current_fom
                if delta <= 0 or self.rng.random() < np.exp(-delta / max(temperature, 1e-12)):
                    current = proposal
                    current_fom = proposal_fom
                    accepted += 1
            # Adapt the neighbourhood toward the target acceptance rate.
            rate = accepted / self.steps_per_temperature
            if rate > self.target_acceptance:
                step = min(step * 1.2, 0.5)
            else:
                step = max(step * 0.85, 1e-3)
            temperature *= self.cooling
