"""Adaptive simulated annealing.

Stand-in for the commercial SA-based black-box optimizer the paper uses as
its industrial baseline (Table V).  Standard Metropolis acceptance on the
FoM with geometric cooling and step-size adaptation toward a target
acceptance rate.

Under ask/tell the walk is a state machine: ``ask`` perturbs the current
point (the warm start ``x0`` or a random design first), ``tell`` applies
Metropolis acceptance and — every ``steps_per_temperature`` told steps —
the step-size/temperature adaptation.  One proposal per ask replays the
historic serial loop exactly (the acceptance draw is consumed *only* on
uphill moves, so it must stay on the tell side); asking several proposals
perturbs the same stale current point, a simple parallel-tempering-free
batch relaxation.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..core.fom import fom_from_raw
from ..core.history import Optimizer

__all__ = ["SimulatedAnnealing"]


class SimulatedAnnealing(Optimizer):
    """Metropolis SA over the normalized design cube."""

    name = "SA"

    def __init__(self, problem, budget: int, seed: int = 0, *,
                 initial_temperature: float | None = None,
                 cooling: float = 0.97, steps_per_temperature: int = 10,
                 initial_step: float = 0.25, target_acceptance: float = 0.4,
                 x0: np.ndarray | None = None,
                 stop_when_feasible: bool = False, engine=None):
        super().__init__(problem, budget, seed, stop_when_feasible=stop_when_feasible,
                         engine=engine)
        if not 0.0 < cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")
        self.initial_temperature = initial_temperature
        self.cooling = float(cooling)
        self.steps_per_temperature = int(steps_per_temperature)
        self.initial_step = float(initial_step)
        self.target_acceptance = float(target_acceptance)
        self.x0 = None if x0 is None else np.asarray(x0, dtype=np.float64).ravel()
        self._current: np.ndarray | None = None      # normalized coordinates
        self._current_fom: float | None = None
        self._temperature: float | None = None
        self._step = self.initial_step
        self._accepted = 0
        self._steps = 0
        self._pending: deque = deque()  # ("init", None) | ("step", proposal_n)

    def _ask(self, k: int | None) -> np.ndarray:
        space = self.problem.space
        if self._current is None and self.x0 is None and self.history.n_total:
            # Donor-tell path (warm start): rows told before the first ask
            # hand the walk its starting point — the best archive design,
            # fitness already measured, so no init simulation is spent and
            # the first ask proposes perturbations immediately.
            best = self.history.best_index
            self._current = np.clip(
                space.normalize(self.history.X[best]), 0.0, 1.0)
            self._current_fom = float(self.history.fom[best])
            self._temperature = (float(self.initial_temperature)
                                 if self.initial_temperature is not None
                                 else max(0.3 * abs(self._current_fom), 0.1))
        if self._current is None:
            if self.x0 is not None:
                self._current = space.normalize(space.round(self.x0))
            else:
                self._current = space.normalize(space.sample(self.rng, 1)[0])
            self._pending.append(("init", None))
            return space.denormalize(self._current)[None, :]
        if self._current_fom is None:
            # The walk cannot move until the starting point is measured.
            return np.empty((0, self.problem.dim))
        count = 1 if k is None else k
        proposals = []
        for _ in range(count):
            proposal = self._current + self.rng.normal(0.0, self._step,
                                                       size=space.dim)
            proposal = np.clip(proposal, 0.0, 1.0)
            self._pending.append(("step", proposal))
            proposals.append(proposal)
        return space.denormalize(np.asarray(proposals))

    def _observe(self, x: np.ndarray, f_raw: np.ndarray) -> None:
        if not self._pending:
            return  # archive-only tell (results not proposed by ask)
        kind, proposal = self._pending.popleft()
        fom = float(fom_from_raw(self.problem, f_raw[None, :])[0])
        if kind == "init":
            self._current_fom = fom
            if self.initial_temperature is not None:
                self._temperature = float(self.initial_temperature)
            else:
                # Calibrate so a typical early uphill move is accepted ~50%.
                self._temperature = max(0.3 * abs(fom), 0.1)
            return
        delta = fom - self._current_fom
        if delta <= 0 or self.rng.random() < np.exp(-delta / max(self._temperature, 1e-12)):
            self._current = proposal
            self._current_fom = fom
            self._accepted += 1
        self._steps += 1
        if self._steps == self.steps_per_temperature:
            # Adapt the neighbourhood toward the target acceptance rate.
            rate = self._accepted / self.steps_per_temperature
            if rate > self.target_acceptance:
                self._step = min(self._step * 1.2, 0.5)
            else:
                self._step = max(self._step * 0.85, 1e-3)
            self._temperature *= self.cooling
            self._steps = 0
            self._accepted = 0
