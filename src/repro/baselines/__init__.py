"""Baseline optimizers the paper compares against."""

from .bo_wei import BOwEI
from .de import DifferentialEvolution
from .gaspad import GASPAD
from .random_search import RandomSearch
from .simulated_annealing import SimulatedAnnealing

__all__ = [
    "RandomSearch",
    "DifferentialEvolution",
    "SimulatedAnnealing",
    "BOwEI",
    "GASPAD",
]
