"""Differential Evolution (rand/1/bin) — the model-free baseline.

The paper's DE reference is a conventional population-based optimizer:
good convergence, simulation hungry.  Constraint handling uses the same
FoM as every other method so convergence curves are directly comparable
(a design with all constraints met and lower objective always wins).

Under ask/tell the generational loop becomes an explicit state machine:
``ask`` serves the initial population, then breeds trial vectors for the
cyclic target cursor; ``tell`` performs the greedy selection.  Asking one
trial at a time replays the historic serial loop exactly; asking several
(or pipelining) breeds the next targets against the not-yet-updated
population — the standard parallel-DE relaxation.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..core.fom import fom_from_raw
from ..core.history import Optimizer

__all__ = ["DifferentialEvolution"]


class DifferentialEvolution(Optimizer):
    """DE/rand/1/bin over the normalized design cube."""

    name = "DE"

    def __init__(self, problem, budget: int, seed: int = 0, *,
                 pop_size: int | None = None, f_weight: float = 0.6,
                 crossover: float = 0.9, stop_when_feasible: bool = False, engine=None):
        super().__init__(problem, budget, seed, stop_when_feasible=stop_when_feasible,
                         engine=engine)
        if pop_size is None:
            pop_size = min(50, max(12, 5 * problem.dim))
        if pop_size < 4:
            raise ValueError("DE needs a population of at least 4")
        self.pop_size = int(pop_size)
        self.f_weight = float(f_weight)
        self.crossover = float(crossover)
        self._pop_n: np.ndarray | None = None
        self._pop_fom: np.ndarray | None = None
        self._init_served = 0
        self._init_told = 0
        self._target = 0
        self._pending: deque = deque()  # ("init", i) | ("trial", i, trial_n)

    def _ask(self, k: int | None) -> np.ndarray:
        space = self.problem.space
        if self._pop_n is None:
            self._pop_n = space.normalize(space.sample_lhs(self.rng, self.pop_size))
            self._pop_fom = np.empty(self.pop_size)
            # Donor-tell path (warm start): rows told before the first ask
            # seed the initial population with the best archive designs —
            # their fitness is already known, so only the LHS remainder is
            # served for evaluation.  Cold runs never enter this branch.
            n_seed = min(self.history.n_total, self.pop_size)
            if n_seed:
                fom = self.history.fom
                order = np.argsort(fom, kind="stable")[:n_seed]
                self._pop_n[:n_seed] = np.clip(
                    space.normalize(self.history.X[order]), 0.0, 1.0)
                self._pop_fom[:n_seed] = fom[order]
                self._init_served = self._init_told = n_seed
        if self._init_served < self.pop_size:
            stop = (self.pop_size if k is None
                    else min(self.pop_size, self._init_served + k))
            for i in range(self._init_served, stop):
                self._pending.append(("init", i, None))
            chunk = self._pop_n[self._init_served:stop]
            self._init_served = stop
            return space.denormalize(chunk)
        if self._init_told < self.pop_size:
            # Breeding needs every member's fitness; wait for the initial
            # population to come back.
            return np.empty((0, self.problem.dim))
        count = 1 if k is None else k
        trials = []
        for _ in range(count):
            trial = self._trial_vector(self._pop_n, self._target)
            self._pending.append(("trial", self._target, trial))
            self._target = (self._target + 1) % self.pop_size
            trials.append(trial)
        return space.denormalize(np.asarray(trials))

    def _observe(self, x: np.ndarray, f_raw: np.ndarray) -> None:
        if not self._pending:
            return  # archive-only tell (results not proposed by ask)
        kind, i, trial_n = self._pending.popleft()
        fom = float(fom_from_raw(self.problem, f_raw[None, :])[0])
        if kind == "init":
            self._pop_fom[i] = fom
            self._init_told += 1
        elif fom <= self._pop_fom[i]:
            # Greedy selection keeps the *unrounded* normalized trial — the
            # historic behaviour (rounding applies at evaluation only).
            self._pop_n[i] = trial_n
            self._pop_fom[i] = fom

    def _trial_vector(self, pop_n: np.ndarray, target: int) -> np.ndarray:
        choices = [k for k in range(self.pop_size) if k != target]
        r1, r2, r3 = self.rng.choice(choices, size=3, replace=False)
        mutant = pop_n[r1] + self.f_weight * (pop_n[r2] - pop_n[r3])
        mutant = np.clip(mutant, 0.0, 1.0)
        cross = self.rng.random(self.problem.dim) < self.crossover
        cross[self.rng.integers(self.problem.dim)] = True  # at least one gene
        trial = np.where(cross, mutant, pop_n[target])
        return trial
