"""Differential Evolution (rand/1/bin) — the model-free baseline.

The paper's DE reference is a conventional population-based optimizer:
good convergence, simulation hungry.  Constraint handling uses the same
FoM as every other method so convergence curves are directly comparable
(a design with all constraints met and lower objective always wins).
"""

from __future__ import annotations

import numpy as np

from ..core.fom import fom_from_raw
from ..core.history import Optimizer

__all__ = ["DifferentialEvolution"]


class DifferentialEvolution(Optimizer):
    """DE/rand/1/bin over the normalized design cube."""

    name = "DE"

    def __init__(self, problem, budget: int, seed: int = 0, *,
                 pop_size: int | None = None, f_weight: float = 0.6,
                 crossover: float = 0.9, stop_when_feasible: bool = False, engine=None):
        super().__init__(problem, budget, seed, stop_when_feasible=stop_when_feasible,
                         engine=engine)
        if pop_size is None:
            pop_size = min(50, max(12, 5 * problem.dim))
        if pop_size < 4:
            raise ValueError("DE needs a population of at least 4")
        self.pop_size = int(pop_size)
        self.f_weight = float(f_weight)
        self.crossover = float(crossover)

    def _run(self) -> None:
        space = self.problem.space
        pop_n = space.normalize(space.sample_lhs(self.rng, self.pop_size))
        fom = np.empty(self.pop_size)
        for i in range(self.pop_size):
            f_raw = self.evaluate(space.denormalize(pop_n[i]))
            fom[i] = fom_from_raw(self.problem, f_raw[None, :])[0]

        while True:
            for i in range(self.pop_size):
                trial = self._trial_vector(pop_n, i)
                f_raw = self.evaluate(space.denormalize(trial))
                trial_fom = fom_from_raw(self.problem, f_raw[None, :])[0]
                if trial_fom <= fom[i]:
                    pop_n[i] = trial
                    fom[i] = trial_fom

    def _trial_vector(self, pop_n: np.ndarray, target: int) -> np.ndarray:
        choices = [k for k in range(self.pop_size) if k != target]
        r1, r2, r3 = self.rng.choice(choices, size=3, replace=False)
        mutant = pop_n[r1] + self.f_weight * (pop_n[r2] - pop_n[r3])
        mutant = np.clip(mutant, 0.0, 1.0)
        cross = self.rng.random(self.problem.dim) < self.crossover
        cross[self.rng.integers(self.problem.dim)] = True  # at least one gene
        trial = np.where(cross, mutant, pop_n[target])
        return trial
