"""BO-wEI: constrained Bayesian optimization with weighted EI.

Reproduces the WEIBO-style baseline of Lyu et al. (DAC 2018) referenced by
the paper: one GP models the (normalized) objective and one GP models each
normalized constraint violation.  The acquisition blends weighted Expected
Improvement with the product of per-constraint probabilities of
feasibility; while no feasible design exists the PoF product alone drives
the search (Gelbart's rule).  Acquisition maximization uses a random pool
plus local perturbations around the incumbent.

GP fitting is cubic in the sample count — the scalability drawback the
paper attributes to BO methods appears here as rapidly growing modeling
time, which the experiment harness records.
"""

from __future__ import annotations

import numpy as np

from ..core.history import Optimizer
from ..gp import (
    GaussianProcess,
    probability_of_feasibility,
    weighted_expected_improvement,
)

__all__ = ["BOwEI"]


class BOwEI(Optimizer):
    """Constrained Bayesian optimization with wEI x PoF acquisition."""

    name = "BO-wEI"

    def __init__(self, problem, budget: int, seed: int = 0, *,
                 n_init: int = 20, wei_weight: float = 0.5,
                 pool_size: int = 1024, local_points: int = 256,
                 refit_every: int = 1, gp_restarts: int = 1,
                 stop_when_feasible: bool = False, engine=None):
        super().__init__(problem, budget, seed, stop_when_feasible=stop_when_feasible,
                         engine=engine)
        self.n_init = int(n_init)
        self.wei_weight = float(wei_weight)
        self.pool_size = int(pool_size)
        self.local_points = int(local_points)
        self.refit_every = max(1, int(refit_every))
        self.gp_restarts = int(gp_restarts)
        self._models: list[GaussianProcess] = []
        self._init_plan: np.ndarray | None = None
        self._init_served = 0
        self._iteration = 0

    # ------------------------------------------------------------------
    # ask/tell protocol: the GP models condition on the *told* archive, so
    # proposals need no per-result hook — a speculative (pipelined) ask
    # simply maximizes the acquisition on a one-batch-stale posterior.
    # ------------------------------------------------------------------
    def _ask(self, k: int | None) -> np.ndarray:
        space = self.problem.space
        if self._init_plan is None:
            # Donor-tell path (warm start): archive rows told before the
            # first ask already condition the GPs, so they replace LHS
            # samples one for one — a big enough donor skips the
            # space-filling phase entirely.
            warm = self.history.n_total
            self._init_plan = space.sample_lhs(
                self.rng, max(0, min(self.n_init - warm, self.budget)))
        if self._init_served < len(self._init_plan):
            stop = (len(self._init_plan) if k is None
                    else min(len(self._init_plan), self._init_served + k))
            chunk = self._init_plan[self._init_served:stop]
            self._init_served = stop
            return chunk
        count = 1 if k is None else k
        candidates = []
        for _ in range(count):
            candidates.append(self._next_candidate(self._iteration))
            self._iteration += 1
        return np.asarray(candidates)

    # ------------------------------------------------------------------
    def _next_candidate(self, iteration: int) -> np.ndarray:
        space = self.problem.space
        with self.timed_modeling():
            Xn = space.normalize(self.history.X)
            Yn = self.problem.normalize(self.history.F)
            num_outputs = Yn.shape[1]

            refit = (iteration % self.refit_every == 0) or not self._models
            if refit:
                self._models = []
                for column in range(num_outputs):
                    gp = GaussianProcess(dim=space.dim)
                    gp.fit(Xn, Yn[:, column], restarts=self.gp_restarts, rng=self.rng)
                    self._models.append(gp)
            else:
                # Keep hyperparameters; refresh data-dependent factors.
                for column, gp in enumerate(self._models):
                    gp.fit(Xn, Yn[:, column], restarts=0, max_opt_iter=0, rng=self.rng)

            pool = self._candidate_pool(Xn, Yn)
            score = self._acquisition(pool, Yn)
            best = pool[int(np.argmax(score))]
        return space.denormalize(best)

    def _candidate_pool(self, Xn: np.ndarray, Yn: np.ndarray) -> np.ndarray:
        pool = self.rng.random((self.pool_size, self.problem.dim))
        incumbent = Xn[self._incumbent_index(Yn)]
        local = incumbent + self.rng.normal(0.0, 0.05,
                                            size=(self.local_points, self.problem.dim))
        return np.clip(np.vstack([pool, local]), 0.0, 1.0)

    def _incumbent_index(self, Yn: np.ndarray) -> int:
        feasible = self.history.feasible
        objective = Yn[:, 0]
        if feasible.any():
            masked = np.where(feasible, objective, np.inf)
            return int(np.argmin(masked))
        # No feasible design yet: least-violating design.
        violation = np.clip(Yn[:, 1:], 0.0, None).sum(axis=1) if Yn.shape[1] > 1 else objective
        return int(np.argmin(violation))

    def _acquisition(self, pool: np.ndarray, Yn: np.ndarray) -> np.ndarray:
        mean0, std0 = self._models[0].predict(pool)
        feasible = self.history.feasible
        pof = np.ones(len(pool))
        for gp in self._models[1:]:
            mean_c, std_c = gp.predict(pool)
            pof *= probability_of_feasibility(mean_c, std_c)
        if feasible.any():
            best = float(np.min(Yn[feasible.nonzero()[0], 0]))
            wei = weighted_expected_improvement(mean0, std0, best, self.wei_weight)
            return wei * pof
        return pof
