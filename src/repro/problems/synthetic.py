"""Synthetic black-box problems.

These serve two roles in the reproduction:

* fast, analytically-understood workloads for unit/integration tests of all
  five optimizers, and
* the critic-accuracy ablation (the paper validated its 2d-input critic on
  Bayesmark problems; we use this suite as the stand-in).

All functions are minimization problems; known optima are exposed so tests
can assert convergence quality.
"""

from __future__ import annotations

import numpy as np

from .base import DesignSpace, Objective, OptimizationProblem, Spec, Variable

__all__ = [
    "Sphere",
    "Rosenbrock",
    "Ackley",
    "Rastrigin",
    "Branin",
    "Hartmann6",
    "ConstrainedSphere",
    "G06",
    "PressureVessel",
    "SYNTHETIC_SUITE",
]


def _box(dim: int, lower: float, upper: float, prefix: str = "x") -> DesignSpace:
    return DesignSpace([Variable(f"{prefix}{i}", lower, upper) for i in range(dim)])


class Sphere(OptimizationProblem):
    """``f(x) = sum x_i^2``; optimum 0 at the origin."""

    optimum = 0.0

    def __init__(self, dim: int = 5):
        super().__init__(_box(dim, -5.0, 5.0), Objective("sphere", scale=25.0 * dim), [])

    def _evaluate(self, x):
        return [float(np.sum(x**2))]


class Rosenbrock(OptimizationProblem):
    """Banana function; optimum 0 at (1, ..., 1)."""

    optimum = 0.0

    def __init__(self, dim: int = 4):
        super().__init__(_box(dim, -2.0, 2.0), Objective("rosenbrock", scale=100.0), [])

    def _evaluate(self, x):
        value = np.sum(100.0 * (x[1:] - x[:-1] ** 2) ** 2 + (1.0 - x[:-1]) ** 2)
        return [float(value)]


class Ackley(OptimizationProblem):
    """Highly multimodal; optimum 0 at the origin."""

    optimum = 0.0

    def __init__(self, dim: int = 5):
        super().__init__(_box(dim, -5.0, 5.0), Objective("ackley", scale=20.0), [])

    def _evaluate(self, x):
        d = len(x)
        value = (-20.0 * np.exp(-0.2 * np.sqrt(np.sum(x**2) / d))
                 - np.exp(np.sum(np.cos(2.0 * np.pi * x)) / d) + 20.0 + np.e)
        return [float(value)]


class Rastrigin(OptimizationProblem):
    """Highly multimodal; optimum 0 at the origin."""

    optimum = 0.0

    def __init__(self, dim: int = 5):
        super().__init__(_box(dim, -5.12, 5.12), Objective("rastrigin", scale=10.0 * dim), [])

    def _evaluate(self, x):
        value = 10.0 * len(x) + np.sum(x**2 - 10.0 * np.cos(2.0 * np.pi * x))
        return [float(value)]


class Branin(OptimizationProblem):
    """Classic 2-D test function; optimum ~0.397887."""

    optimum = 0.397887

    def __init__(self):
        space = DesignSpace([Variable("x0", -5.0, 10.0), Variable("x1", 0.0, 15.0)])
        super().__init__(space, Objective("branin", scale=50.0), [])

    def _evaluate(self, x):
        a, b, c = 1.0, 5.1 / (4 * np.pi**2), 5.0 / np.pi
        r, s, t = 6.0, 10.0, 1.0 / (8 * np.pi)
        value = a * (x[1] - b * x[0] ** 2 + c * x[0] - r) ** 2 + s * (1 - t) * np.cos(x[0]) + s
        return [float(value)]


class Hartmann6(OptimizationProblem):
    """6-D Hartmann; optimum ~ -3.32237."""

    optimum = -3.32237

    _A = np.array([[10, 3, 17, 3.5, 1.7, 8],
                   [0.05, 10, 17, 0.1, 8, 14],
                   [3, 3.5, 1.7, 10, 17, 8],
                   [17, 8, 0.05, 10, 0.1, 14]])
    _P = 1e-4 * np.array([[1312, 1696, 5569, 124, 8283, 5886],
                          [2329, 4135, 8307, 3736, 1004, 9991],
                          [2348, 1451, 3522, 2883, 3047, 6650],
                          [4047, 8828, 8732, 5743, 1091, 381]])
    _ALPHA = np.array([1.0, 1.2, 3.0, 3.2])

    def __init__(self):
        super().__init__(_box(6, 0.0, 1.0), Objective("hartmann6", scale=3.5), [])

    def _evaluate(self, x):
        inner = np.sum(self._A * (x - self._P) ** 2, axis=1)
        return [float(-np.dot(self._ALPHA, np.exp(-inner)))]


class ConstrainedSphere(OptimizationProblem):
    """Minimize ``sum x^2`` s.t. ``sum x >= dim/2`` (active at the optimum).

    Optimum: all coordinates at ``1/2``, objective ``dim/4``.
    """

    def __init__(self, dim: int = 4):
        self._dim_value = dim
        specs = [Spec("coord_sum", "min", dim / 2.0)]
        super().__init__(_box(dim, -5.0, 5.0), Objective("sphere", scale=25.0 * dim), specs)

    @property
    def optimum(self) -> float:
        return self._dim_value / 4.0

    def _evaluate(self, x):
        return [float(np.sum(x**2)), float(np.sum(x))]


class G06(OptimizationProblem):
    """Floudas G06: a hard 2-D problem with a tiny crescent feasible region.

    Optimum -6961.81 at (14.095, 0.84296).
    """

    optimum = -6961.81388

    def __init__(self):
        space = DesignSpace([Variable("x0", 13.0, 100.0), Variable("x1", 0.0, 100.0)])
        specs = [Spec("g1", "max", 0.0, weight=1.0),
                 Spec("g2", "max", 0.0, weight=1.0)]
        super().__init__(space, Objective("g06", scale=7000.0), specs)

    def _evaluate(self, x):
        f = (x[0] - 10.0) ** 3 + (x[1] - 20.0) ** 3
        g1 = -((x[0] - 5.0) ** 2) - (x[1] - 5.0) ** 2 + 100.0
        g2 = (x[0] - 6.0) ** 2 + (x[1] - 5.0) ** 2 - 82.81
        return [float(f), float(g1), float(g2)]


class PressureVessel(OptimizationProblem):
    """Coello pressure-vessel design (mixed discrete/continuous flavour).

    Shell/head thickness are multiples of 1/16 inch, modelled here as
    integer multipliers — exercising the integer-variable machinery that the
    circuit problems (finger counts) rely on.
    """

    optimum = 6059.7  # literature best with discrete thicknesses

    def __init__(self):
        space = DesignSpace([
            Variable("t_shell_16ths", 1, 99, kind="integer"),
            Variable("t_head_16ths", 1, 99, kind="integer"),
            Variable("radius", 10.0, 200.0),
            Variable("length", 10.0, 240.0),
        ])
        specs = [Spec("g_shell", "max", 0.0), Spec("g_head", "max", 0.0),
                 Spec("g_volume", "max", 0.0)]
        super().__init__(space, Objective("cost", scale=1e4), specs)

    def _evaluate(self, x):
        ts = 0.0625 * x[0]
        th = 0.0625 * x[1]
        r, length = x[2], x[3]
        cost = (0.6224 * ts * r * length + 1.7781 * th * r**2
                + 3.1661 * ts**2 * length + 19.84 * ts**2 * r)
        g1 = -ts + 0.0193 * r
        g2 = -th + 0.00954 * r
        g3 = -np.pi * r**2 * length - (4.0 / 3.0) * np.pi * r**3 + 1_296_000.0
        return [float(cost), float(g1), float(g2), float(g3 / 1e5)]


#: name -> factory for the whole suite (used by the critic-accuracy ablation)
SYNTHETIC_SUITE = {
    "sphere": Sphere,
    "rosenbrock": Rosenbrock,
    "ackley": Ackley,
    "rastrigin": Rastrigin,
    "branin": Branin,
    "hartmann6": Hartmann6,
    "constrained_sphere": ConstrainedSphere,
    "g06": G06,
    "pressure_vessel": PressureVessel,
}
