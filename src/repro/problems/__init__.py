"""Problem abstraction: design spaces, specs, synthetic + circuit problems."""

from .base import (
    DesignSpace,
    EvaluationFailure,
    Objective,
    OptimizationProblem,
    Spec,
    Variable,
)
from .latency import LatencyProblem
from .synthetic import (
    SYNTHETIC_SUITE,
    G06,
    Ackley,
    Branin,
    ConstrainedSphere,
    Hartmann6,
    PressureVessel,
    Rastrigin,
    Rosenbrock,
    Sphere,
)

__all__ = [
    "Variable",
    "DesignSpace",
    "Spec",
    "Objective",
    "OptimizationProblem",
    "EvaluationFailure",
    "Sphere",
    "Rosenbrock",
    "Ackley",
    "Rastrigin",
    "Branin",
    "Hartmann6",
    "ConstrainedSphere",
    "G06",
    "PressureVessel",
    "SYNTHETIC_SUITE",
    "LatencyProblem",
]
