"""Constrained black-box problem abstraction (Eq. 1 of the paper).

An :class:`OptimizationProblem` couples a :class:`DesignSpace` (the vector
``x`` of Eq. 1, possibly mixing continuous and integer variables) with one
minimization objective and ``m`` inequality constraints expressed as
:class:`Spec` records.  Raw performance values keep their physical units;
:meth:`OptimizationProblem.normalize` maps them to the standard
``fi(x) <= 0`` form with O(1) scaling, which is what the FoM (Eq. 4), the
critic's training targets, and every optimizer in this package consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Variable", "DesignSpace", "Spec", "Objective", "OptimizationProblem",
           "EvaluationFailure"]


@dataclass(frozen=True)
class Variable:
    """One design variable with box bounds."""

    name: str
    lower: float
    upper: float
    kind: str = "continuous"  # or "integer"
    unit: str = ""

    def __post_init__(self):
        if self.kind not in ("continuous", "integer"):
            raise ValueError(f"{self.name}: kind must be continuous|integer")
        if not self.lower < self.upper:
            raise ValueError(f"{self.name}: need lower < upper, got [{self.lower}, {self.upper}]")


class DesignSpace:
    """Box-bounded design space with normalization and sampling helpers."""

    def __init__(self, variables: list[Variable]):
        if not variables:
            raise ValueError("design space needs at least one variable")
        names = [v.name for v in variables]
        if len(set(names)) != len(names):
            raise ValueError("duplicate variable names")
        self.variables = list(variables)
        self.lower = np.array([v.lower for v in variables], dtype=np.float64)
        self.upper = np.array([v.upper for v in variables], dtype=np.float64)
        self.names = names
        self._integer_mask = np.array([v.kind == "integer" for v in variables])

    @property
    def dim(self) -> int:
        return len(self.variables)

    @property
    def integer_mask(self) -> np.ndarray:
        return self._integer_mask.copy()

    @property
    def span(self) -> np.ndarray:
        return self.upper - self.lower

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Uniform random designs, integer dims rounded; shape ``(n, d)``."""
        points = rng.uniform(self.lower, self.upper, size=(n, self.dim))
        return self.round(points)

    def sample_lhs(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Latin-hypercube samples (better space filling for initial sets)."""
        u = (rng.permuted(np.tile(np.arange(n), (self.dim, 1)), axis=1).T
             + rng.uniform(size=(n, self.dim))) / n
        return self.round(self.denormalize(u))

    def clip(self, x: np.ndarray) -> np.ndarray:
        return np.clip(x, self.lower, self.upper)

    def round(self, x: np.ndarray) -> np.ndarray:
        """Round integer dimensions to the nearest feasible integer."""
        x = np.array(x, dtype=np.float64, copy=True)
        if self._integer_mask.any():
            x[..., self._integer_mask] = np.round(x[..., self._integer_mask])
        return self.clip(x)

    def canonical(self, x: np.ndarray) -> np.ndarray:
        """The *canonical* representation of the design(s) that would be
        simulated: :meth:`round` plus signed-zero normalization.

        This is the one shared helper every byte-level identity in the
        package keys on — the engine's evaluation/dedup cache, the disk
        cache tier, and the Study replay store.  ``np.round`` maps values in
        ``(-0.5, 0.0)`` on an integer dimension (see ``integer_mask``) to
        ``-0.0``, whose byte pattern differs from ``+0.0`` even though it is
        the same integer design; hashing raw bytes would then alias one
        design to two cache keys (and, with a persistent cache, two disk
        entries).  Adding ``0.0`` collapses every ``-0.0`` to ``+0.0`` and
        leaves all other values bit-untouched.
        """
        return self.round(x) + 0.0

    def normalize(self, x: np.ndarray) -> np.ndarray:
        """Map physical values to the unit cube."""
        return (np.asarray(x, dtype=np.float64) - self.lower) / self.span

    def denormalize(self, u: np.ndarray) -> np.ndarray:
        """Map unit-cube coordinates back to physical values."""
        return self.lower + np.asarray(u, dtype=np.float64) * self.span

    def as_dict(self, x: np.ndarray) -> dict[str, float]:
        """One design vector as a name->value mapping."""
        x = np.asarray(x).ravel()
        return {name: float(value) for name, value in zip(self.names, x)}

    def __repr__(self) -> str:
        return f"DesignSpace(dim={self.dim})"


@dataclass(frozen=True)
class Spec:
    """One inequality constraint on a named performance metric.

    ``kind='min'`` requires ``value >= bound`` (e.g. gain > 60 dB);
    ``kind='max'`` requires ``value <= bound`` (e.g. power < 1 mW).
    ``weight`` is the ``w_i`` of Eq. 4.
    """

    name: str
    kind: str
    bound: float
    weight: float = 1.0
    unit: str = ""

    def __post_init__(self):
        if self.kind not in ("min", "max"):
            raise ValueError(f"{self.name}: kind must be 'min' or 'max'")
        if self.weight <= 0:
            raise ValueError(f"{self.name}: weight must be positive")

    @property
    def scale(self) -> float:
        # Zero bounds (e.g. "g(x) <= 0") normalize by 1 — dividing by |bound|
        # would explode the violation measure.
        magnitude = abs(self.bound)
        return magnitude if magnitude > 1e-12 else 1.0

    def violation(self, value: float | np.ndarray) -> float | np.ndarray:
        """Normalized constraint value ``fi``; satisfied iff ``fi <= 0``."""
        if self.kind == "min":
            return (self.bound - value) / self.scale
        return (value - self.bound) / self.scale

    def satisfied(self, value: float | np.ndarray, tol: float = 1e-9):
        return self.violation(value) <= tol

    def describe(self) -> str:
        op = ">=" if self.kind == "min" else "<="
        return f"{self.name} {op} {self.bound:g} {self.unit}".rstrip()


@dataclass(frozen=True)
class Objective:
    """The minimization target ``f0`` with its FoM weight ``w0`` (Eq. 4).

    ``scale`` is a reference magnitude used to normalize the raw value so it
    is comparable with the clipped constraint terms.
    """

    name: str
    scale: float = 1.0
    weight: float = 1.0
    unit: str = ""

    def __post_init__(self):
        if self.scale <= 0 or self.weight <= 0:
            raise ValueError(f"{self.name}: scale and weight must be positive")

    def normalized(self, value: float | np.ndarray):
        return value / self.scale


class EvaluationFailure(RuntimeError):
    """Raised by problems when a simulation fails (non-convergence etc.)."""


class OptimizationProblem:
    """Base class for constrained sizing problems.

    Subclasses implement :meth:`_evaluate` returning the raw performance
    vector ``[f0, f1, ..., fm]`` for a single design.  Evaluation failures
    (e.g. SPICE non-convergence on a pathological sizing) may raise
    :class:`EvaluationFailure`; callers receive :meth:`failure_vector`
    instead, a heavily penalized row, so optimizers never crash mid-run.
    """

    def __init__(self, space: DesignSpace, objective: Objective, specs: list[Spec],
                 name: str = ""):
        self.space = space
        self.objective = objective
        self.specs = list(specs)
        self.name = name or type(self).__name__

    # -- interface -------------------------------------------------------
    def _evaluate(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    # -- public API -------------------------------------------------------
    @property
    def dim(self) -> int:
        return self.space.dim

    @property
    def num_constraints(self) -> int:
        return len(self.specs)

    @property
    def metric_names(self) -> list[str]:
        return [self.objective.name] + [s.name for s in self.specs]

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Raw performance row ``[f0, f1..fm]`` for one design (never raises)."""
        x = self.space.round(np.asarray(x, dtype=np.float64).ravel())
        try:
            row = np.asarray(self._evaluate(x), dtype=np.float64).ravel()
        except EvaluationFailure:
            return self.failure_vector()
        if row.shape != (1 + self.num_constraints,):
            raise ValueError(
                f"{self.name}: _evaluate returned shape {row.shape}, "
                f"expected ({1 + self.num_constraints},)")
        if not np.all(np.isfinite(row)):
            return self.failure_vector()
        return row

    def evaluate_batch(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return np.vstack([self.evaluate(x) for x in X])

    def failure_vector(self) -> np.ndarray:
        """Penalty row used when simulation fails: huge objective, all
        constraints maximally violated (their clipped FoM terms saturate)."""
        row = np.empty(1 + self.num_constraints)
        row[0] = 10.0 * self.objective.scale
        for i, spec in enumerate(self.specs):
            # Choose a raw value violating the spec by 10 scales.
            if spec.kind == "min":
                row[1 + i] = spec.bound - 10.0 * spec.scale
            else:
                row[1 + i] = spec.bound + 10.0 * spec.scale
        return row

    def normalize(self, F: np.ndarray) -> np.ndarray:
        """Map raw rows ``[f0, fi...]`` to ``[f0/scale, violation_i...]``.

        A 1-D input row returns a 1-D result; 2-D stays 2-D.
        """
        F = np.asarray(F, dtype=np.float64)
        single_row = F.ndim == 1
        F = np.atleast_2d(F)
        out = np.empty_like(F)
        out[:, 0] = self.objective.normalized(F[:, 0])
        for i, spec in enumerate(self.specs):
            out[:, 1 + i] = spec.violation(F[:, 1 + i])
        return out[0] if single_row else out

    def constraint_weights(self) -> np.ndarray:
        return np.array([s.weight for s in self.specs])

    def is_feasible(self, F_raw: np.ndarray, tol: float = 1e-9) -> np.ndarray:
        """Feasibility mask for raw performance rows."""
        F_raw = np.atleast_2d(F_raw)
        if self.num_constraints == 0:
            return np.ones(len(F_raw), dtype=bool)
        viol = self.normalize(F_raw)[:, 1:]
        return np.all(viol <= tol, axis=1)

    def describe(self) -> str:
        lines = [f"problem: {self.name}",
                 f"  minimize {self.objective.name} [{self.objective.unit}]",
                 f"  {self.dim} variables, {self.num_constraints} constraints"]
        lines.extend(f"    s.t. {spec.describe()}" for spec in self.specs)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(d={self.dim}, m={self.num_constraints},"
                f" objective={self.objective.name!r})")
