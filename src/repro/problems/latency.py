"""Latency-modeling problem wrapper for dispatch benchmarks.

The bundled SPICE engine is pure CPU-bound python, so dispatch-layer
speedups (thread/async overlap, remote sharding) are invisible on a small
host.  :class:`LatencyProblem` models the production situation instead — an
*external* simulator behind a license queue, subprocess or farm RPC — by
sleeping a fixed interval before every evaluation.  Wait-bound evaluations
overlap under any concurrent backend regardless of core count, which makes
benchmark speedup ratios portable across machines.

The wrapper is a plain importable class (not a closure), so it pickles
cleanly through process pools and the remote evaluation service — anything
shipped to ``python -m repro.core.service`` workers must be importable on
the worker host.
"""

from __future__ import annotations

import time

__all__ = ["LatencyProblem"]


class LatencyProblem:
    """Delegating wrapper that adds fixed per-evaluation latency.

    Everything except :meth:`evaluate` is forwarded to the wrapped problem,
    so optimizers and engines see an ordinary
    :class:`~repro.problems.base.OptimizationProblem`.
    """

    def __init__(self, problem, latency_s: float):
        self._problem = problem
        self._latency_s = float(latency_s)

    def evaluate(self, x):
        time.sleep(self._latency_s)
        return self._problem.evaluate(x)

    def __getattr__(self, name):
        if name.startswith("_"):  # keep pickle/copy protocol lookups local
            raise AttributeError(name)
        return getattr(self._problem, name)

    def __repr__(self) -> str:
        return f"LatencyProblem({self._problem!r}, latency_s={self._latency_s})"
