"""DNN-Opt reproduction (Budak et al., DAC 2021).

An RL-inspired two-stage DNN black-box optimizer for analog circuit sizing,
together with everything needed to reproduce the paper end-to-end offline:

* :mod:`repro.nn` — NumPy autograd + MLP substrate (PyTorch substitute);
* :mod:`repro.spice` — a from-scratch SPICE-class circuit simulator;
* :mod:`repro.circuits` — the paper's six benchmark circuits;
* :mod:`repro.problems` — constrained-problem abstraction + synthetic suite;
* :mod:`repro.core` — DNN-Opt itself (Algorithm 1);
* :mod:`repro.gp` / :mod:`repro.baselines` — DE, BO-wEI, GASPAD, SA;
* :mod:`repro.sensitivity` — Eq. 7 critical-device identification;
* :mod:`repro.experiments` — per-table/figure reproduction harness.

Quickstart::

    from repro import DNNOpt, Study
    from repro.circuits import FoldedCascodeOTA

    problem = FoldedCascodeOTA().problem()
    history = Study(DNNOpt(problem, budget=200, seed=0)).run()
    print(history.summary())

Optimizers speak *ask/tell* (propose designs / observe results); a
:class:`Study` owns the loop — budget, stop conditions, callbacks,
checkpoint/resume and pipelined dispatch.  ``optimizer.run()`` remains as
a shim for the one-liner above.
"""

from .core import (BudgetExhausted, DNNOpt, OptimizationHistory, Optimizer,
                   Study, WarmStart)
from .problems import DesignSpace, Objective, OptimizationProblem, Spec, Variable

__version__ = "1.2.0"

__all__ = [
    "DNNOpt",
    "Optimizer",
    "OptimizationHistory",
    "BudgetExhausted",
    "Study",
    "WarmStart",
    "OptimizationProblem",
    "DesignSpace",
    "Variable",
    "Spec",
    "Objective",
    "__version__",
]
