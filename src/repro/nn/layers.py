"""Neural-network layers built on :class:`repro.nn.tensor.Tensor`.

The paper's actor and critic are plain multi-layer perceptrons; this module
provides the :class:`Module` base class, :class:`Linear` affine maps, the
usual activations and a convenience :class:`MLP` factory.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "Module",
    "Linear",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Sequential",
    "MLP",
]

_ACTIVATIONS = {}


class Module:
    """Base class: tracks parameters and sub-modules for optimizers."""

    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
                    elif isinstance(item, Tensor) and item.requires_grad:
                        params.append(item)
        return params

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> list[np.ndarray]:
        """Flat list of parameter arrays (copies), in parameter order."""
        return [p.data.copy() for p in self.parameters()]

    def load_state_dict(self, state: list[np.ndarray]) -> None:
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(f"state has {len(state)} arrays, model has {len(params)} parameters")
        for param, array in zip(params, state):
            if param.data.shape != array.shape:
                raise ValueError(f"shape mismatch: {param.data.shape} vs {array.shape}")
            param.data = array.copy()

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine layer ``y = x W + b`` with He/Xavier initialization."""

    def __init__(self, in_features: int, out_features: int, *, rng: np.random.Generator,
                 init: str = "he"):
        if init == "he":
            scale = np.sqrt(2.0 / in_features)
        elif init == "xavier":
            scale = np.sqrt(2.0 / (in_features + out_features))
        elif init == "small":
            scale = 1e-3
        else:
            raise ValueError(f"unknown init scheme: {init!r}")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(rng.normal(0.0, scale, size=(in_features, out_features)),
                             requires_grad=True)
        self.bias = Tensor(np.zeros(out_features), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, slope: float = 0.01):
        self.slope = slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


_ACTIVATIONS.update({
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "tanh": Tanh,
    "sigmoid": Sigmoid,
    "identity": Identity,
})


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module):
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x


class MLP(Module):
    """Multi-layer perceptron ``in -> hidden... -> out``.

    Parameters
    ----------
    in_features, out_features:
        Input/output widths.
    hidden:
        Sequence of hidden-layer widths.
    activation:
        Name of the hidden activation (``relu``, ``tanh``, ...).
    output_activation:
        Name of the output activation (default ``identity``).
    rng:
        Random generator for weight initialization (required so optimization
        runs are reproducible).
    """

    def __init__(self, in_features: int, out_features: int, hidden: tuple[int, ...] = (64, 64),
                 *, activation: str = "relu", output_activation: str = "identity",
                 rng: np.random.Generator):
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation: {activation!r}")
        if output_activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation: {output_activation!r}")
        init = "he" if activation in ("relu", "leaky_relu") else "xavier"
        widths = [in_features, *hidden]
        layers: list[Module] = []
        for w_in, w_out in zip(widths[:-1], widths[1:]):
            layers.append(Linear(w_in, w_out, rng=rng, init=init))
            layers.append(_ACTIVATIONS[activation]())
        layers.append(Linear(widths[-1], out_features, rng=rng, init="xavier"))
        layers.append(_ACTIVATIONS[output_activation]())
        self.net = Sequential(*layers)
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Forward pass on a raw array without building the autograd graph."""
        out = self.net(Tensor(np.atleast_2d(x)))
        return out.data
