"""Reverse-mode automatic differentiation on NumPy arrays.

This module is the foundation of :mod:`repro.nn`, the small deep-learning
substrate used by DNN-Opt in place of PyTorch.  A :class:`Tensor` wraps a
``numpy.ndarray`` and records the operations applied to it; calling
:meth:`Tensor.backward` on a scalar result propagates gradients back to every
tensor created with ``requires_grad=True``.

Only the operations needed by the paper's networks are implemented: affine
maps, the usual activations, element-wise arithmetic with broadcasting,
clipping (for the FoM of Eq. 4), concatenation (for the critic's ``(x, dx)``
input) and reductions.  Gradients for clipping use the standard subgradient
convention (zero outside the active range).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "concatenate", "maximum", "minimum", "where"]


def _as_array(value) -> np.ndarray:
    array = np.asarray(value, dtype=np.float64)
    return array


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that broadcasting added.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with reverse-mode autodiff support."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")
    __array_priority__ = 100  # make numpy defer to Tensor for mixed ops

    def __init__(self, data, requires_grad: bool = False):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data: np.ndarray, parents: tuple["Tensor", ...], backward):
        out = Tensor(data)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    def backward(self, grad=None) -> None:
        """Back-propagate from this tensor.

        ``grad`` defaults to 1.0 and must match this tensor's shape; for
        non-scalar tensors an explicit seed gradient is required.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)

        # Topological order over the dynamic graph.  id() below is pure
        # within-process node identity for the visited set / grad table; the
        # traversal order is fixed by the stack discipline, so nothing
        # address-dependent reaches gradients.
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:  # lint: disable=RP01
                continue
            seen.add(id(node))  # lint: disable=RP01
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:  # lint: disable=RP01
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}  # lint: disable=RP01
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)  # lint: disable=RP01
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf: accumulate into .grad
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
                continue
            for parent, pgrad in node._backward(node_grad):
                if not parent.requires_grad:
                    continue
                key = id(parent)  # lint: disable=RP01
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other):
        other = self._lift(other)
        data = self.data + other.data

        def backward(grad):
            return (
                (self, _unbroadcast(grad, self.shape)),
                (other, _unbroadcast(grad, other.shape)),
            )

        return self._make(data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other):
        other = self._lift(other)
        data = self.data - other.data

        def backward(grad):
            return (
                (self, _unbroadcast(grad, self.shape)),
                (other, _unbroadcast(-grad, other.shape)),
            )

        return self._make(data, (self, other), backward)

    def __rsub__(self, other):
        return self._lift(other).__sub__(self)

    def __mul__(self, other):
        other = self._lift(other)
        data = self.data * other.data

        def backward(grad):
            return (
                (self, _unbroadcast(grad * other.data, self.shape)),
                (other, _unbroadcast(grad * self.data, other.shape)),
            )

        return self._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._lift(other)
        data = self.data / other.data

        def backward(grad):
            return (
                (self, _unbroadcast(grad / other.data, self.shape)),
                (other, _unbroadcast(-grad * self.data / other.data**2, other.shape)),
            )

        return self._make(data, (self, other), backward)

    def __rtruediv__(self, other):
        return self._lift(other).__truediv__(self)

    def __neg__(self):
        def backward(grad):
            return ((self, -grad),)

        return self._make(-self.data, (self,), backward)

    def __pow__(self, exponent: float):
        exponent = float(exponent)
        data = self.data**exponent

        def backward(grad):
            return ((self, grad * exponent * self.data ** (exponent - 1)),)

        return self._make(data, (self,), backward)

    def __matmul__(self, other):
        other = self._lift(other)
        data = self.data @ other.data

        def backward(grad):
            return (
                (self, grad @ other.data.T),
                (other, self.data.T @ grad),
            )

        return self._make(data, (self, other), backward)

    def __getitem__(self, index):
        data = self.data[index]

        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            return ((self, full),)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.shape

        def backward(grad):
            return ((self, grad.reshape(original)),)

        return self._make(data, (self,), backward)

    @property
    def T(self):
        data = self.data.T

        def backward(grad):
            return ((self, grad.T),)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False):
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return ((self, np.broadcast_to(g, self.shape).copy()),)

        return self._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False):
        count = self.size if axis is None else self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------
    # Element-wise nonlinearities
    # ------------------------------------------------------------------
    def relu(self):
        data = np.maximum(self.data, 0.0)

        def backward(grad):
            return ((self, grad * (self.data > 0.0)),)

        return self._make(data, (self,), backward)

    def leaky_relu(self, slope: float = 0.01):
        data = np.where(self.data > 0.0, self.data, slope * self.data)

        def backward(grad):
            return ((self, grad * np.where(self.data > 0.0, 1.0, slope)),)

        return self._make(data, (self,), backward)

    def tanh(self):
        data = np.tanh(self.data)

        def backward(grad):
            return ((self, grad * (1.0 - data**2)),)

        return self._make(data, (self,), backward)

    def sigmoid(self):
        data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad):
            return ((self, grad * data * (1.0 - data)),)

        return self._make(data, (self,), backward)

    def exp(self):
        data = np.exp(np.clip(self.data, -60.0, 60.0))

        def backward(grad):
            return ((self, grad * data),)

        return self._make(data, (self,), backward)

    def log(self):
        data = np.log(self.data)

        def backward(grad):
            return ((self, grad / self.data),)

        return self._make(data, (self,), backward)

    def abs(self):
        data = np.abs(self.data)

        def backward(grad):
            return ((self, grad * np.sign(self.data)),)

        return self._make(data, (self,), backward)

    def clip(self, low: float | None, high: float | None):
        """Element-wise clip with pass-through gradient inside the range."""
        data = np.clip(self.data, low, high)

        def backward(grad):
            mask = np.ones_like(self.data)
            if low is not None:
                mask = mask * (self.data >= low)
            if high is not None:
                mask = mask * (self.data <= high)
            return ((self, grad * mask),)

        return self._make(data, (self,), backward)


# ----------------------------------------------------------------------
# Free functions
# ----------------------------------------------------------------------
def concatenate(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [Tensor._lift(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(grad):
        pieces = np.split(grad, splits, axis=axis)
        return tuple((t, g) for t, g in zip(tensors, pieces))

    out = Tensor(data)
    if any(t.requires_grad for t in tensors):
        out.requires_grad = True
        out._parents = tuple(tensors)
        out._backward = backward
    return out


def maximum(a, b) -> Tensor:
    """Element-wise maximum; ties route gradient to the first argument."""
    a = Tensor._lift(a)
    b = Tensor._lift(b)
    data = np.maximum(a.data, b.data)
    mask = a.data >= b.data

    def backward(grad):
        return (
            (a, _unbroadcast(grad * mask, a.shape)),
            (b, _unbroadcast(grad * ~mask, b.shape)),
        )

    out = Tensor(data)
    if a.requires_grad or b.requires_grad:
        out.requires_grad = True
        out._parents = (a, b)
        out._backward = backward
    return out


def minimum(a, b) -> Tensor:
    """Element-wise minimum; ties route gradient to the first argument."""
    a = Tensor._lift(a)
    b = Tensor._lift(b)
    data = np.minimum(a.data, b.data)
    mask = a.data <= b.data

    def backward(grad):
        return (
            (a, _unbroadcast(grad * mask, a.shape)),
            (b, _unbroadcast(grad * ~mask, b.shape)),
        )

    out = Tensor(data)
    if a.requires_grad or b.requires_grad:
        out.requires_grad = True
        out._parents = (a, b)
        out._backward = backward
    return out


def where(condition: np.ndarray, a, b) -> Tensor:
    """Select ``a`` where ``condition`` holds, else ``b`` (condition is constant)."""
    a = Tensor._lift(a)
    b = Tensor._lift(b)
    condition = np.asarray(condition, dtype=bool)
    data = np.where(condition, a.data, b.data)

    def backward(grad):
        return (
            (a, _unbroadcast(grad * condition, a.shape)),
            (b, _unbroadcast(grad * ~condition, b.shape)),
        )

    out = Tensor(data)
    if a.requires_grad or b.requires_grad:
        out.requires_grad = True
        out._parents = (a, b)
        out._backward = backward
    return out
