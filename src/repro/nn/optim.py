"""Gradient-based optimizers for :mod:`repro.nn` modules."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over a list of parameter tensors."""

    def __init__(self, params: list[Tensor], lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = list(params)
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Tensor], lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.lr * param.grad
            param.data = param.data + velocity


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, params: list[Tensor], lr: float = 1e-3, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
