"""Loss functions for :mod:`repro.nn`."""

from __future__ import annotations

from .tensor import Tensor

__all__ = ["mse_loss", "mae_loss", "huber_loss"]


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error over all elements (Eq. 3 of the paper)."""
    diff = prediction - target
    return (diff * diff).mean()


def mae_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error over all elements."""
    return (prediction - target).abs().mean()


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic near zero, linear in the tails."""
    diff = (prediction - target).abs()
    quadratic = diff.clip(None, delta)
    linear = diff - quadratic
    return (quadratic * quadratic * 0.5 + linear * delta).mean()
