"""Feature scalers used to condition network inputs/outputs.

DNN-Opt trains its critic on heterogeneous spec values (dB, ns, mW, uV...);
the optimizer normalizes specs before training and these scalers provide the
generic machinery (z-score and min-max) with exact inverse transforms.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler", "MinMaxScaler"]


class StandardScaler:
    """Per-column z-score normalization with degenerate-column protection."""

    def __init__(self):
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "StandardScaler":
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        self.mean_ = data.mean(axis=0)
        std = data.std(axis=0)
        # Constant columns scale by 1 so transform is exactly zero there.
        self.scale_ = np.where(std < 1e-12, 1.0, std)
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return (np.asarray(data, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return np.asarray(data, dtype=np.float64) * self.scale_ + self.mean_

    def _check_fitted(self) -> None:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")


class MinMaxScaler:
    """Per-column scaling onto ``[0, 1]`` with degenerate-column protection."""

    def __init__(self):
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "MinMaxScaler":
        data = np.atleast_2d(np.asarray(data, dtype=np.float64))
        self.min_ = data.min(axis=0)
        span = data.max(axis=0) - self.min_
        self.range_ = np.where(span < 1e-12, 1.0, span)
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return (np.asarray(data, dtype=np.float64) - self.min_) / self.range_

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return np.asarray(data, dtype=np.float64) * self.range_ + self.min_

    def _check_fitted(self) -> None:
        if self.min_ is None:
            raise RuntimeError("scaler is not fitted")
