"""A small NumPy deep-learning substrate (autograd, layers, optimizers).

This package replaces PyTorch for the DNN-Opt reproduction: it provides
reverse-mode automatic differentiation on NumPy arrays, MLP building blocks,
Adam/SGD optimizers and the losses/scalers the paper's actor-critic needs.
"""

from .tensor import Tensor, concatenate, maximum, minimum, where
from .layers import MLP, Identity, LeakyReLU, Linear, Module, ReLU, Sequential, Sigmoid, Tanh
from .optim import SGD, Adam, Optimizer
from .losses import huber_loss, mae_loss, mse_loss
from .scaler import MinMaxScaler, StandardScaler

__all__ = [
    "Tensor",
    "concatenate",
    "maximum",
    "minimum",
    "where",
    "Module",
    "Linear",
    "MLP",
    "Sequential",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Optimizer",
    "SGD",
    "Adam",
    "mse_loss",
    "mae_loss",
    "huber_loss",
    "StandardScaler",
    "MinMaxScaler",
]
