"""Netlist-level application of corners and mismatch draws.

Both transforms here are built *on demand* inside a variant problem's
``evaluate`` (they close over nothing but plain data), and are applied
through the :func:`repro.spice.netlist.circuit_transform` compile-time
seam — so any existing circuit problem picks them up without a single
change to its circuit class.  Devices are matched by duck typing (a
``model`` attribute with a ``polarity`` field marks a MOSFET, a ``waveform``
with a ``level`` marks a DC independent source), which keeps this module
free of heavy :mod:`repro.spice` imports.

Mismatch draws follow the Pelgrom model: per-device threshold and gain
offsets with sigma proportional to ``1/sqrt(W L M)``.  The *standard
normal* draw for each device is keyed only by ``(seed, sample index,
device name)`` — common random numbers across designs — while the sigma
scaling uses the device geometry, so larger devices genuinely match
better.  All randomness flows through seeded ``default_rng`` generators
derived via blake2b, making every draw reproducible across processes and
platforms.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import replace
from typing import Any, Callable

import numpy as np

from .corners import Corner

__all__ = ["corner_transform", "mismatch_transform", "MismatchSpec"]

#: Pelgrom threshold-matching coefficient [V * um]: sigma(dVto) for a
#: 1 um^2 gate.  Representative of a 180 nm-class process.
DEFAULT_AVT = 5.0e-3

#: Pelgrom relative-gain coefficient [1 * um]: sigma(dKp/Kp) for 1 um^2.
DEFAULT_AKP = 0.01


def _is_mosfet(device: Any) -> bool:
    model = getattr(device, "model", None)
    return model is not None and hasattr(model, "polarity")


def _scale_supplies(device: Any, corner: Corner) -> None:
    from ..spice.devices.sources import VoltageSource
    waveform = getattr(device, "waveform", None)
    if waveform is None or not hasattr(waveform, "level"):
        return  # not an independent source, or not a DC waveform
    if not isinstance(device, VoltageSource):
        return  # bias current sources keep their levels
    if device.name.upper() not in corner.supplies:
        return
    waveform.level = float(waveform.level) * corner.supply_scale


def corner_transform(corner: Corner) -> Callable[[Any], None]:
    """A circuit transform applying ``corner`` to MOSFETs and supplies.

    MOSFET models are swapped for corner-adjusted copies
    (:meth:`Corner.model_params`); DC levels of voltage sources named in
    ``corner.supplies`` are scaled by ``supply_scale``.  The transform
    mutates the freshly built netlist in place — the compile seam
    guarantees it runs exactly once per circuit.
    """
    def apply(circuit: Any) -> None:
        for device in circuit.devices:
            if _is_mosfet(device):
                device.model = replace(device.model,
                                       **corner.model_params(device.model))
            else:
                _scale_supplies(device, corner)
    return apply


def _standard_draws(seed: int, sample: int, name: str) -> tuple[float, float]:
    """Two reproducible standard-normal draws for one device.

    Keyed by (seed, sample, device name) only — the same device gets the
    same draw in every design of a run (common random numbers), which makes
    Monte Carlo FoM differences between designs reflect sizing, not luck.
    """
    digest = hashlib.blake2b(f"{seed}:{sample}:{name}".encode(),
                             digest_size=8).digest()
    rng = np.random.default_rng(int.from_bytes(digest, "little"))
    z = rng.standard_normal(2)
    return float(z[0]), float(z[1])


class MismatchSpec:
    """Pelgrom mismatch magnitudes for a Monte Carlo scenario."""

    def __init__(self, avt: float = DEFAULT_AVT,
                 akp: float = DEFAULT_AKP) -> None:
        if avt < 0 or akp < 0:
            raise ValueError("mismatch coefficients must be >= 0")
        self.avt = float(avt)
        self.akp = float(akp)

    def __repr__(self) -> str:
        return f"MismatchSpec(avt={self.avt}, akp={self.akp})"


def mismatch_transform(seed: int, sample: int,
                       spec: MismatchSpec) -> Callable[[Any], None]:
    """A circuit transform applying one seeded mismatch draw (``sample``).

    Every MOSFET gets an independent threshold offset and relative gain
    error with Pelgrom sigmas ``avt / sqrt(area)`` and ``akp / sqrt(area)``
    (gate area in um^2, multiplier included).  The relative gain error is
    floored so a pathological draw can never produce a non-positive kp.
    """
    def apply(circuit: Any) -> None:
        for device in circuit.devices:
            if not _is_mosfet(device):
                continue
            area_um2 = (float(device.w) * 1e6) * (float(device.l) * 1e6) \
                * float(getattr(device, "m", 1))
            sigma_scale = 1.0 / math.sqrt(max(area_um2, 1e-12))
            z_vto, z_kp = _standard_draws(seed, sample, device.name)
            dvto = z_vto * spec.avt * sigma_scale
            kp_rel = max(-0.95, z_kp * spec.akp * sigma_scale)
            device.model = replace(device.model,
                                   vto=device.model.vto + dvto,
                                   kp=device.model.kp * (1.0 + kp_rel))
    return apply
