"""Declarative PVT corner descriptions.

A :class:`Corner` names one process/voltage/temperature operating point as
a set of *transform parameters* — MOSFET transconductance scales and
threshold shifts per polarity, a supply-level scale, and an ambient
temperature — that :mod:`repro.scenarios.transform` applies to any circuit
netlist at compile time.  A :class:`ScenarioSet` is an ordered, named
collection of corners with constructors for the usual sign-off sets (the
four-corner :meth:`ScenarioSet.typical` and the full
process x voltage x temperature cross product :meth:`ScenarioSet.pvt`).

Corners are frozen dataclasses with sorted tuple fields only, so their
pickle bytes — and therefore the engine content-fingerprints of the corner
variants built from them — are deterministic across processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

__all__ = ["Corner", "ScenarioSet", "process_corner", "PROCESS_CORNERS",
           "REFERENCE_TEMP_C", "DEFAULT_SUPPLIES"]

#: ambient temperature the device models are characterized at [degrees C]
REFERENCE_TEMP_C = 27.0

_KELVIN = 273.15

#: independent voltage sources treated as supplies by ``supply_scale``
#: (matched case-insensitively against the device name)
DEFAULT_SUPPLIES = ("AVDD", "DVDD", "VBAT", "VCC", "VDD", "VDDA", "VDDD",
                    "VSUP")

#: classic five process corners as (nmos kp scale, pmos kp scale,
#: nmos vto shift [V], pmos vto shift [V]) — fast devices have more drive
#: and a lower threshold, slow devices the opposite
PROCESS_CORNERS: dict[str, tuple[float, float, float, float]] = {
    "tt": (1.0, 1.0, 0.0, 0.0),
    "ff": (1.10, 1.10, -0.03, -0.03),
    "ss": (0.90, 0.90, +0.03, +0.03),
    "fs": (1.10, 0.90, -0.03, +0.03),
    "sf": (0.90, 1.10, +0.03, -0.03),
}

#: threshold drift with temperature [V per degree C] (magnitude decreases
#: as the die heats up — the standard first-order Level-1 tempco)
VTO_TEMPCO = 2.0e-3

#: mobility temperature exponent: kp scales as (T/Tref)^-MOBILITY_EXPONENT
MOBILITY_EXPONENT = 1.5


@dataclass(frozen=True)
class Corner:
    """One process/voltage/temperature variant of a circuit.

    All fields are plain scale factors / shifts relative to the nominal
    netlist, so the identity corner (all defaults) leaves a circuit
    untouched.  Temperature effects (mobility derating, threshold drift)
    are derived in :meth:`model_params` rather than stored, so a corner is
    fully described by its declarative fields.
    """

    name: str
    nmos_kp_scale: float = 1.0
    pmos_kp_scale: float = 1.0
    nmos_dvto: float = 0.0
    pmos_dvto: float = 0.0
    supply_scale: float = 1.0
    temp_c: float = REFERENCE_TEMP_C
    supplies: tuple[str, ...] = DEFAULT_SUPPLIES

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("corner needs a non-empty name")
        for label in ("nmos_kp_scale", "pmos_kp_scale", "supply_scale"):
            if getattr(self, label) <= 0:
                raise ValueError(f"{label} must be > 0")
        if self.temp_c <= -_KELVIN:
            raise ValueError(f"temp_c below absolute zero: {self.temp_c}")
        # Sorted, upper-cased tuple: deterministic pickle bytes regardless
        # of the caller's ordering, and case-insensitive name matching.
        object.__setattr__(
            self, "supplies",
            tuple(sorted({str(s).upper() for s in self.supplies})))

    @property
    def is_nominal(self) -> bool:
        """True when this corner leaves the netlist untouched."""
        return (self.nmos_kp_scale == 1.0 and self.pmos_kp_scale == 1.0
                and self.nmos_dvto == 0.0 and self.pmos_dvto == 0.0
                and self.supply_scale == 1.0
                and self.temp_c == REFERENCE_TEMP_C)

    def model_params(self, model: object) -> dict[str, float]:
        """Corner-adjusted ``kp``/``vto`` for one :class:`MOSModel`.

        Combines the process scale/shift for the model's polarity with the
        first-order temperature effects: mobility derating
        ``kp ~ (T/Tref)^-1.5`` and threshold drift ``-2 mV/K``.
        """
        polarity = getattr(model, "polarity", "n")
        if polarity == "p":
            kp_scale, dvto = self.pmos_kp_scale, self.pmos_dvto
        else:
            kp_scale, dvto = self.nmos_kp_scale, self.nmos_dvto
        t_ratio = (self.temp_c + _KELVIN) / (REFERENCE_TEMP_C + _KELVIN)
        kp = float(getattr(model, "kp")) * kp_scale * t_ratio ** (-MOBILITY_EXPONENT)
        vto = (float(getattr(model, "vto")) + dvto
               - VTO_TEMPCO * (self.temp_c - REFERENCE_TEMP_C))
        return {"kp": kp, "vto": vto}

    def describe(self) -> str:
        """Human-oriented one-liner, e.g. ``ss_lo_hot: ss V*0.90 125.0C``."""
        process = "custom"
        for label, params in PROCESS_CORNERS.items():
            if params == (self.nmos_kp_scale, self.pmos_kp_scale,
                          self.nmos_dvto, self.pmos_dvto):
                process = label
                break
        return (f"{self.name}: {process} V*{self.supply_scale:.2f} "
                f"{self.temp_c:.1f}C")


def process_corner(name: str, process: str, *, supply_scale: float = 1.0,
                   temp_c: float = REFERENCE_TEMP_C,
                   supplies: Iterable[str] = DEFAULT_SUPPLIES) -> Corner:
    """A :class:`Corner` from a named process point (tt/ff/ss/fs/sf)."""
    try:
        nmos_kp, pmos_kp, nmos_dvto, pmos_dvto = PROCESS_CORNERS[process]
    except KeyError:
        raise ValueError(
            f"unknown process corner {process!r}; "
            f"pick from {sorted(PROCESS_CORNERS)}") from None
    return Corner(name, nmos_kp_scale=nmos_kp, pmos_kp_scale=pmos_kp,
                  nmos_dvto=nmos_dvto, pmos_dvto=pmos_dvto,
                  supply_scale=supply_scale, temp_c=temp_c,
                  supplies=tuple(supplies))


@dataclass(frozen=True)
class ScenarioSet:
    """An ordered, named collection of :class:`Corner` variants.

    The *first* corner is the set's cheap screening point: adaptive gating
    (see :class:`repro.scenarios.CornerProblem`) evaluates it for every
    design and fans the rest out only for promising ones.  Constructors
    put the nominal corner first for exactly this reason.
    """

    corners: tuple[Corner, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        corners = tuple(self.corners)
        if not corners:
            raise ValueError("ScenarioSet needs at least one corner")
        names = [corner.name for corner in corners]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate corner names: {names}")
        object.__setattr__(self, "corners", corners)

    def __len__(self) -> int:
        return len(self.corners)

    def __iter__(self) -> Iterator[Corner]:
        return iter(self.corners)

    def __getitem__(self, index: int) -> Corner:
        return self.corners[index]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(corner.name for corner in self.corners)

    @staticmethod
    def typical(*, supply_tol: float = 0.10, temp_lo_c: float = -40.0,
                temp_hi_c: float = 125.0) -> "ScenarioSet":
        """The classic 4-corner sign-off set.

        Nominal (tt, nominal supply, 27 C) first, then the three stress
        points that bound most analog metrics in practice: slow devices at
        low supply and high temperature (headroom/speed), fast devices at
        high supply and low temperature (power/stability), and the skewed
        fast-N/slow-P point at low supply (offset/balance).
        """
        return ScenarioSet((
            process_corner("nom", "tt"),
            process_corner("ss_lo_hot", "ss", supply_scale=1.0 - supply_tol,
                           temp_c=temp_hi_c),
            process_corner("ff_hi_cold", "ff", supply_scale=1.0 + supply_tol,
                           temp_c=temp_lo_c),
            process_corner("fs_lo_cold", "fs", supply_scale=1.0 - supply_tol,
                           temp_c=temp_lo_c),
        ))

    @staticmethod
    def pvt(processes: Iterable[str] = ("tt", "ss", "ff"),
            supply_scales: Iterable[float] = (0.9, 1.0, 1.1),
            temps_c: Iterable[float] = (-40.0, 27.0, 125.0)) -> "ScenarioSet":
        """Full process x voltage x temperature cross product.

        The nominal point (tt, 1.0, 27 C) is moved to the front when
        present so it doubles as the gating corner.
        """
        corners = []
        for process in processes:
            for scale in supply_scales:
                for temp in temps_c:
                    label = (f"{process}_v{scale:.2f}_t"
                             + f"{temp:g}".replace("-", "m").replace(".", "p"))
                    corners.append(process_corner(
                        label, process, supply_scale=float(scale),
                        temp_c=float(temp)))
        corners.sort(key=lambda corner: not corner.is_nominal)
        return ScenarioSet(tuple(corners))

    def with_supplies(self, supplies: Iterable[str]) -> "ScenarioSet":
        """The same set targeting a different list of supply-source names."""
        names = tuple(supplies)
        return ScenarioSet(tuple(replace(corner, supplies=names)
                                 for corner in self.corners))
