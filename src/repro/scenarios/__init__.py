"""Scenario diversity: PVT corners, mismatch Monte Carlo, yield-aware FoM.

The paper sizes at nominal conditions; real sign-off is worst-case over
process/voltage/temperature corners and local mismatch.  This subsystem
wraps any existing :class:`~repro.problems.base.OptimizationProblem` in a
scenario view — :class:`CornerProblem` (declarative PVT corner fan-out) or
:class:`MonteCarloProblem` (seeded per-device Pelgrom mismatch draws) —
without touching circuit classes, and optimizes the aggregated
(worst-case or quantile) figure of merit directly::

    from repro.scenarios import CornerProblem, ScenarioSet

    robust = CornerProblem(circuit.problem(), ScenarioSet.typical(),
                           aggregate="worst", gate_margin=0.5)
    history = Study(DNNOpt(robust, budget=200, seed=1)).run()
    print(history.summary()["scenarios"])  # corners simulated vs. gated

Fan-out rides the ``EvalEngine.submit()/gather()`` seams, so corners of
one design evaluate in parallel across threads, processes or a fleet —
bit-identical to serial — and every corner variant carries its own engine
content fingerprint (cache tiers never alias corners).
"""

from .corners import (DEFAULT_SUPPLIES, PROCESS_CORNERS, REFERENCE_TEMP_C,
                      Corner, ScenarioSet, process_corner)
from .problem import (CornerProblem, CornerVariant, MismatchVariant,
                      MonteCarloProblem, ScenarioProblem)
from .transform import MismatchSpec, corner_transform, mismatch_transform

__all__ = [
    "Corner",
    "ScenarioSet",
    "process_corner",
    "PROCESS_CORNERS",
    "REFERENCE_TEMP_C",
    "DEFAULT_SUPPLIES",
    "ScenarioProblem",
    "CornerProblem",
    "MonteCarloProblem",
    "CornerVariant",
    "MismatchVariant",
    "MismatchSpec",
    "corner_transform",
    "mismatch_transform",
]
