"""Scenario-wrapped optimization problems: corner fan-out and Monte Carlo.

:class:`ScenarioProblem` wraps any :class:`~repro.problems.base
.OptimizationProblem` with a list of *variant problems* (per-corner or
per-mismatch-sample views of the base) and aggregates their raw rows into
one robust row per design.  The wrapper presents the same design space,
objective and specs as the base problem, so every optimizer, history and
FoM computation works unchanged — only the meaning of a row shifts from
"nominal performance" to "worst-case (or quantile) performance".

Evaluation rides the engine seams rather than running its own loop: the
:class:`~repro.core.engine.EvalEngine` recognizes the ``scenario_submit`` /
``scenario_evaluate`` hooks and delegates here; this module then submits
each variant as an ordinary engine batch, so per-corner evaluations share
the cache/dedup/disk tiers (under the *variant's own* content fingerprint
— corners never alias) and parallelize across whatever backend or fleet
the engine is configured with.  Aggregation order is fixed, so histories
are bit-identical across serial, thread, async and fleet backends.

Adaptive gating evaluates the cheap first variant (nominal) for every
design and fans the remaining variants out only when the nominal FoM is
within ``gate_margin`` of the best aggregated FoM observed so far.  Gate
state is derived exclusively from *told* rows (via the ``scenario_observe``
hook :meth:`repro.core.history.Optimizer.tell` calls), which makes gating
decisions deterministic across backends and exactly replayable from a
:class:`~repro.core.study.Study` checkpoint resume.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Sequence

import numpy as np

from ..core.fom import fom_from_raw
from ..problems.base import OptimizationProblem
from ..spice.netlist import circuit_transform
from .corners import Corner, ScenarioSet
from .transform import MismatchSpec, corner_transform, mismatch_transform

__all__ = ["ScenarioProblem", "CornerProblem", "MonteCarloProblem",
           "CornerVariant", "MismatchVariant"]


class CornerVariant(OptimizationProblem):
    """One corner's view of a base problem.

    Evaluation applies the corner's netlist transform around the base
    problem's own ``evaluate`` (rounding, failure handling and shape
    validation included).  The variant shares the base problem's space
    object, so canonical design bytes — and therefore engine cache keys
    *within* a variant — line up with the base; the pickle payload adds the
    corner, so the engine content fingerprint differs *between* variants
    and corners never alias in the cache/dedup/disk tiers.
    """

    def __init__(self, base: Any, corner: Corner) -> None:
        super().__init__(base.space, base.objective, list(base.specs),
                         name=f"{base.name}@{corner.name}")
        self.base = base
        self.corner = corner

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        with circuit_transform(corner_transform(self.corner)):
            return np.asarray(self.base.evaluate(x), dtype=np.float64)

    def _evaluate(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError("CornerVariant overrides evaluate()")


class MismatchVariant(OptimizationProblem):
    """One seeded mismatch sample's view of a base problem."""

    def __init__(self, base: Any, seed: int, sample: int,
                 spec: MismatchSpec) -> None:
        super().__init__(base.space, base.objective, list(base.specs),
                         name=f"{base.name}@mc{sample}")
        self.base = base
        self.seed = int(seed)
        self.sample = int(sample)
        self.mismatch = spec

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        transform = mismatch_transform(self.seed, self.sample, self.mismatch)
        with circuit_transform(transform):
            return np.asarray(self.base.evaluate(x), dtype=np.float64)

    def _evaluate(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError("MismatchVariant overrides evaluate()")


class _Runtime:
    """Per-instance mutable scenario state.

    Never pickled (see ``ScenarioProblem.__getstate__``): the memo and gate
    state are rebuilt from told rows by ``scenario_observe``, which is how a
    checkpoint resume replays gating decisions exactly.
    """

    def __init__(self) -> None:
        self.lock = threading.Lock()
        # -- everything below is guarded by: lock --
        #: canonical design bytes -> aggregated row, for every told design
        self.memo: dict[bytes, np.ndarray] = {}
        self.n_observed = 0        # told rows (gate warmup counter)
        self.best_fom = math.inf   # best aggregated FoM among told rows
        self.n_designs = 0         # designs decided by the fan-out machinery
        self.n_fanned = 0          # designs fanned to the full variant set
        self.n_gated = 0           # designs stopped at the nominal variant
        self.corner_sims = 0       # non-nominal variant evaluations requested
        self.corner_sims_saved = 0  # non-nominal evaluations gating skipped
        self.n_memo_hits = 0       # designs answered from the told-row memo
        self.samples_total = 0     # variant rows inspected for feasibility
        self.samples_feasible = 0  # ... of which were feasible


class _ScenarioHandle:
    """In-flight record of one scenario batch (duck-typed eval handle).

    ``EvalEngine.gather`` recognizes non-:class:`EvalHandle` handles and
    calls :meth:`gather` back with itself, so this object can drive the
    second fan-out wave (full variant sets for designs that cleared the
    gate) through the same engine the nominal wave used.
    """

    def __init__(self, problem: "ScenarioProblem", keys: list[bytes],
                 resolved: dict[bytes, np.ndarray], todo_keys: list[bytes],
                 todo_X: np.ndarray, nominal_handle: Any) -> None:
        self.problem = problem
        self.keys = keys
        self.resolved = resolved
        self.todo_keys = todo_keys
        self.todo_X = todo_X
        self.nominal_handle = nominal_handle

    def gather(self, engine: Any) -> np.ndarray:
        problem = self.problem
        rows = dict(self.resolved)
        if self.todo_keys:
            F0 = np.atleast_2d(engine.gather(self.nominal_handle))
            fan_mask = problem._gate_decide(F0)
            X_fan = self.todo_X[fan_mask]
            tail = problem.variants[1:]
            F_tail: list[np.ndarray] = []
            if len(X_fan) and tail:
                # One engine batch per non-nominal variant: corners of one
                # design spread across workers/threads, and each batch keys
                # the cache under its variant's own content fingerprint.
                handles = [engine.submit(variant, X_fan) for variant in tail]
                F_tail = [np.atleast_2d(engine.gather(h)) for h in handles]
            fan_pos = 0
            n_feasible = 0
            n_rows = 0
            for j, key in enumerate(self.todo_keys):
                if fan_mask[j] and tail:
                    stack = np.vstack(
                        [F0[j]] + [F[fan_pos] for F in F_tail])
                    rows[key] = problem._aggregate(stack)
                    n_feasible += int(problem.is_feasible(stack).sum())
                    n_rows += len(stack)
                    fan_pos += 1
                else:
                    rows[key] = F0[j]
            problem._record_gather(fan_mask, n_feasible, n_rows)
        if not self.keys:
            return np.empty((0, 1 + problem.num_constraints))
        return np.vstack([rows[key] for key in self.keys])


class ScenarioProblem(OptimizationProblem):
    """Base wrapper fanning each design out to K variant evaluations.

    Parameters
    ----------
    problem:
        The base :class:`OptimizationProblem` (shared space/objective/specs).
    variants:
        Ordered variant problems; index 0 is the cheap screening variant
        evaluated for every design (usually the base problem itself).
    aggregate:
        ``"worst"`` (default) or a quantile ``q`` in ``(0, 1]``.  Each
        column is aggregated *in its oriented direction*: the objective and
        ``max``-specs take the upper ``q``-quantile, ``min``-specs the lower
        — so ``q = 1.0`` is exact worst-case and ``q = 0.9`` means "each
        metric holds at its 90th-percentile-bad variant" (a yield-style
        row).  Aggregated rows stay structurally valid performance rows.
    gate_margin:
        ``None`` disables adaptive gating (every design fans out to all
        variants).  A float enables it: after ``gate_warmup`` told designs,
        a design only fans out when its *nominal* FoM is within
        ``gate_margin`` of the best aggregated FoM told so far; gated
        designs record their nominal row.
    gate_warmup:
        Told designs before gating starts making decisions (default 8).
    """

    def __init__(self, problem: Any, variants: Sequence[Any], *,
                 aggregate: float | str = "worst",
                 gate_margin: float | None = None,
                 gate_warmup: int = 8,
                 name: str = "") -> None:
        if hasattr(problem, "scenario_submit"):
            raise ValueError("cannot nest scenario problems")
        if not variants:
            raise ValueError("need at least one variant")
        if aggregate != "worst":
            q = float(aggregate)
            if not 0.0 < q <= 1.0:
                raise ValueError(
                    f"aggregate must be 'worst' or a quantile in (0, 1], "
                    f"got {aggregate!r}")
        if gate_margin is not None and gate_margin < 0:
            raise ValueError("gate_margin must be >= 0")
        if gate_warmup < 0:
            raise ValueError("gate_warmup must be >= 0")
        super().__init__(problem.space, problem.objective,
                         list(problem.specs),
                         name=name or f"{problem.name}[x{len(variants)}]")
        self.problem = problem
        self.variants = list(variants)
        self.aggregate = aggregate
        self.gate_margin = gate_margin
        self.gate_warmup = int(gate_warmup)
        self._rt = _Runtime()

    # -- pickling ----------------------------------------------------------
    # The runtime (lock, memo, gate state) is stripped so the wrapper's
    # pickle bytes — its engine/checkpoint content fingerprint — stay
    # stable while a run mutates gate state, and identical across
    # processes.  A fresh runtime is rebuilt by scenario_observe re-tells.
    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        del state["_rt"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._rt = _Runtime()

    # -- direct (out-of-loop) evaluation -----------------------------------
    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Aggregated row for one design, all variants, no engine/gating."""
        rows = np.vstack([variant.evaluate(x) for variant in self.variants])
        return self._aggregate(rows)

    def _evaluate(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError("ScenarioProblem overrides evaluate()")

    # -- engine seam hooks --------------------------------------------------
    def scenario_evaluate(self, engine: Any, X: np.ndarray) -> np.ndarray:
        """Blocking fan-out: the body of ``engine.evaluate_batch`` for us."""
        return self.scenario_submit(engine, X).gather(engine)

    def scenario_submit(self, engine: Any, X: np.ndarray) -> _ScenarioHandle:
        """Start the nominal wave for a batch; returns a duck-typed handle.

        Designs already *told* this run are answered from the memo (their
        aggregated row is final — re-deciding the gate could change it);
        everything else is submitted to the first variant now.  The full
        fan-out for designs that clear the gate happens at gather time,
        when the nominal rows exist.
        """
        X = self.space.canonical(np.atleast_2d(np.asarray(X, dtype=np.float64)))
        keys = [np.ascontiguousarray(x).tobytes() for x in X]
        resolved: dict[bytes, np.ndarray] = {}
        todo_keys: list[bytes] = []
        todo_rows: list[np.ndarray] = []
        seen: set[bytes] = set()
        with self._rt.lock:
            for key, x in zip(keys, X):
                if key in seen:
                    continue
                seen.add(key)
                memo_row = self._rt.memo.get(key)
                if memo_row is not None:
                    resolved[key] = memo_row
                    self._rt.n_memo_hits += 1
                else:
                    todo_keys.append(key)
                    todo_rows.append(x)
        nominal_handle = None
        if todo_rows:
            nominal_handle = engine.submit(self.variants[0],
                                           np.asarray(todo_rows))
        return _ScenarioHandle(self, keys, resolved, todo_keys,
                               np.asarray(todo_rows), nominal_handle)

    def scenario_observe(self, X: np.ndarray, F: np.ndarray) -> None:
        """Consume told rows (:meth:`Optimizer.tell` calls this).

        Updates the memo and the gate state.  Because *only* told rows feed
        the gate, decisions depend exclusively on the deterministic tell
        order — identical across backends, and rebuilt exactly when a
        checkpoint resume re-tells the recorded prefix.
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        F = np.atleast_2d(np.asarray(F, dtype=np.float64))
        fom = fom_from_raw(self, F)
        with self._rt.lock:
            for x, row, value in zip(X, F, fom):
                self._rt.memo[np.ascontiguousarray(x).tobytes()] = \
                    np.array(row, dtype=np.float64)
                self._rt.n_observed += 1
                if value < self._rt.best_fom:
                    self._rt.best_fom = float(value)

    def scenario_stats(self) -> dict[str, Any]:
        """Gating/fan-out counters (``history.summary()["scenarios"]``)."""
        with self._rt.lock:
            stats: dict[str, Any] = {
                "corners": len(self.variants),
                "aggregate": self.aggregate,
                "designs": self._rt.n_designs,
                "fanned_out": self._rt.n_fanned,
                "gated": self._rt.n_gated,
                "corner_sims": self._rt.corner_sims,
                "corner_sims_saved": self._rt.corner_sims_saved,
                "memo_hits": self._rt.n_memo_hits,
            }
            if self._rt.samples_total:
                stats["sample_yield"] = round(
                    self._rt.samples_feasible / self._rt.samples_total, 4)
        if self.gate_margin is not None:
            stats["gate_margin"] = self.gate_margin
            stats["gate_warmup"] = self.gate_warmup
        return stats

    # -- internals ----------------------------------------------------------
    def _gate_decide(self, F0: np.ndarray) -> np.ndarray:
        """Fan-out mask for a wave of nominal rows (True = full set)."""
        n = len(F0)
        if self.gate_margin is None or len(self.variants) == 1:
            return np.ones(n, dtype=bool)
        fom0 = fom_from_raw(self, F0)
        with self._rt.lock:
            if self._rt.n_observed < self.gate_warmup:
                return np.ones(n, dtype=bool)
            threshold = self._rt.best_fom + self.gate_margin
        return np.asarray(fom0 <= threshold, dtype=bool)

    def _aggregate(self, rows: np.ndarray) -> np.ndarray:
        """Oriented per-column aggregate of one design's variant rows."""
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        q = 1.0 if self.aggregate == "worst" else float(self.aggregate)
        out = np.empty(rows.shape[1])
        out[0] = np.quantile(rows[:, 0], q)  # objective: larger is worse
        for i, spec in enumerate(self.specs):
            col = rows[:, 1 + i]
            # Worse for a min-spec is *small*, for a max-spec *large*.
            out[1 + i] = np.quantile(col, 1.0 - q if spec.kind == "min"
                                     else q)
        return out

    def _record_gather(self, fan_mask: np.ndarray, n_feasible: int,
                       n_rows: int) -> None:
        tail = max(0, len(self.variants) - 1)
        n_fanned = int(fan_mask.sum())
        n_gated = len(fan_mask) - n_fanned
        with self._rt.lock:
            self._rt.n_designs += len(fan_mask)
            self._rt.n_fanned += n_fanned
            self._rt.n_gated += n_gated
            self._rt.corner_sims += n_fanned * tail
            self._rt.corner_sims_saved += n_gated * tail
            self._rt.samples_feasible += n_feasible
            self._rt.samples_total += n_rows

    # -- audit helpers -------------------------------------------------------
    def variant_rows(self, engine: Any, x: np.ndarray) -> np.ndarray:
        """Per-variant raw rows for one design, shape ``(K, 1+m)``."""
        X = np.atleast_2d(np.asarray(x, dtype=np.float64))
        handles = [engine.submit(variant, X) for variant in self.variants]
        return np.vstack([engine.gather(handle) for handle in handles])

    def feasible_fraction(self, engine: Any, x: np.ndarray) -> float:
        """Fraction of variants where ``x`` meets every spec (yield proxy)."""
        rows = self.variant_rows(engine, x)
        return float(np.mean(self.is_feasible(rows)))


class CornerProblem(ScenarioProblem):
    """Worst-case-over-PVT-corners view of a base problem.

    The first corner of ``scenarios`` is the screening variant; when it is
    the identity corner (``Corner.is_nominal``) the *base problem itself*
    serves as variant 0, so nominal rows share the engine cache with plain
    nominal runs of the same problem.
    """

    def __init__(self, problem: Any, scenarios: ScenarioSet | Sequence[Corner],
                 *, aggregate: float | str = "worst",
                 gate_margin: float | None = None,
                 gate_warmup: int = 8) -> None:
        if not isinstance(scenarios, ScenarioSet):
            scenarios = ScenarioSet(tuple(scenarios))
        variants: list[Any] = [
            problem if corner.is_nominal else CornerVariant(problem, corner)
            for corner in scenarios]
        super().__init__(problem, variants, aggregate=aggregate,
                         gate_margin=gate_margin, gate_warmup=gate_warmup,
                         name=f"{problem.name}[corners:{len(scenarios)}]")
        self.scenarios = scenarios


class MonteCarloProblem(ScenarioProblem):
    """Seeded per-device mismatch Monte Carlo with a yield-style FoM.

    Variant 0 is the base problem (the mean-device screening point);
    variants 1..n are Pelgrom mismatch draws keyed by ``(seed, sample,
    device name)`` — common random numbers across designs, reproducible
    across processes.  The default ``aggregate=0.9`` asks every metric to
    hold at its 90th-percentile-bad sample (a ~90%-yield row);
    ``aggregate="worst"`` is worst-sample.  ``scenario_stats()`` also
    reports ``sample_yield``, the observed fraction of feasible variant
    rows among fanned-out designs.
    """

    def __init__(self, problem: Any, n_samples: int = 16, *, seed: int = 0,
                 aggregate: float | str = 0.9,
                 avt: float | None = None, akp: float | None = None,
                 gate_margin: float | None = None,
                 gate_warmup: int = 8) -> None:
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        kwargs: dict[str, float] = {}
        if avt is not None:
            kwargs["avt"] = avt
        if akp is not None:
            kwargs["akp"] = akp
        spec = MismatchSpec(**kwargs)
        variants: list[Any] = [problem] + [
            MismatchVariant(problem, seed, sample, spec)
            for sample in range(1, n_samples + 1)]
        super().__init__(problem, variants, aggregate=aggregate,
                         gate_margin=gate_margin, gate_warmup=gate_warmup,
                         name=f"{problem.name}[mc:{n_samples}]")
        self.n_samples = int(n_samples)
        self.seed = int(seed)
        self.mismatch = spec
