"""Waveform and frequency-response measurements.

These free functions implement the ``.measure`` vocabulary the circuit
testbenches need: threshold crossings, delays, settling time, overshoot in
the time domain; gain, unity-gain frequency, phase/gain margin, bandwidth
and peaking in the frequency domain.
"""

from __future__ import annotations

import numpy as np

from .errors import AnalysisError

__all__ = [
    "crossings",
    "delay_between",
    "rise_time",
    "settling_time",
    "overshoot",
    "steady_state",
    "db20",
    "dc_gain_db",
    "unity_gain_frequency",
    "phase_margin",
    "gain_margin_db",
    "bandwidth_3db",
    "gain_at",
    "peaking_db",
    "peak_frequency",
]


# ----------------------------------------------------------------------
# Time domain
# ----------------------------------------------------------------------
def crossings(t: np.ndarray, y: np.ndarray, level: float,
              direction: str = "both") -> np.ndarray:
    """Interpolated times where ``y`` crosses ``level``.

    ``direction`` is ``"rise"``, ``"fall"`` or ``"both"``.
    """
    t = np.asarray(t, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if t.shape != y.shape:
        raise AnalysisError("t and y must have the same shape")
    above = y > level
    switch = np.nonzero(above[1:] != above[:-1])[0]
    times = []
    for k in switch:
        rising = not above[k]
        if direction == "rise" and not rising:
            continue
        if direction == "fall" and rising:
            continue
        frac = (level - y[k]) / (y[k + 1] - y[k])
        times.append(t[k] + frac * (t[k + 1] - t[k]))
    return np.asarray(times)


def delay_between(t: np.ndarray, y_from: np.ndarray, y_to: np.ndarray,
                  level_from: float, level_to: float,
                  edge_from: str = "both", edge_to: str = "both",
                  occurrence: int = 0, slack: float = 0.0) -> float:
    """Delay from the first crossing of ``y_from`` to the next of ``y_to``.

    ``slack`` accepts target crossings up to that long *before* the
    reference crossing — needed when the device under test is faster than
    the stimulus edge, so its output crosses mid-rail before the input's
    50% point (the delay then comes out slightly negative).
    """
    from_times = crossings(t, y_from, level_from, edge_from)
    if len(from_times) <= occurrence:
        raise AnalysisError("reference edge not found")
    t0 = from_times[occurrence]
    to_times = crossings(t, y_to, level_to, edge_to)
    later = to_times[to_times >= t0 - slack]
    if len(later) == 0:
        raise AnalysisError("target edge not found after reference edge")
    return float(later[0] - t0)


def rise_time(t: np.ndarray, y: np.ndarray, low_frac: float = 0.1,
              high_frac: float = 0.9) -> float:
    """10-90% (by default) rise time using initial/final values as rails."""
    y0, y1 = float(y[0]), float(y[-1])
    lo = y0 + low_frac * (y1 - y0)
    hi = y0 + high_frac * (y1 - y0)
    direction = "rise" if y1 > y0 else "fall"
    t_lo = crossings(t, y, lo, direction)
    t_hi = crossings(t, y, hi, direction)
    if len(t_lo) == 0 or len(t_hi) == 0:
        raise AnalysisError("rise time edges not found")
    return float(t_hi[0] - t_lo[0])


def settling_time(t: np.ndarray, y: np.ndarray, final: float | None = None,
                  tolerance: float = 0.01, t_start: float = 0.0) -> float:
    """Time (relative to ``t_start``) after which ``y`` stays inside the band
    ``final * (1 +/- tolerance)`` (absolute band if ``final`` is ~0)."""
    t = np.asarray(t)
    y = np.asarray(y)
    if final is None:
        final = float(y[-1])
    band = abs(final) * tolerance if abs(final) > 1e-12 else tolerance
    outside = np.abs(y - final) > band
    mask = t >= t_start
    if not np.any(mask):
        raise AnalysisError("t_start beyond the end of the waveform")
    indices = np.nonzero(outside & mask)[0]
    if len(indices) == 0:
        return 0.0
    last_out = indices[-1]
    if last_out + 1 >= len(t):
        raise AnalysisError("waveform does not settle within the window")
    return float(t[last_out + 1] - t_start)


def overshoot(y: np.ndarray, final: float | None = None) -> float:
    """Fractional overshoot beyond the final value (0 when monotonic)."""
    y = np.asarray(y)
    if final is None:
        final = float(y[-1])
    start = float(y[0])
    swing = final - start
    if abs(swing) < 1e-15:
        return 0.0
    peak = np.max(y) if swing > 0 else np.min(y)
    return max(0.0, float((peak - final) / swing))


def steady_state(y: np.ndarray, fraction: float = 0.05) -> float:
    """Mean of the trailing ``fraction`` of samples (settled value)."""
    y = np.asarray(y)
    n_tail = max(2, int(len(y) * fraction))
    return float(np.mean(y[-n_tail:]))


# ----------------------------------------------------------------------
# Frequency domain
# ----------------------------------------------------------------------
def db20(h: np.ndarray) -> np.ndarray:
    """Magnitude in dB (floored to avoid log of zero)."""
    return 20.0 * np.log10(np.maximum(np.abs(h), 1e-30))


def dc_gain_db(h: np.ndarray) -> float:
    """Gain of the lowest-frequency point, in dB."""
    return float(db20(np.asarray(h))[0])


def _interp_log_freq(freqs: np.ndarray, values: np.ndarray, target: float) -> float:
    """Frequency where ``values`` crosses ``target`` (log-f interpolation)."""
    below = values <= target
    switch = np.nonzero(below[1:] != below[:-1])[0]
    if len(switch) == 0:
        raise AnalysisError("crossing not found in the analysis band")
    k = switch[0]
    logf = np.log10(freqs)
    frac = (target - values[k]) / (values[k + 1] - values[k])
    return float(10 ** (logf[k] + frac * (logf[k + 1] - logf[k])))


def unity_gain_frequency(freqs: np.ndarray, h: np.ndarray) -> float:
    """Frequency where |H| falls to 1 (0 dB)."""
    return _interp_log_freq(np.asarray(freqs), db20(np.asarray(h)), 0.0)


def phase_margin(freqs: np.ndarray, h: np.ndarray) -> float:
    """Phase margin in degrees: 180 + phase(H) at the unity-gain frequency."""
    freqs = np.asarray(freqs)
    h = np.asarray(h)
    fu = unity_gain_frequency(freqs, h)
    phase = np.unwrap(np.angle(h)) * 180.0 / np.pi
    # Normalize so the DC phase is 0 (an inverting output just shifts by 180).
    phase = phase - phase[0]
    phase_at_fu = float(np.interp(np.log10(fu), np.log10(freqs), phase))
    return 180.0 + phase_at_fu


def gain_margin_db(freqs: np.ndarray, h: np.ndarray) -> float:
    """Gain margin in dB: -|H| (dB) where the phase crosses -180 degrees."""
    freqs = np.asarray(freqs)
    h = np.asarray(h)
    phase = np.unwrap(np.angle(h)) * 180.0 / np.pi
    phase = phase - phase[0]
    try:
        f180 = _interp_log_freq(freqs, phase, -180.0)
    except AnalysisError:
        return float("inf")  # phase never reaches -180: unconditionally stable
    mag = db20(h)
    mag_at = float(np.interp(np.log10(f180), np.log10(freqs), mag))
    return -mag_at


def bandwidth_3db(freqs: np.ndarray, h: np.ndarray) -> float:
    """-3 dB bandwidth relative to the DC gain."""
    mag = db20(np.asarray(h))
    return _interp_log_freq(np.asarray(freqs), mag, mag[0] - 3.0)


def gain_at(freqs: np.ndarray, h: np.ndarray, freq: float) -> float:
    """|H| in dB at ``freq`` (log-frequency interpolation)."""
    freqs = np.asarray(freqs)
    return float(np.interp(np.log10(freq), np.log10(freqs), db20(np.asarray(h))))


def peaking_db(freqs: np.ndarray, h: np.ndarray) -> float:
    """Peak gain above the DC gain, in dB (0 for monotone roll-off)."""
    mag = db20(np.asarray(h))
    return float(max(0.0, np.max(mag) - mag[0]))


def peak_frequency(freqs: np.ndarray, h: np.ndarray) -> float:
    """Frequency of the gain peak."""
    mag = db20(np.asarray(h))
    return float(np.asarray(freqs)[int(np.argmax(mag))])
