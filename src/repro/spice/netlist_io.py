"""SPICE-format netlist export and import.

Writes :class:`~repro.spice.netlist.Circuit` objects as classic
SPICE-syntax decks (so reproduced sizings can be inspected or re-simulated
in an external simulator), and parses the same dialect back.  Supported
cards: R, C, L, V, I (DC / PULSE / SIN), E, G, F, H, D, M with bundled
model names, ``*`` comments and ``.title`` / ``.model`` / ``.end`` lines.
"""

from __future__ import annotations

from .devices.controlled import CCCS, CCVS, VCCS, VCVS
from .devices.diode import Diode
from .devices.mosfet import MOSFET, NMOS_7, NMOS_180, PMOS_7, PMOS_180, MOSModel
from .devices.passives import Capacitor, Inductor, Resistor
from .devices.sources import DC, CurrentSource, Pulse, Sin, VoltageSource
from .errors import NetlistError
from .netlist import Circuit

__all__ = ["write_netlist", "parse_netlist", "BUNDLED_MODELS"]

BUNDLED_MODELS: dict[str, MOSModel] = {
    "nmos180": NMOS_180,
    "pmos180": PMOS_180,
    "nmos7": NMOS_7,
    "pmos7": PMOS_7,
}


def _fmt(value: float) -> str:
    return f"{value:.6g}"


def _source_card(device) -> str:
    wave = device.waveform
    if isinstance(wave, DC):
        text = _fmt(wave.level)
    elif isinstance(wave, Pulse):
        text = (f"PULSE({_fmt(wave.v1)} {_fmt(wave.v2)} {_fmt(wave.delay)} "
                f"{_fmt(wave.rise)} {_fmt(wave.fall)} {_fmt(wave.width)} "
                f"{_fmt(wave.period)})")
    elif isinstance(wave, Sin):
        text = (f"SIN({_fmt(wave.offset)} {_fmt(wave.amplitude)} {_fmt(wave.freq)} "
                f"{_fmt(wave.delay)} {_fmt(wave.damping)})")
    else:
        raise NetlistError(f"{device.name}: cannot export waveform {type(wave).__name__}")
    if device.ac:
        text += f" AC {_fmt(device.ac)}"
    return text


def write_netlist(circuit: Circuit) -> str:
    """Render ``circuit`` as a SPICE deck string."""
    lines = [f"* {circuit.title}"]
    models: dict[str, MOSModel] = {}
    for dev in circuit.devices:
        n = dev.nodes
        if isinstance(dev, Resistor):
            lines.append(f"{dev.name} {n[0]} {n[1]} {_fmt(dev.value)}")
        elif isinstance(dev, Capacitor):
            lines.append(f"{dev.name} {n[0]} {n[1]} {_fmt(dev.value)}")
        elif isinstance(dev, Inductor):
            lines.append(f"{dev.name} {n[0]} {n[1]} {_fmt(dev.value)}")
        elif isinstance(dev, VoltageSource):
            lines.append(f"{dev.name} {n[0]} {n[1]} {_source_card(dev)}")
        elif isinstance(dev, CurrentSource):
            lines.append(f"{dev.name} {n[0]} {n[1]} {_source_card(dev)}")
        elif isinstance(dev, VCVS):
            lines.append(f"{dev.name} {n[0]} {n[1]} {n[2]} {n[3]} {_fmt(dev.gain)}")
        elif isinstance(dev, VCCS):
            lines.append(f"{dev.name} {n[0]} {n[1]} {n[2]} {n[3]} {_fmt(dev.gm)}")
        elif isinstance(dev, CCCS):
            lines.append(f"{dev.name} {n[0]} {n[1]} {dev.sense} {_fmt(dev.gain)}")
        elif isinstance(dev, CCVS):
            lines.append(f"{dev.name} {n[0]} {n[1]} {dev.sense} {_fmt(dev.r)}")
        elif isinstance(dev, Diode):
            lines.append(f"{dev.name} {n[0]} {n[1]} DMOD IS={_fmt(dev.i_s)} N={_fmt(dev.n)}")
        elif isinstance(dev, MOSFET):
            models[dev.model.name] = dev.model
            # SPICE requires MOSFET cards to start with 'M'.
            card_name = dev.name if dev.name[0].upper() == "M" else f"M_{dev.name}"
            lines.append(f"{card_name} {n[0]} {n[1]} {n[2]} {n[3]} {dev.model.name} "
                         f"W={_fmt(dev.w)} L={_fmt(dev.l)} M={dev.m}")
        else:
            raise NetlistError(f"cannot export device type {type(dev).__name__}")
    for name, model in models.items():
        polarity = "NMOS" if model.polarity == "n" else "PMOS"
        lines.append(f".model {name} {polarity} KP={_fmt(model.kp)} VTO={_fmt(model.vto)} "
                     f"LAMBDA={_fmt(model.lam)} LREF={_fmt(model.lref)} "
                     f"GAMMA={_fmt(model.gamma)} PHI={_fmt(model.phi)} "
                     f"COX={_fmt(model.cox)} CGSO={_fmt(model.cgso)} "
                     f"CGDO={_fmt(model.cgdo)} CJ={_fmt(model.cj)} "
                     f"KF={_fmt(model.kf)} SMOOTH={_fmt(model.smooth)}")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def _parse_params(tokens: list[str]) -> dict[str, str]:
    params = {}
    for token in tokens:
        if "=" in token:
            key, _, value = token.partition("=")
            params[key.lower()] = value
    return params


def _parse_source_value(rest: list[str]):
    """Parse a source value clause -> (waveform, ac)."""
    joined = " ".join(rest)
    ac = 0.0
    if " ac " in joined.lower():
        head, _, tail = joined.lower().partition(" ac ")
        ac = float(tail.split()[0])
        joined = joined[: len(head)]
    text = joined.strip()
    upper = text.upper()
    if upper.startswith("PULSE"):
        args = [a for a in text[text.index("(") + 1: text.rindex(")")].split()]
        return Pulse(*args), ac
    if upper.startswith("SIN"):
        args = [a for a in text[text.index("(") + 1: text.rindex(")")].split()]
        return Sin(*args), ac
    return DC(text.split()[0]), ac


def parse_netlist(text: str, extra_models: dict[str, MOSModel] | None = None) -> Circuit:
    """Parse a SPICE deck produced by :func:`write_netlist` (or compatible)."""
    models = dict(BUNDLED_MODELS)
    if extra_models:
        models.update(extra_models)

    # First pass: collect .model cards.
    raw_lines = [line.strip() for line in text.splitlines()]
    title = "imported"
    for line in raw_lines:
        if line.lower().startswith(".model"):
            tokens = line.split()
            name = tokens[1]
            polarity = "n" if tokens[2].upper() == "NMOS" else "p"
            params = _parse_params(tokens[3:])
            models[name] = MOSModel(
                name, polarity,
                kp=float(params.get("kp", 200e-6)),
                vto=float(params.get("vto", 0.5)),
                lam=float(params.get("lambda", 0.05)),
                lref=float(params.get("lref", 1e-6)),
                gamma=float(params.get("gamma", 0.0)),
                phi=float(params.get("phi", 0.7)),
                cox=float(params.get("cox", 8e-3)),
                cgso=float(params.get("cgso", 3e-10)),
                cgdo=float(params.get("cgdo", 3e-10)),
                cj=float(params.get("cj", 1e-3)),
                kf=float(params.get("kf", 1e-27)),
                smooth=float(params.get("smooth", 2e-3)),
            )

    circuit = None
    for line in raw_lines:
        if not line or line.startswith("*"):
            if line.startswith("*") and circuit is None:
                title = line[1:].strip() or title
            continue
        if line.lower().startswith((".model", ".end", ".title")):
            continue
        if circuit is None:
            circuit = Circuit(title)
        tokens = line.split()
        name = tokens[0]
        kind = name[0].upper()
        if kind == "R":
            circuit.resistor(name, tokens[1], tokens[2], tokens[3])
        elif kind == "C":
            circuit.capacitor(name, tokens[1], tokens[2], tokens[3])
        elif kind == "L":
            circuit.inductor(name, tokens[1], tokens[2], tokens[3])
        elif kind == "V":
            wave, ac = _parse_source_value(tokens[3:])
            circuit.add(VoltageSource(name, tokens[1], tokens[2], wave, ac=ac))
        elif kind == "I":
            wave, ac = _parse_source_value(tokens[3:])
            circuit.add(CurrentSource(name, tokens[1], tokens[2], wave, ac=ac))
        elif kind == "E":
            circuit.vcvs(name, tokens[1], tokens[2], tokens[3], tokens[4], float(tokens[5]))
        elif kind == "G":
            circuit.vccs(name, tokens[1], tokens[2], tokens[3], tokens[4], float(tokens[5]))
        elif kind == "F":
            circuit.cccs(name, tokens[1], tokens[2], tokens[3], float(tokens[4]))
        elif kind == "H":
            circuit.ccvs(name, tokens[1], tokens[2], tokens[3], float(tokens[4]))
        elif kind == "D":
            params = _parse_params(tokens[4:])
            circuit.diode(name, tokens[1], tokens[2],
                          i_s=float(params.get("is", 1e-14)),
                          n=float(params.get("n", 1.0)))
        elif kind == "M":
            model_name = tokens[5]
            if model_name not in models:
                raise NetlistError(f"{name}: unknown model {model_name!r}")
            params = _parse_params(tokens[6:])
            circuit.mosfet(name, tokens[1], tokens[2], tokens[3], tokens[4],
                           models[model_name],
                           w=float(params["w"]), l=float(params["l"]),
                           m=int(float(params.get("m", 1))))
        else:
            raise NetlistError(f"unsupported card: {line!r}")
    if circuit is None:
        raise NetlistError("empty netlist")
    return circuit
