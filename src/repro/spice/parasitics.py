"""Deterministic layout-parasitic estimation (MLParest substitute).

The paper runs MLParest [Shook et al., DAC 2020] inside the DNN-Opt loop so
industrial sizings are evaluated with estimated post-layout parasitics.  We
substitute a deterministic estimator with the same interface: given a
netlist, add wiring capacitance to every node proportional to the connected
device geometry (bigger devices mean longer wires and more diffusion), plus
a fixed per-node routing floor.
"""

from __future__ import annotations

from .devices.mosfet import MOSFET
from .devices.passives import Capacitor
from .netlist import GROUND_NAMES, Circuit

__all__ = ["estimate_parasitics", "ParasiticEstimator"]


class ParasiticEstimator:
    """Adds estimated wiring capacitance to each non-ground node.

    Parameters
    ----------
    cap_per_width:
        Capacitance per meter of connected MOSFET gate width [F/m]; models
        diffusion and local interconnect growing with device size.
    floor:
        Fixed routing capacitance added to every node [F].
    """

    def __init__(self, cap_per_width: float = 0.1e-15 / 1e-6, floor: float = 0.2e-15):
        self.cap_per_width = float(cap_per_width)
        self.floor = float(floor)

    def node_capacitance(self, circuit: Circuit) -> dict[str, float]:
        """Estimated extra capacitance for every non-ground node."""
        caps: dict[str, float] = {}
        for node in circuit.node_names():
            caps[node] = self.floor
        for device in circuit.devices:
            if not isinstance(device, MOSFET):
                continue
            width = device.w * device.m
            drain, gate, source, _bulk = device.nodes
            for node in (drain, gate, source):
                if node in GROUND_NAMES:
                    continue
                caps[node] = caps.get(node, self.floor) + self.cap_per_width * width
        return caps

    def apply(self, circuit: Circuit, skip: set[str] | frozenset[str] = frozenset()) -> int:
        """Add the estimated capacitors (named ``CPAR_<node>``) to ``circuit``.

        Nodes in ``skip`` (e.g. ideal supply nets) are left untouched.
        Returns the number of capacitors added.
        """
        added = 0
        for node, cap in self.node_capacitance(circuit).items():
            if node in skip or cap <= 0.0:
                continue
            circuit.add(Capacitor(f"CPAR_{node}", node, "0", cap))
            added += 1
        return added


def estimate_parasitics(circuit: Circuit, skip: set[str] | frozenset[str] = frozenset(),
                        **kwargs) -> int:
    """Convenience wrapper: apply a default :class:`ParasiticEstimator`."""
    return ParasiticEstimator(**kwargs).apply(circuit, skip=skip)
