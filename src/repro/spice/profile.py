"""Process-global hot-path counters for the simulator.

The solver and the small-signal analyses accumulate wall-clock seconds and
event counts into a module-level table so callers (the benchmark harness,
:class:`repro.core.engine.EvalEngine`) can report assemble/solve/overhead
breakdowns without threading a profiler object through every analysis.

Counters are always on: the cost is two ``perf_counter`` calls per Newton
iteration, negligible next to a dense solve.  ``snapshot``/``delta`` let a
caller measure just its own window of activity; counts accumulated inside
``process``-backend pool workers stay in those workers.

These are best-effort diagnostics, not ledgers: the table is process-global
and updates are plain ``+=`` (no lock — a lock would tax every Newton
iteration).  When several threads simulate concurrently (the engine's
``thread`` backend, or thread-pool trial fallbacks), one caller's
snapshot/delta window also captures the other threads' work and racing
increments can be lost, so per-engine phase splits are only faithful for
single-threaded dispatch.
"""

from __future__ import annotations

from time import perf_counter

__all__ = ["COUNTER_NAMES", "add", "counters", "delta", "reset", "snapshot"]

#: every counter the hot path maintains; ``*_s`` entries are seconds.
COUNTER_NAMES = (
    "assemble_s",          # Jacobian/residual assembly inside Newton
    "solve_s",             # dense linear solves inside Newton
    "ac_build_s",          # small-signal G/C/rhs assembly
    "ac_solve_s",          # complex solves in AC and noise analyses
    "newton_iterations",   # total Newton iterations
    "newton_solves",       # newton_solve invocations
    "ac_solves",           # complex linear systems solved (one per frequency)
)

_counters: dict[str, float] = {name: 0.0 for name in COUNTER_NAMES}


def add(name: str, value: float) -> None:
    """Accumulate ``value`` into counter ``name``."""
    _counters[name] += value


def counters() -> dict[str, float]:
    """Live view (a copy) of every counter."""
    return dict(_counters)


def snapshot() -> dict[str, float]:
    """Alias of :func:`counters`, for before/after delta bookkeeping."""
    return dict(_counters)


def delta(before: dict[str, float]) -> dict[str, float]:
    """Counter increments since ``before`` (a :func:`snapshot` result)."""
    return {name: _counters[name] - before.get(name, 0.0) for name in COUNTER_NAMES}


def reset() -> None:
    """Zero every counter."""
    for name in COUNTER_NAMES:
        _counters[name] = 0.0


class timer:
    """``with timer("assemble_s"):`` — adds the elapsed seconds on exit."""

    __slots__ = ("name", "_t0")

    def __init__(self, name: str):
        self.name = name

    def __enter__(self) -> "timer":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        _counters[self.name] += perf_counter() - self._t0
        return False
