"""Modified-nodal-analysis system containers.

Two workspaces are provided: :class:`System` for real Newton iterations
(DC/transient) and :class:`ACSystem` for complex small-signal analyses.
Both drop contributions to the ground index ``-1`` so devices never need to
special-case ground connections.

Workspaces are designed to be *reused*: the compiled stamping plan
(:mod:`repro.spice.plan`) allocates one :class:`System` per circuit and
overwrites ``J``/``f`` in place every Newton iteration instead of
allocating a fresh container, and the AC analyses cache one
:class:`ACSystem` per operating point (rebuilding only ``rhs``).  Consumers
must therefore treat a returned workspace as valid only until the next
assembly call on the same circuit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["System", "ACSystem"]


class System:
    """Real Newton workspace: Jacobian ``J`` and KCL residual ``f``."""

    def __init__(self, size: int):
        self.size = size
        self.J = np.zeros((size, size))
        self.f = np.zeros(size)
        #: multiplies independent source values during source-stepping homotopy
        self.source_scale = 1.0
        #: simulation time for transient stamps; ``None`` selects the DC value
        self.time: float | None = None

    def reset(self) -> None:
        self.J[:] = 0.0
        self.f[:] = 0.0

    def add_jac(self, row: int, col: int, value: float) -> None:
        if row >= 0 and col >= 0:
            self.J[row, col] += value

    def add_res(self, row: int, value: float) -> None:
        if row >= 0:
            self.f[row] += value

    def stamp_conductance(self, a: int, b: int, g: float, x: np.ndarray) -> None:
        """Stamp a linear conductance between nodes ``a`` and ``b``.

        Adds both the Jacobian entries and the residual current ``g (va-vb)``.
        """
        va = x[a] if a >= 0 else 0.0
        vb = x[b] if b >= 0 else 0.0
        current = g * (va - vb)
        self.add_res(a, current)
        self.add_res(b, -current)
        self.add_jac(a, a, g)
        self.add_jac(a, b, -g)
        self.add_jac(b, a, -g)
        self.add_jac(b, b, g)


class ACSystem:
    """Complex small-signal workspace: ``(G + j omega C) x = rhs``."""

    def __init__(self, size: int):
        self.size = size
        self.G = np.zeros((size, size))
        self.C = np.zeros((size, size))
        self.rhs = np.zeros(size, dtype=complex)

    def add_G(self, row: int, col: int, value: float) -> None:
        if row >= 0 and col >= 0:
            self.G[row, col] += value

    def add_C(self, row: int, col: int, value: float) -> None:
        if row >= 0 and col >= 0:
            self.C[row, col] += value

    def add_rhs(self, row: int, value: complex) -> None:
        if row >= 0:
            self.rhs[row] += value

    def stamp_G_pair(self, a: int, b: int, g: float) -> None:
        self.add_G(a, a, g)
        self.add_G(a, b, -g)
        self.add_G(b, a, -g)
        self.add_G(b, b, g)

    def stamp_C_pair(self, a: int, b: int, c: float) -> None:
        self.add_C(a, a, c)
        self.add_C(a, b, -c)
        self.add_C(b, a, -c)
        self.add_C(b, b, c)

    def matrix(self, omega: float) -> np.ndarray:
        return self.G + 1j * omega * self.C
