"""DC operating-point analysis."""

from __future__ import annotations

import numpy as np

from ..devices.mosfet import MOSFET
from ..devices.sources import VoltageSource
from ..mna import System
from ..plan import stamping_mode
from ..solver import solve_dc

__all__ = ["OperatingPoint", "operating_point"]


class OperatingPoint:
    """Converged DC solution with convenience accessors.

    Device accessors use the compiled circuit's name->(device, index) map,
    so ``mosfet_op``/``source_power`` are O(1) instead of scanning the
    netlist — they sit inside testbench measurement loops.
    """

    def __init__(self, compiled, x: np.ndarray):
        self.compiled = compiled
        self.x = x
        #: cached small-signal (G, C) assembly, owned by the AC analysis
        self._smallsignal = None

    def v(self, node: str) -> float:
        """DC voltage of ``node``."""
        return self.compiled.voltage(self.x, node)

    def i(self, vsource: str) -> float:
        """Branch current of voltage source ``vsource`` (flowing + -> -)."""
        return self.compiled.branch_current(self.x, vsource)

    def source_power(self, vsource: str) -> float:
        """Power *delivered by* the source (positive for a supply)."""
        entry = self.compiled.device_map.get(vsource)
        if entry is None or not isinstance(entry[0], VoltageSource):
            raise KeyError(vsource)
        device, idx = entry
        return -device.voltage_at(None) * self.x[idx.branches[0]]

    def total_supply_power(self, prefix: str = "VDD") -> float:
        """Sum of delivered power over all sources whose name starts with ``prefix``."""
        total = 0.0
        for device, idx in self.compiled.vsource_entries:
            if device.name.startswith(prefix):
                total += -device.voltage_at(None) * self.x[idx.branches[0]]
        return total

    def mosfet_op(self, name: str):
        """Small-signal operating record of MOSFET ``name``."""
        entry = self.compiled.device_map.get(name)
        if entry is None or not isinstance(entry[0], MOSFET):
            raise KeyError(name)
        device, idx = entry
        return device.operating_point(self.x, idx)

    def mosfet_ops(self) -> dict:
        """Operating records for every MOSFET, keyed by device name."""
        return {device.name: device.operating_point(self.x, idx)
                for device, idx in self.compiled.mosfet_entries}


def _assemble_factory(compiled):
    """The Newton ``assemble(x, gmin, source_scale)`` closure.

    The default implementation delegates to the compiled stamping plan
    (baked linear Jacobian + vectorized nonlinear scatter into a reused
    workspace); the legacy mode re-stamps every device through per-entry
    Python calls and is kept as the numerical reference.
    """
    if stamping_mode() == "plan":
        plan = compiled.plan()

        def assemble(x, gmin, source_scale):
            return plan.assemble_static(x, gmin=gmin, source_scale=source_scale,
                                        time=None)

        return assemble

    def assemble(x, gmin, source_scale):
        sys = System(compiled.size)
        sys.source_scale = source_scale
        sys.time = None
        for device, idx in compiled.devices_with_indices():
            device.stamp_static(sys, x, idx)
        for i in range(compiled.num_nodes):
            sys.add_jac(i, i, gmin)
            sys.add_res(i, gmin * x[i])
        return sys

    return assemble


def nodeset_vector(circuit, values: dict[str, float]) -> np.ndarray:
    """Initial-guess vector from a ``{node: voltage}`` mapping (a SPICE
    ``.nodeset``): unlisted nodes and branch currents start at zero, and
    names not present in this circuit are ignored (testbench variants of
    one circuit can share a nodeset)."""
    compiled = circuit.compile()
    x0 = np.zeros(compiled.size)
    for node, value in values.items():
        if node in compiled.node_index:
            x0[compiled.node_index[node]] = value
    return x0


def operating_point(circuit, x0: np.ndarray | None = None, *,
                    nodeset: dict[str, float] | None = None,
                    check: bool = True) -> OperatingPoint:
    """Solve the DC operating point of ``circuit``.

    ``x0`` warm-starts Newton (e.g. from a nearby sizing during sweeps);
    ``nodeset`` builds the warm start from node voltages instead — used to
    steer multi-equilibrium circuits (feedback loops, latches) toward the
    intended operating branch.  ``check=False`` skips the DC-connectivity
    validation.
    """
    compiled = circuit.compile()
    if check:
        compiled.check_dc_connectivity()
    if x0 is None and nodeset:
        x0 = nodeset_vector(circuit, nodeset)
    x = solve_dc(compiled, _assemble_factory(compiled), x0)
    return OperatingPoint(compiled, x)
