"""Circuit analyses: OP, DC sweep, AC, transient, noise."""

from .ac import ACResult, ac_analysis
from .dc import DCSweepResult, dc_sweep
from .noise import NoiseResult, noise_analysis
from .op import OperatingPoint, nodeset_vector, operating_point
from .tran import TransientResult, transient

__all__ = [
    "OperatingPoint",
    "operating_point",
    "nodeset_vector",
    "DCSweepResult",
    "dc_sweep",
    "ACResult",
    "ac_analysis",
    "TransientResult",
    "transient",
    "NoiseResult",
    "noise_analysis",
]
