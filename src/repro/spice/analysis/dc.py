"""DC sweep analysis (source value sweeps with warm-started Newton)."""

from __future__ import annotations

import numpy as np

from ..devices.sources import DC, CurrentSource, VoltageSource
from ..errors import AnalysisError
from ..solver import solve_dc
from .op import OperatingPoint, _assemble_factory

__all__ = ["DCSweepResult", "dc_sweep"]


class DCSweepResult:
    """Solutions of a DC sweep: one operating point per sweep value."""

    def __init__(self, compiled, values: np.ndarray, solutions: np.ndarray):
        self.compiled = compiled
        self.values = values
        self.solutions = solutions  # shape (n_points, system_size)

    def v(self, node: str) -> np.ndarray:
        """Voltage of ``node`` across the sweep."""
        index = self.compiled.node(node)
        if index < 0:
            return np.zeros(len(self.values))
        return self.solutions[:, index]

    def i(self, vsource: str) -> np.ndarray:
        """Branch current of ``vsource`` across the sweep."""
        branch = self.compiled.vsource_branch[vsource]
        return self.solutions[:, branch]

    def op_at(self, index: int) -> OperatingPoint:
        return OperatingPoint(self.compiled, self.solutions[index])


def dc_sweep(circuit, source_name: str, values) -> DCSweepResult:
    """Sweep the DC value of an independent source and re-solve each point.

    The source's waveform is temporarily replaced by a DC level and restored
    afterwards.  Consecutive solutions warm-start each other, which keeps
    Newton fast and follows a continuous branch of the DC solution.
    """
    values = np.asarray(values, dtype=np.float64)
    source = circuit[source_name]
    if not isinstance(source, (VoltageSource, CurrentSource)):
        raise AnalysisError(f"{source_name!r} is not an independent source")
    compiled = circuit.compile()
    compiled.check_dc_connectivity()

    # One compiled circuit and one assembly closure serve the whole sweep
    # (the stamping plan re-reads the swapped-in DC level every assembly).
    assemble = _assemble_factory(compiled)
    original = source.waveform
    solutions = np.zeros((len(values), compiled.size))
    x_prev = None
    try:
        for row, value in enumerate(values):
            source.waveform = DC(value)
            x_prev = solve_dc(compiled, assemble, x_prev)
            solutions[row] = x_prev
    finally:
        source.waveform = original
    return DCSweepResult(compiled, values, solutions)
