"""Small-signal noise analysis.

Every device contributes noise current sources (resistor thermal noise,
MOSFET channel thermal + flicker noise).  At each frequency the adjoint
system ``A^T y = e_out`` is solved once; ``|y_p - y_m|^2`` is then the
squared transfer impedance from a unit current injected between nodes
``(p, m)`` to the output, so the total output voltage noise PSD is

    S_out(f) = sum_j |H_j(f)|^2 S_j(f)

Input-referred noise divides by the squared gain from a designated input
source.  Total RMS noise integrates the PSD over the analysis band.
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError
from .ac import build_smallsignal

__all__ = ["NoiseResult", "noise_analysis"]


class NoiseResult:
    """Output-referred (and optionally input-referred) noise spectra."""

    def __init__(self, freqs: np.ndarray, output_psd: np.ndarray,
                 contributions: dict[str, np.ndarray],
                 gain: np.ndarray | None):
        self.freqs = freqs
        #: output voltage noise PSD, V^2/Hz
        self.output_psd = output_psd
        #: per-noise-source output PSD contributions, V^2/Hz
        self.contributions = contributions
        #: complex input->output gain (None when no input source was given)
        self.gain = gain

    @property
    def input_psd(self) -> np.ndarray:
        """Input-referred noise PSD, V^2/Hz."""
        if self.gain is None:
            raise AnalysisError("noise analysis was run without an input source")
        return self.output_psd / np.maximum(np.abs(self.gain) ** 2, 1e-300)

    def output_rms(self, fmin: float | None = None, fmax: float | None = None) -> float:
        """Integrated RMS output noise over [fmin, fmax] (defaults: whole band)."""
        return self._rms(self.output_psd, fmin, fmax)

    def input_rms(self, fmin: float | None = None, fmax: float | None = None) -> float:
        """Integrated RMS input-referred noise over the band."""
        return self._rms(self.input_psd, fmin, fmax)

    def _rms(self, psd: np.ndarray, fmin, fmax) -> float:
        mask = np.ones(len(self.freqs), dtype=bool)
        if fmin is not None:
            mask &= self.freqs >= fmin
        if fmax is not None:
            mask &= self.freqs <= fmax
        if mask.sum() < 2:
            raise AnalysisError("noise integration needs at least two in-band points")
        return float(np.sqrt(np.trapezoid(psd[mask], self.freqs[mask])))

    def dominant_contributors(self, top: int = 5) -> list[tuple[str, float]]:
        """Noise sources ranked by integrated output variance."""
        totals = {name: float(np.trapezoid(psd, self.freqs))
                  for name, psd in self.contributions.items()}
        ranked = sorted(totals.items(), key=lambda item: item[1], reverse=True)
        return ranked[:top]


def noise_analysis(circuit, op, freqs, output: str | tuple[str, str], *,
                   input_source: str | None = None) -> NoiseResult:
    """Compute output noise at node ``output`` (or differential pair).

    ``input_source`` names an independent source with ``ac != 0`` used to
    compute the gain for input referral.
    """
    freqs = np.asarray(freqs, dtype=np.float64)
    compiled = circuit.compile()
    sys = build_smallsignal(compiled, op.x)

    if isinstance(output, tuple):
        out_p = compiled.node(output[0])
        out_m = compiled.node(output[1])
    else:
        out_p = compiled.node(output)
        out_m = -1
    e_out = np.zeros(compiled.size)
    if out_p >= 0:
        e_out[out_p] += 1.0
    if out_m >= 0:
        e_out[out_m] -= 1.0

    sources = []
    for device, idx in compiled.devices_with_indices():
        sources.extend(device.noise_sources(op.x, idx))
    if not sources:
        raise AnalysisError("circuit has no noise sources")

    want_gain = input_source is not None
    if want_gain and not np.any(np.abs(sys.rhs) > 0):
        raise AnalysisError(f"input source {input_source!r} must have ac != 0")

    output_psd = np.zeros(len(freqs))
    contributions = {src.name: np.zeros(len(freqs)) for src in sources}
    gain = np.zeros(len(freqs), dtype=complex) if want_gain else None

    for row, freq in enumerate(freqs):
        matrix = sys.matrix(2.0 * np.pi * freq)
        adjoint = np.linalg.solve(matrix.T, e_out.astype(complex))
        for src in sources:
            yp = adjoint[src.node_plus] if src.node_plus >= 0 else 0.0
            ym = adjoint[src.node_minus] if src.node_minus >= 0 else 0.0
            h_squared = abs(ym - yp) ** 2
            contribution = h_squared * src.psd(freq)
            contributions[src.name][row] = contribution
            output_psd[row] += contribution
        if want_gain:
            response = np.linalg.solve(matrix, sys.rhs)
            gain[row] = e_out @ response

    return NoiseResult(freqs, output_psd, contributions, gain)
