"""Small-signal noise analysis.

Every device contributes noise current sources (resistor thermal noise,
MOSFET channel thermal + flicker noise).  At each frequency the adjoint
system ``A^T y = e_out`` is solved once; ``|y_p - y_m|^2`` is then the
squared transfer impedance from a unit current injected between nodes
``(p, m)`` to the output, so the total output voltage noise PSD is

    S_out(f) = sum_j |H_j(f)|^2 S_j(f)

Input-referred noise divides by the squared gain from a designated input
source.  Total RMS noise integrates the PSD over the analysis band.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from .. import profile
from ..errors import AnalysisError
from ..plan import stamping_mode
from .ac import _resolve_compiled, _smallsignal_for

__all__ = ["NoiseResult", "noise_analysis"]


class NoiseResult:
    """Output-referred (and optionally input-referred) noise spectra."""

    def __init__(self, freqs: np.ndarray, output_psd: np.ndarray,
                 contributions: dict[str, np.ndarray],
                 gain: np.ndarray | None):
        self.freqs = freqs
        #: output voltage noise PSD, V^2/Hz
        self.output_psd = output_psd
        #: per-noise-source output PSD contributions, V^2/Hz
        self.contributions = contributions
        #: complex input->output gain (None when no input source was given)
        self.gain = gain

    @property
    def input_psd(self) -> np.ndarray:
        """Input-referred noise PSD, V^2/Hz."""
        if self.gain is None:
            raise AnalysisError("noise analysis was run without an input source")
        return self.output_psd / np.maximum(np.abs(self.gain) ** 2, 1e-300)

    def output_rms(self, fmin: float | None = None, fmax: float | None = None) -> float:
        """Integrated RMS output noise over [fmin, fmax] (defaults: whole band)."""
        return self._rms(self.output_psd, fmin, fmax)

    def input_rms(self, fmin: float | None = None, fmax: float | None = None) -> float:
        """Integrated RMS input-referred noise over the band."""
        return self._rms(self.input_psd, fmin, fmax)

    def _rms(self, psd: np.ndarray, fmin, fmax) -> float:
        mask = np.ones(len(self.freqs), dtype=bool)
        if fmin is not None:
            mask &= self.freqs >= fmin
        if fmax is not None:
            mask &= self.freqs <= fmax
        if mask.sum() < 2:
            raise AnalysisError("noise integration needs at least two in-band points")
        return float(np.sqrt(np.trapezoid(psd[mask], self.freqs[mask])))

    def dominant_contributors(self, top: int = 5) -> list[tuple[str, float]]:
        """Noise sources ranked by integrated output variance."""
        totals = {name: float(np.trapezoid(psd, self.freqs))
                  for name, psd in self.contributions.items()}
        ranked = sorted(totals.items(), key=lambda item: item[1], reverse=True)
        return ranked[:top]


def noise_analysis(circuit, op, freqs, output: str | tuple[str, str], *,
                   input_source: str | None = None) -> NoiseResult:
    """Compute output noise at node ``output`` (or differential pair).

    ``input_source`` names an independent source with ``ac != 0`` used to
    compute the gain for input referral.
    """
    freqs = np.asarray(freqs, dtype=np.float64)
    compiled = _resolve_compiled(circuit, op)
    sys = _smallsignal_for(op, compiled)

    if isinstance(output, tuple):
        out_p = compiled.node(output[0])
        out_m = compiled.node(output[1])
    else:
        out_p = compiled.node(output)
        out_m = -1
    e_out = np.zeros(compiled.size)
    if out_p >= 0:
        e_out[out_p] += 1.0
    if out_m >= 0:
        e_out[out_m] -= 1.0

    sources = []
    for device, idx in compiled.devices_with_indices():
        sources.extend(device.noise_sources(op.x, idx))
    if not sources:
        raise AnalysisError("circuit has no noise sources")

    want_gain = input_source is not None
    if want_gain and not np.any(np.abs(sys.rhs) > 0):
        raise AnalysisError(f"input source {input_source!r} must have ac != 0")

    if stamping_mode() == "plan":
        return _noise_batched(sys, compiled, freqs, e_out, sources, want_gain)

    output_psd = np.zeros(len(freqs))
    contributions = {src.name: np.zeros(len(freqs)) for src in sources}
    gain = np.zeros(len(freqs), dtype=complex) if want_gain else None

    for row, freq in enumerate(freqs):
        matrix = sys.matrix(2.0 * np.pi * freq)
        t0 = perf_counter()
        adjoint = np.linalg.solve(matrix.T, e_out.astype(complex))
        profile.add("ac_solve_s", perf_counter() - t0)
        profile.add("ac_solves", 1)
        for src in sources:
            yp = adjoint[src.node_plus] if src.node_plus >= 0 else 0.0
            ym = adjoint[src.node_minus] if src.node_minus >= 0 else 0.0
            h_squared = abs(ym - yp) ** 2
            contribution = h_squared * src.psd(freq)
            contributions[src.name][row] = contribution
            output_psd[row] += contribution
        if want_gain:
            t0 = perf_counter()
            response = np.linalg.solve(matrix, sys.rhs)
            profile.add("ac_solve_s", perf_counter() - t0)
            profile.add("ac_solves", 1)
            gain[row] = e_out @ response

    return NoiseResult(freqs, output_psd, contributions, gain)


def _noise_batched(sys, compiled, freqs: np.ndarray, e_out: np.ndarray,
                   sources, want_gain: bool) -> NoiseResult:
    """All frequencies at once: one stacked adjoint solve ``A^T y = e_out``
    (plus one forward solve for the gain), then vectorized transfer-impedance
    and PSD accumulation over the noise sources."""
    n_freq = len(freqs)
    size = compiled.size
    omegas = 2.0 * np.pi * freqs
    matrices = sys.G[None, :, :] + 1j * omegas[:, None, None] * sys.C[None, :, :]

    t0 = perf_counter()
    if n_freq:
        rhs_adj = np.repeat(e_out[None, :, None].astype(complex), n_freq, axis=0)
        adjoint = np.linalg.solve(matrices.transpose(0, 2, 1), rhs_adj)[:, :, 0]
    else:
        adjoint = np.zeros((0, size), dtype=complex)
    gain = None
    if want_gain:
        if n_freq:
            rhs = np.repeat(sys.rhs[None, :, None].astype(complex), n_freq, axis=0)
            gain = np.linalg.solve(matrices, rhs)[:, :, 0] @ e_out
        else:
            gain = np.zeros(0, dtype=complex)
    profile.add("ac_solve_s", perf_counter() - t0)
    profile.add("ac_solves", (2 if want_gain else 1) * n_freq)

    # Transfer impedances: index the adjoint with ground mapped to a zero slot.
    adjoint_aug = np.concatenate(
        [adjoint, np.zeros((n_freq, 1), dtype=complex)], axis=1)
    plus = np.array([src.node_plus for src in sources], dtype=np.intp)
    minus = np.array([src.node_minus for src in sources], dtype=np.intp)
    yp = adjoint_aug[:, np.where(plus < 0, size, plus)]
    ym = adjoint_aug[:, np.where(minus < 0, size, minus)]
    h_squared = np.abs(ym - yp) ** 2                       # (n_freq, n_src)

    # Per-source PSDs over the whole grid; the NoiseSource contract lets
    # ``psd`` broadcast over an ndarray of frequencies (constant PSDs may
    # return a scalar).
    psd = np.empty((n_freq, len(sources)))
    for col, src in enumerate(sources):
        psd[:, col] = np.broadcast_to(
            np.asarray(src.psd(freqs), dtype=np.float64), freqs.shape)

    contribution = h_squared * psd
    contributions = {src.name: contribution[:, col]
                     for col, src in enumerate(sources)}
    return NoiseResult(freqs, contribution.sum(axis=1), contributions, gain)
