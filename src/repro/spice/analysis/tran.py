"""Transient analysis with trapezoidal integration.

Time stepping is nominally fixed at ``tstep`` but lands exactly on waveform
breakpoints (pulse edges, PWL corners) and halves the step on Newton
failures.  The first step after t=0 and after every breakpoint uses backward
Euler to damp the trapezoidal rule's tendency to ring on discontinuities.
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError, ConvergenceError
from ..mna import System
from ..plan import stamping_mode
from ..solver import newton_solve
from .op import nodeset_vector, operating_point

__all__ = ["TransientResult", "transient"]

_MIN_DT_FRACTION = 1e-6  # smallest allowed dt as a fraction of tstep


class TransientResult:
    """Sampled waveforms from a transient run."""

    def __init__(self, compiled, times: np.ndarray, solutions: np.ndarray):
        self.compiled = compiled
        self.t = times
        self.solutions = solutions  # (n_samples, size)

    def v(self, node: str) -> np.ndarray:
        index = self.compiled.node(node)
        if index < 0:
            return np.zeros(len(self.t))
        return self.solutions[:, index]

    def i(self, vsource: str) -> np.ndarray:
        branch = self.compiled.vsource_branch[vsource]
        return self.solutions[:, branch]

    def diff(self, plus: str, minus: str) -> np.ndarray:
        return self.v(plus) - self.v(minus)


def _collect_breakpoints(circuit, tstop: float) -> list[float]:
    from ..devices.sources import CurrentSource, VoltageSource

    points: set[float] = set()
    for device in circuit.devices:
        if isinstance(device, (VoltageSource, CurrentSource)):
            for bp in device.waveform.breakpoints(tstop):
                if 0.0 < bp < tstop:
                    points.add(bp)
    return sorted(points)


def transient(circuit, tstep: float, tstop: float, *, uic: bool = False,
              ics: dict[str, float] | None = None,
              max_newton: int = 60) -> TransientResult:
    """Integrate the circuit from 0 to ``tstop`` with nominal step ``tstep``.

    ``uic=True`` skips the DC operating point and starts from the node
    voltages in ``ics`` (unspecified nodes start at 0 V) — required for
    bistable circuits such as latches.
    """
    if tstep <= 0 or tstop <= 0 or tstep > tstop:
        raise AnalysisError("need 0 < tstep <= tstop")
    compiled = circuit.compile()

    if uic:
        x = nodeset_vector(circuit, ics or {})
    else:
        compiled.check_dc_connectivity()
        op_x0 = nodeset_vector(circuit, ics) if ics else None
        x = operating_point(circuit, x0=op_x0, check=False).x.copy()

    # Integration state + per-step assembly.  The plan path bakes the affine
    # (linear + companion) part of each step once — Newton iterations inside
    # a step are then pure vectorized work; the legacy path re-stamps every
    # device per iteration and is kept as the numerical reference.
    use_plan = stamping_mode() == "plan"
    if use_plan:
        plan = compiled.plan()
        tstate = plan.init_transient(x)
    else:
        states = [device.init_state(x, idx)
                  for device, idx in compiled.devices_with_indices()]

        def assemble(xx, time, dt, method):
            sys = System(compiled.size)
            sys.time = time
            for (device, idx), state in zip(compiled.devices_with_indices(), states):
                device.stamp_static(sys, xx, idx)
                if device.dynamic and state is not None:
                    device.stamp_dynamic(sys, xx, idx, state, dt, method)
            # A tiny gmin keeps floating gate nodes well-conditioned mid-step.
            for i in range(compiled.num_nodes):
                sys.add_jac(i, i, 1e-12)
                sys.add_res(i, 1e-12 * xx[i])
            return sys

    breakpoints = _collect_breakpoints(circuit, tstop)
    bp_iter = iter(breakpoints + [np.inf])
    next_bp = next(bp_iter)

    times = [0.0]
    samples = [x.copy()]
    t = 0.0
    dt_min = tstep * _MIN_DT_FRACTION
    method = "backward_euler"  # first step
    dt = tstep

    while t < tstop - 1e-15 * tstop:
        # Land exactly on breakpoints and tstop.
        remaining = tstop - t
        if remaining <= dt_min:
            # Within integration resolution of tstop: a sliver step this
            # small only amplifies companion-conductance round-off
            # (geq ~ C/dt) without advancing the solution.
            break
        dt = min(dt, remaining)
        hit_bp = False
        if next_bp - t <= dt * (1 + 1e-9):
            dt = max(next_bp - t, dt_min)
            hit_bp = True

        t_new = t + dt
        if use_plan:
            plan.begin_step(tstate, t_new, dt, method)
            build = plan.assemble_transient
        else:
            build = lambda xx: assemble(xx, t_new, dt, method)  # noqa: E731
        result = newton_solve(build, x, max_iter=max_newton, vlimit=1.0)
        if not result.converged:
            if dt <= dt_min * 2:
                raise ConvergenceError(
                    f"transient stalled at t={t:.3e}s (dt={dt:.3e})")
            dt = dt / 2.0
            continue

        x_new = result.x
        if use_plan:
            plan.advance(tstate, x_new, dt, method)
        else:
            for pos, (device, idx) in enumerate(compiled.devices_with_indices()):
                if device.dynamic and states[pos] is not None:
                    states[pos] = device.update_state(x_new, idx, states[pos], dt, method)
        x = x_new
        t = t_new
        times.append(t)
        samples.append(x.copy())

        if hit_bp:
            next_bp = next(bp_iter)
            method = "backward_euler"  # restart integrator after the corner
        else:
            method = "trapezoidal"
        dt = min(dt * 2.0, tstep)

    return TransientResult(compiled, np.asarray(times), np.asarray(samples))
