"""Small-signal AC analysis.

The circuit is linearized around a previously computed operating point; the
complex system ``(G + j omega C) x = rhs`` is solved at each frequency, with
the stimulus taken from the ``ac`` magnitude of independent sources.
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError
from ..mna import ACSystem

__all__ = ["ACResult", "ac_analysis", "build_smallsignal"]


def build_smallsignal(compiled, xop: np.ndarray) -> ACSystem:
    """Assemble the linearized G and C matrices (and AC stimulus) at ``xop``."""
    sys = ACSystem(compiled.size)
    for device, idx in compiled.devices_with_indices():
        device.stamp_smallsignal(sys, xop, idx)
        device.stamp_ac_rhs(sys, idx)
    return sys


class ACResult:
    """Complex node voltages over frequency."""

    def __init__(self, compiled, freqs: np.ndarray, solutions: np.ndarray):
        self.compiled = compiled
        self.freqs = freqs
        self.solutions = solutions  # shape (n_freq, size), complex

    def v(self, node: str) -> np.ndarray:
        index = self.compiled.node(node)
        if index < 0:
            return np.zeros(len(self.freqs), dtype=complex)
        return self.solutions[:, index]

    def diff(self, plus: str, minus: str) -> np.ndarray:
        """Differential response ``v(plus) - v(minus)``."""
        return self.v(plus) - self.v(minus)


def ac_analysis(circuit, op, freqs) -> ACResult:
    """Run AC analysis over ``freqs`` (Hz) around operating point ``op``."""
    freqs = np.asarray(freqs, dtype=np.float64)
    if np.any(freqs < 0):
        raise AnalysisError("frequencies must be non-negative")
    compiled = circuit.compile()
    sys = build_smallsignal(compiled, op.x)
    if not np.any(np.abs(sys.rhs) > 0):
        raise AnalysisError("AC analysis needs at least one source with ac != 0")
    solutions = np.zeros((len(freqs), compiled.size), dtype=complex)
    for row, freq in enumerate(freqs):
        matrix = sys.matrix(2.0 * np.pi * freq)
        solutions[row] = np.linalg.solve(matrix, sys.rhs)
    return ACResult(compiled, freqs, solutions)
