"""Small-signal AC analysis.

The circuit is linearized around a previously computed operating point; the
complex system ``(G + j omega C) x = rhs`` is solved at each frequency, with
the stimulus taken from the ``ac`` magnitude of independent sources.

Hot-path notes: the analysis reuses the compiled circuit carried by the
operating point (no recompilation per analysis), caches the linearized
``(G, C)`` matrices on the operating point across analyses (testbenches run
several AC/noise analyses at one bias, retargeting only source ``ac``
magnitudes, so only the rhs is rebuilt), and solves all sweep frequencies
as one stacked ``(n_freq, n, n)`` batched :func:`numpy.linalg.solve` call.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from .. import profile
from ..errors import AnalysisError
from ..mna import ACSystem
from ..plan import stamping_mode

__all__ = ["ACResult", "ac_analysis", "build_smallsignal"]


def _stamp_matrices(sys: ACSystem, compiled, xop: np.ndarray) -> None:
    """Stamp every device's linearization into ``sys.G``/``sys.C``."""
    t0 = perf_counter()
    for device, idx in compiled.devices_with_indices():
        device.stamp_smallsignal(sys, xop, idx)
    profile.add("ac_build_s", perf_counter() - t0)


def _stamp_rhs(sys: ACSystem, compiled) -> None:
    """(Re)build the AC stimulus from the sources' current ``ac`` values."""
    sys.rhs[:] = 0.0
    for device, idx in compiled.devices_with_indices():
        device.stamp_ac_rhs(sys, idx)


def build_smallsignal(compiled, xop: np.ndarray) -> ACSystem:
    """Assemble the linearized G and C matrices (and AC stimulus) at ``xop``."""
    sys = ACSystem(compiled.size)
    _stamp_matrices(sys, compiled, xop)
    _stamp_rhs(sys, compiled)
    return sys


def _resolve_compiled(circuit, op):
    """The compiled circuit backing ``op`` — recompile only if the caller
    passed a *different* circuit object than the one the OP was solved on."""
    compiled = op.compiled
    if circuit is not None and compiled.circuit is not circuit:
        compiled = circuit.compile()
    return compiled


def _smallsignal_for(op, compiled) -> ACSystem:
    """Linearized system at ``op``, with (G, C) cached on the operating point.

    The AC stimulus is rebuilt on every call because testbenches retarget
    source ``ac`` magnitudes between analyses (e.g. CMRR/PSRR spur paths)
    while G and C depend only on the bias solution.
    """
    if stamping_mode() != "plan" or compiled is not op.compiled:
        return build_smallsignal(compiled, op.x)
    sys = getattr(op, "_smallsignal", None)
    if sys is None:
        sys = ACSystem(compiled.size)
        _stamp_matrices(sys, compiled, op.x)
        op._smallsignal = sys
    _stamp_rhs(sys, compiled)
    return sys


def _solve_frequencies(sys: ACSystem, freqs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``(G + j omega C) x = rhs`` over all frequencies.

    Plan mode stacks the matrices into one ``(n_freq, n, n)`` array and makes
    a single batched solve call; legacy mode keeps the per-frequency loop.
    """
    n = sys.size
    omegas = 2.0 * np.pi * freqs
    t0 = perf_counter()
    if stamping_mode() == "plan":
        if len(freqs):
            matrices = sys.G[None, :, :] + 1j * omegas[:, None, None] * sys.C[None, :, :]
            stacked = np.repeat(rhs[None, :, None].astype(complex), len(freqs), axis=0)
            solutions = np.linalg.solve(matrices, stacked)[:, :, 0]
        else:
            solutions = np.zeros((0, n), dtype=complex)
    else:
        solutions = np.zeros((len(freqs), n), dtype=complex)
        for row, omega in enumerate(omegas):
            solutions[row] = np.linalg.solve(sys.matrix(omega), rhs)
    profile.add("ac_solve_s", perf_counter() - t0)
    profile.add("ac_solves", len(freqs))
    return solutions


class ACResult:
    """Complex node voltages over frequency."""

    def __init__(self, compiled, freqs: np.ndarray, solutions: np.ndarray):
        self.compiled = compiled
        self.freqs = freqs
        self.solutions = solutions  # shape (n_freq, size), complex

    def v(self, node: str) -> np.ndarray:
        index = self.compiled.node(node)
        if index < 0:
            return np.zeros(len(self.freqs), dtype=complex)
        return self.solutions[:, index]

    def diff(self, plus: str, minus: str) -> np.ndarray:
        """Differential response ``v(plus) - v(minus)``."""
        return self.v(plus) - self.v(minus)


def ac_analysis(circuit, op, freqs) -> ACResult:
    """Run AC analysis over ``freqs`` (Hz) around operating point ``op``."""
    freqs = np.asarray(freqs, dtype=np.float64)
    if np.any(freqs < 0):
        raise AnalysisError("frequencies must be non-negative")
    compiled = _resolve_compiled(circuit, op)
    sys = _smallsignal_for(op, compiled)
    if not np.any(np.abs(sys.rhs) > 0):
        raise AnalysisError("AC analysis needs at least one source with ac != 0")
    solutions = _solve_frequencies(sys, freqs, sys.rhs)
    return ACResult(compiled, freqs, solutions)
