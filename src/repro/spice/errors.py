"""Exception hierarchy for the circuit simulator."""

__all__ = ["SpiceError", "NetlistError", "ConvergenceError", "AnalysisError"]


class SpiceError(Exception):
    """Base class for all simulator errors."""


class NetlistError(SpiceError):
    """Raised for malformed circuits (bad nodes, duplicate names, ...)."""


class ConvergenceError(SpiceError):
    """Raised when the Newton solver fails even after homotopy fallbacks."""


class AnalysisError(SpiceError):
    """Raised when an analysis is mis-configured or its result is unusable."""
