"""A from-scratch SPICE-class analog circuit simulator.

This package substitutes for the commercial simulator used in the DNN-Opt
paper: netlists of MOSFETs/passives/sources, modified nodal analysis, a
robust Newton DC solver, and AC / transient / noise analyses with the
measurement helpers analog testbenches need.
"""

from . import waveform
from .analysis import (
    ACResult,
    DCSweepResult,
    NoiseResult,
    OperatingPoint,
    TransientResult,
    ac_analysis,
    dc_sweep,
    nodeset_vector,
    noise_analysis,
    operating_point,
    transient,
)
from .devices import (
    CCCS,
    CCVS,
    DC,
    MOSFET,
    NMOS_7,
    NMOS_180,
    PMOS_7,
    PMOS_180,
    PWL,
    VCCS,
    VCVS,
    Capacitor,
    CurrentSource,
    Diode,
    Inductor,
    MOSModel,
    Pulse,
    Resistor,
    Sin,
    VoltageSource,
)
from . import profile
from .errors import AnalysisError, ConvergenceError, NetlistError, SpiceError
from .netlist import Circuit, CompiledCircuit
from .netlist_io import BUNDLED_MODELS, parse_netlist, write_netlist
from .parasitics import ParasiticEstimator, estimate_parasitics
from .plan import StampPlan, set_stamping_mode, stamping, stamping_mode
from .units import format_eng, parse_value

__all__ = [
    "Circuit",
    "CompiledCircuit",
    "operating_point",
    "nodeset_vector",
    "dc_sweep",
    "ac_analysis",
    "transient",
    "noise_analysis",
    "OperatingPoint",
    "DCSweepResult",
    "ACResult",
    "TransientResult",
    "NoiseResult",
    "waveform",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "DC",
    "Pulse",
    "Sin",
    "PWL",
    "VCVS",
    "VCCS",
    "CCCS",
    "CCVS",
    "Diode",
    "MOSFET",
    "MOSModel",
    "NMOS_180",
    "PMOS_180",
    "NMOS_7",
    "PMOS_7",
    "write_netlist",
    "parse_netlist",
    "BUNDLED_MODELS",
    "SpiceError",
    "NetlistError",
    "ConvergenceError",
    "AnalysisError",
    "ParasiticEstimator",
    "estimate_parasitics",
    "parse_value",
    "format_eng",
    "StampPlan",
    "stamping",
    "stamping_mode",
    "set_stamping_mode",
    "profile",
]
