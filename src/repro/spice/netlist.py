"""Circuit container, node mapping and compilation.

A :class:`Circuit` is an ordered collection of devices connected by named
nodes.  ``"0"`` and ``"gnd"`` are the ground aliases.  Before analysis the
circuit is *compiled*: nodes and auxiliary branch currents are assigned
matrix indices, current-controlled sources are linked to their sense
voltage source, and DC connectivity to ground is validated (a node without
any conductive path to ground would make the MNA matrix singular).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import networkx as nx

from .devices.base import Device, DeviceIndex
from .devices.controlled import CCCS, CCVS, VCCS, VCVS
from .devices.diode import Diode
from .devices.mosfet import MOSFET, MOSModel
from .devices.passives import Capacitor, Inductor, Resistor
from .devices.sources import CurrentSource, VoltageSource
from .errors import NetlistError

__all__ = ["Circuit", "CompiledCircuit", "GROUND_NAMES", "active_transform",
           "circuit_transform"]

GROUND_NAMES = frozenset({"0", "gnd", "GND", "vss!", "ground"})

#: device types that provide a DC-conductive path between two of their nodes
_CONDUCTIVE = (Resistor, VoltageSource, Inductor, Diode, VCVS, CCVS)

# Thread-local compile-time transform (see ``circuit_transform``).  Thread-
# local rather than global so concurrent evaluations on the thread backend
# can each apply a *different* scenario without interfering.
_TRANSFORM_STATE = threading.local()


def active_transform():
    """The compile-time circuit transform installed on this thread, or None."""
    return getattr(_TRANSFORM_STATE, "fn", None)


@contextmanager
def circuit_transform(fn):
    """Install a thread-local transform applied to circuits at compile time.

    While the context is active, every :class:`Circuit` compiled *on this
    thread* is passed through ``fn(circuit)`` exactly once, right before
    index assignment.  This is the seam :mod:`repro.scenarios` uses to apply
    process/voltage/temperature corners and mismatch draws to any existing
    circuit problem without touching the circuit classes: the transform
    mutates device parameters (MOSFET models, DC source levels) on the
    freshly built netlist, and the stamping plan then bakes them normally.

    Contexts nest; the previous transform is restored on exit.  A circuit
    remembers which transform it was compiled under, so recompiles after
    netlist edits never re-apply (and thus never double-scale) the same
    transform.
    """
    previous = getattr(_TRANSFORM_STATE, "fn", None)
    _TRANSFORM_STATE.fn = fn
    try:
        yield
    finally:
        _TRANSFORM_STATE.fn = previous


class CompiledCircuit:
    """Index assignment for one circuit: the bridge to the MNA matrices."""

    def __init__(self, circuit: "Circuit"):
        self.circuit = circuit
        self.node_index: dict[str, int] = {}
        for device in circuit.devices:
            for node in device.nodes:
                if node in GROUND_NAMES or node in self.node_index:
                    continue
                self.node_index[node] = len(self.node_index)
        self.num_nodes = len(self.node_index)

        # Branch currents are appended after node voltages.
        self.vsource_branch: dict[str, int] = {}
        self.indices: list[DeviceIndex] = []
        next_branch = self.num_nodes
        own_branches: list[tuple[int, ...]] = []
        for device in circuit.devices:
            branches = tuple(range(next_branch, next_branch + device.num_branches))
            next_branch += device.num_branches
            own_branches.append(branches)
            if isinstance(device, VoltageSource):
                self.vsource_branch[device.name] = branches[0]
        self.size = next_branch

        for device, branches in zip(circuit.devices, own_branches):
            nodes = tuple(self._node(n) for n in device.nodes)
            if isinstance(device, (CCCS, CCVS)):
                sense = self.vsource_branch.get(device.sense)
                if sense is None:
                    raise NetlistError(
                        f"{device.name}: sense source {device.sense!r} not found")
                branches = branches + (sense,)
            self.indices.append(DeviceIndex(nodes=nodes, branches=branches))

        # O(1) name lookups and per-class device lists, built once so hot
        # accessors (OperatingPoint.mosfet_op, source_power, ...) never scan
        # the device list.  Names are unique within a circuit (Circuit.add).
        self.device_map: dict[str, tuple[Device, DeviceIndex]] = {
            device.name: (device, idx)
            for device, idx in zip(circuit.devices, self.indices)}
        self.mosfet_entries: list[tuple[MOSFET, DeviceIndex]] = [
            (device, idx) for device, idx in self.devices_with_indices()
            if isinstance(device, MOSFET)]
        self.vsource_entries: list[tuple[VoltageSource, DeviceIndex]] = [
            (device, idx) for device, idx in self.devices_with_indices()
            if isinstance(device, VoltageSource)]
        self._plan = None

    def _node(self, name: str) -> int:
        if name in GROUND_NAMES:
            return -1
        return self.node_index[name]

    def node(self, name: str) -> int:
        """Public lookup: matrix index of a node name (-1 for ground)."""
        if name in GROUND_NAMES:
            return -1
        if name not in self.node_index:
            raise NetlistError(f"unknown node: {name!r}")
        return self.node_index[name]

    def voltage(self, x, name: str) -> float:
        """Voltage of node ``name`` in solution vector ``x``."""
        index = self.node(name)
        return 0.0 if index < 0 else float(x[index])

    def branch_current(self, x, source_name: str) -> float:
        """Branch current of voltage source ``source_name`` in ``x``."""
        if source_name not in self.vsource_branch:
            raise NetlistError(f"unknown voltage source: {source_name!r}")
        return float(x[self.vsource_branch[source_name]])

    def check_dc_connectivity(self) -> None:
        """Raise :class:`NetlistError` if any node lacks a DC path to ground."""
        graph = nx.Graph()
        graph.add_node(-1)
        for node_id in self.node_index.values():
            graph.add_node(node_id)
        for device, idx in zip(self.circuit.devices, self.indices):
            if isinstance(device, _CONDUCTIVE):
                graph.add_edge(idx.nodes[0], idx.nodes[1])
            elif isinstance(device, MOSFET):
                drain, _, source, _ = idx.nodes
                graph.add_edge(drain, source)
        reachable = nx.node_connected_component(graph, -1)
        floating = [name for name, node_id in self.node_index.items()
                    if node_id not in reachable]
        if floating:
            raise NetlistError(f"nodes with no DC path to ground: {sorted(floating)}")

    def devices_with_indices(self):
        return zip(self.circuit.devices, self.indices)

    def plan(self):
        """The compiled :class:`~repro.spice.plan.StampPlan` (built lazily).

        The plan bakes linear-device stamps and nonlinear scatter indices, so
        it must be rebuilt whenever the netlist changes — which happens
        automatically because ``Circuit.add`` invalidates the compiled
        circuit itself.  Post-compile mutation of linear device *values*
        (other than independent-source levels, which are re-read on every
        assembly) is outside the stamping-plan contract.
        """
        if self._plan is None:
            from .plan import StampPlan
            self._plan = StampPlan(self)
        return self._plan


class Circuit:
    """An ordered netlist of devices with convenience constructors."""

    def __init__(self, title: str = "circuit"):
        self.title = title
        self.devices: list[Device] = []
        self._names: set[str] = set()
        self._compiled: CompiledCircuit | None = None
        self._transformed = None  # transform already applied to this netlist

    # ------------------------------------------------------------------
    def add(self, device: Device) -> Device:
        """Add a device; names must be unique within the circuit."""
        if device.name in self._names:
            raise NetlistError(f"duplicate device name: {device.name!r}")
        self._names.add(device.name)
        self.devices.append(device)
        self._compiled = None
        return device

    def __len__(self) -> int:
        return len(self.devices)

    def __getitem__(self, name: str) -> Device:
        for device in self.devices:
            if device.name == name:
                return device
        raise KeyError(name)

    def node_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for device in self.devices:
            for node in device.nodes:
                if node not in GROUND_NAMES:
                    seen.setdefault(node)
        return list(seen)

    def compile(self) -> CompiledCircuit:
        """Assign matrix indices (cached until the netlist changes)."""
        if self._compiled is None:
            if not self.devices:
                raise NetlistError("cannot compile an empty circuit")
            fn = active_transform()
            if fn is not None and self._transformed is not fn:
                # one-shot per netlist: recompiles triggered by later edits
                # must not re-scale already-transformed device parameters
                self._transformed = fn
                fn(self)
            self._compiled = CompiledCircuit(self)
        return self._compiled

    # ------------------------------------------------------------------
    # Convenience constructors (return the created device)
    # ------------------------------------------------------------------
    def resistor(self, name, a, b, value) -> Resistor:
        return self.add(Resistor(name, a, b, value))

    def capacitor(self, name, a, b, value, ic=None) -> Capacitor:
        return self.add(Capacitor(name, a, b, value, ic=ic))

    def inductor(self, name, a, b, value, ic=None) -> Inductor:
        return self.add(Inductor(name, a, b, value, ic=ic))

    def vsource(self, name, plus, minus, value=0.0, ac: float = 0.0) -> VoltageSource:
        return self.add(VoltageSource(name, plus, minus, value, ac=ac))

    def isource(self, name, plus, minus, value=0.0, ac: float = 0.0) -> CurrentSource:
        return self.add(CurrentSource(name, plus, minus, value, ac=ac))

    def vcvs(self, name, a, b, c, d, gain) -> VCVS:
        return self.add(VCVS(name, a, b, c, d, gain))

    def vccs(self, name, a, b, c, d, gm) -> VCCS:
        return self.add(VCCS(name, a, b, c, d, gm))

    def cccs(self, name, a, b, sense, gain) -> CCCS:
        return self.add(CCCS(name, a, b, sense, gain))

    def ccvs(self, name, a, b, sense, r) -> CCVS:
        return self.add(CCVS(name, a, b, sense, r))

    def diode(self, name, anode, cathode, **params) -> Diode:
        return self.add(Diode(name, anode, cathode, **params))

    def mosfet(self, name, drain, gate, source, bulk, model: MOSModel,
               w: float, l: float, m: int = 1) -> MOSFET:
        return self.add(MOSFET(name, drain, gate, source, bulk, model, w, l, m))

    # ------------------------------------------------------------------
    def include(self, other: "Circuit", prefix: str, mapping: dict[str, str]) -> None:
        """Merge ``other`` into this circuit.

        Device names gain ``prefix``; nodes are renamed through ``mapping``
        (identity plus prefixing for unmapped internal nodes).  Ground stays
        ground.  This provides light-weight subcircuit instantiation.
        """
        import copy

        for device in other.devices:
            clone = copy.deepcopy(device)
            clone.name = f"{prefix}{device.name}"
            clone.nodes = tuple(self._map_node(n, prefix, mapping) for n in device.nodes)
            if isinstance(clone, (CCCS, CCVS)):
                clone.sense = f"{prefix}{clone.sense}"
            self.add(clone)

    @staticmethod
    def _map_node(node: str, prefix: str, mapping: dict[str, str]) -> str:
        if node in GROUND_NAMES:
            return node
        if node in mapping:
            return mapping[node]
        return f"{prefix}{node}"

    def __repr__(self) -> str:
        return f"Circuit({self.title!r}, devices={len(self.devices)})"
