"""Controlled sources: VCVS (E), VCCS (G), CCCS (F), CCVS (H).

Current-controlled sources reference the branch current of a named
:class:`~repro.spice.devices.sources.VoltageSource`, following classic SPICE
usage; the sense-source branch index is resolved at compile time and passed
in ``idx.branches`` after the device's own branches.

All four are linear with gains frozen after compile, so their stamps live
entirely in the plan's baked ``J_lin`` (stamping-plan contract: see
``devices/base.py``).
"""

from __future__ import annotations

from .base import Device, DeviceIndex

__all__ = ["VCVS", "VCCS", "CCCS", "CCVS"]


class VCVS(Device):
    """Voltage-controlled voltage source: ``v(a,b) = gain * v(c,d)``."""

    num_branches = 1

    def __init__(self, name: str, a: str, b: str, c: str, d: str, gain: float):
        super().__init__(name, (a, b, c, d))
        self.gain = float(gain)

    def stamp_static(self, sys, x, idx: DeviceIndex) -> None:
        a, b, c, d = idx.nodes
        (br,) = idx.branches
        ib = x[br]
        sys.add_res(a, ib)
        sys.add_res(b, -ib)
        sys.add_jac(a, br, 1.0)
        sys.add_jac(b, br, -1.0)
        va = x[a] if a >= 0 else 0.0
        vb = x[b] if b >= 0 else 0.0
        vc = x[c] if c >= 0 else 0.0
        vd = x[d] if d >= 0 else 0.0
        sys.add_res(br, va - vb - self.gain * (vc - vd))
        sys.add_jac(br, a, 1.0)
        sys.add_jac(br, b, -1.0)
        sys.add_jac(br, c, -self.gain)
        sys.add_jac(br, d, self.gain)

    def stamp_smallsignal(self, sys, xop, idx: DeviceIndex) -> None:
        a, b, c, d = idx.nodes
        (br,) = idx.branches
        sys.add_G(a, br, 1.0)
        sys.add_G(b, br, -1.0)
        sys.add_G(br, a, 1.0)
        sys.add_G(br, b, -1.0)
        sys.add_G(br, c, -self.gain)
        sys.add_G(br, d, self.gain)


class VCCS(Device):
    """Voltage-controlled current source: ``i(a->b) = gm * v(c,d)``."""

    def __init__(self, name: str, a: str, b: str, c: str, d: str, gm: float):
        super().__init__(name, (a, b, c, d))
        self.gm = float(gm)

    def stamp_static(self, sys, x, idx: DeviceIndex) -> None:
        a, b, c, d = idx.nodes
        vc = x[c] if c >= 0 else 0.0
        vd = x[d] if d >= 0 else 0.0
        current = self.gm * (vc - vd)
        sys.add_res(a, current)
        sys.add_res(b, -current)
        sys.add_jac(a, c, self.gm)
        sys.add_jac(a, d, -self.gm)
        sys.add_jac(b, c, -self.gm)
        sys.add_jac(b, d, self.gm)

    def stamp_smallsignal(self, sys, xop, idx: DeviceIndex) -> None:
        a, b, c, d = idx.nodes
        sys.add_G(a, c, self.gm)
        sys.add_G(a, d, -self.gm)
        sys.add_G(b, c, -self.gm)
        sys.add_G(b, d, self.gm)


class CCCS(Device):
    """Current-controlled current source: ``i(a->b) = gain * i(Vsense)``."""

    def __init__(self, name: str, a: str, b: str, sense: str, gain: float):
        super().__init__(name, (a, b))
        self.sense = str(sense)
        self.gain = float(gain)

    def stamp_static(self, sys, x, idx: DeviceIndex) -> None:
        a, b = idx.nodes
        (sense_br,) = idx.branches
        i_sense = x[sense_br]
        sys.add_res(a, self.gain * i_sense)
        sys.add_res(b, -self.gain * i_sense)
        sys.add_jac(a, sense_br, self.gain)
        sys.add_jac(b, sense_br, -self.gain)

    def stamp_smallsignal(self, sys, xop, idx: DeviceIndex) -> None:
        a, b = idx.nodes
        (sense_br,) = idx.branches
        sys.add_G(a, sense_br, self.gain)
        sys.add_G(b, sense_br, -self.gain)


class CCVS(Device):
    """Current-controlled voltage source: ``v(a,b) = r * i(Vsense)``."""

    num_branches = 1

    def __init__(self, name: str, a: str, b: str, sense: str, r: float):
        super().__init__(name, (a, b))
        self.sense = str(sense)
        self.r = float(r)

    def stamp_static(self, sys, x, idx: DeviceIndex) -> None:
        a, b = idx.nodes
        br, sense_br = idx.branches
        ib = x[br]
        sys.add_res(a, ib)
        sys.add_res(b, -ib)
        sys.add_jac(a, br, 1.0)
        sys.add_jac(b, br, -1.0)
        va = x[a] if a >= 0 else 0.0
        vb = x[b] if b >= 0 else 0.0
        sys.add_res(br, va - vb - self.r * x[sense_br])
        sys.add_jac(br, a, 1.0)
        sys.add_jac(br, b, -1.0)
        sys.add_jac(br, sense_br, -self.r)

    def stamp_smallsignal(self, sys, xop, idx: DeviceIndex) -> None:
        a, b = idx.nodes
        br, sense_br = idx.branches
        sys.add_G(a, br, 1.0)
        sys.add_G(b, br, -1.0)
        sys.add_G(br, a, 1.0)
        sys.add_G(br, b, -1.0)
        sys.add_G(br, sense_br, -self.r)
