"""Junction diode with exponential I-V and junction-voltage limiting."""

from __future__ import annotations

import math

from .base import TRAP_THETA, Device, DeviceIndex

__all__ = ["Diode"]

_THERMAL_VOLTAGE = 0.025852  # kT/q at 300 K


class Diode(Device):
    """Shockley diode ``i = Is (exp(v/n Vt) - 1)`` with series gmin."""

    nonlinear = True
    dynamic = True

    def __init__(self, name: str, anode: str, cathode: str, *, i_s: float = 1e-14,
                 n: float = 1.0, cj0: float = 0.0):
        super().__init__(name, (anode, cathode))
        self.i_s = float(i_s)
        self.n = float(n)
        self.cj0 = float(cj0)
        # _vte/_vcrit are frozen at construction and shared with the plan's
        # vectorized diode batch (repro.spice.plan._DiodeBatch).
        self._vte = self.n * _THERMAL_VOLTAGE
        # Critical voltage above which the exponential is linearized to keep
        # Newton iterates finite (standard SPICE pnjlim-style safeguard).
        self._vcrit = self._vte * math.log(self._vte / (math.sqrt(2.0) * self.i_s))

    def _iv(self, v: float) -> tuple[float, float]:
        """Return (current, conductance) with overflow-safe linearization."""
        if v > self._vcrit:
            g0 = self.i_s / self._vte * math.exp(self._vcrit / self._vte)
            i0 = self.i_s * (math.exp(self._vcrit / self._vte) - 1.0)
            return i0 + g0 * (v - self._vcrit), g0
        if v < -20.0 * self._vte:
            return -self.i_s, 1e-15
        expv = math.exp(v / self._vte)
        return self.i_s * (expv - 1.0), self.i_s / self._vte * expv

    def stamp_static(self, sys, x, idx: DeviceIndex) -> None:
        a, b = idx.nodes
        va = x[a] if a >= 0 else 0.0
        vb = x[b] if b >= 0 else 0.0
        current, g = self._iv(va - vb)
        sys.add_res(a, current)
        sys.add_res(b, -current)
        sys.add_jac(a, a, g)
        sys.add_jac(a, b, -g)
        sys.add_jac(b, a, -g)
        sys.add_jac(b, b, g)

    def stamp_smallsignal(self, sys, xop, idx: DeviceIndex) -> None:
        a, b = idx.nodes
        va = xop[a] if a >= 0 else 0.0
        vb = xop[b] if b >= 0 else 0.0
        _, g = self._iv(va - vb)
        sys.stamp_G_pair(a, b, g)
        if self.cj0:
            sys.stamp_C_pair(a, b, self.cj0)

    # Junction capacitance in transient: constant cj0 approximation.
    def init_state(self, x, idx: DeviceIndex):
        if not self.cj0:
            return None
        a, b = idx.nodes
        va = x[a] if a >= 0 else 0.0
        vb = x[b] if b >= 0 else 0.0
        return {"v": va - vb, "i": 0.0}

    def stamp_dynamic(self, sys, x, idx: DeviceIndex, state, dt: float, method: str) -> None:
        if state is None:
            return
        a, b = idx.nodes
        if method == "trapezoidal":
            geq = self.cj0 / (TRAP_THETA * dt)
            ieq = geq * state["v"] + (1.0 - TRAP_THETA) / TRAP_THETA * state["i"]
        else:
            geq = self.cj0 / dt
            ieq = geq * state["v"]
        va = x[a] if a >= 0 else 0.0
        vb = x[b] if b >= 0 else 0.0
        current = geq * (va - vb) - ieq
        sys.add_res(a, current)
        sys.add_res(b, -current)
        sys.add_jac(a, a, geq)
        sys.add_jac(a, b, -geq)
        sys.add_jac(b, a, -geq)
        sys.add_jac(b, b, geq)

    def update_state(self, x, idx: DeviceIndex, state, dt: float, method: str):
        if state is None:
            return None
        a, b = idx.nodes
        va = x[a] if a >= 0 else 0.0
        vb = x[b] if b >= 0 else 0.0
        v_new = va - vb
        if method == "trapezoidal":
            geq = self.cj0 / (TRAP_THETA * dt)
            i_new = geq * (v_new - state["v"]) - (1.0 - TRAP_THETA) / TRAP_THETA * state["i"]
        else:
            i_new = self.cj0 / dt * (v_new - state["v"])
        return {"v": v_new, "i": i_new}
