"""Passive elements: resistor, capacitor, inductor.

All three are linear (``nonlinear = False``), so the stamping plan bakes
their static stamps once per compiled circuit; exact-class capacitors get
vectorized transient companions, while inductors (branch-equation
companions) go through the generic per-step affine capture.
"""

from __future__ import annotations


from ..units import parse_value
from .base import TRAP_THETA, Device, DeviceIndex, NoiseSource

__all__ = ["Resistor", "Capacitor", "Inductor", "BOLTZMANN", "ROOM_TEMPERATURE"]

BOLTZMANN = 1.380649e-23
ROOM_TEMPERATURE = 300.0


class Resistor(Device):
    """Linear resistor with thermal (Johnson) noise ``4kT/R``."""

    def __init__(self, name: str, a: str, b: str, value):
        super().__init__(name, (a, b))
        self.value = parse_value(value)
        if self.value <= 0:
            raise ValueError(f"resistor {name}: value must be positive, got {self.value}")

    @property
    def conductance(self) -> float:
        return 1.0 / self.value

    def stamp_static(self, sys, x, idx: DeviceIndex) -> None:
        a, b = idx.nodes
        sys.stamp_conductance(a, b, self.conductance, x)

    def stamp_smallsignal(self, sys, xop, idx: DeviceIndex) -> None:
        a, b = idx.nodes
        sys.stamp_G_pair(a, b, self.conductance)

    def noise_sources(self, xop, idx: DeviceIndex) -> list[NoiseSource]:
        a, b = idx.nodes
        psd_value = 4.0 * BOLTZMANN * ROOM_TEMPERATURE * self.conductance

        def psd(_freq: float) -> float:
            return psd_value

        return [NoiseSource(f"{self.name}:thermal", a, b, psd)]


class Capacitor(Device):
    """Linear capacitor; open in DC, companion conductance in transient."""

    dynamic = True

    def __init__(self, name: str, a: str, b: str, value, ic: float | None = None):
        super().__init__(name, (a, b))
        self.value = parse_value(value)
        if self.value < 0:
            raise ValueError(f"capacitor {name}: value must be non-negative")
        #: optional initial condition (volts across a-b) for ``uic`` transients
        self.ic = ic

    def init_state(self, x, idx: DeviceIndex):
        a, b = idx.nodes
        va = x[a] if a >= 0 else 0.0
        vb = x[b] if b >= 0 else 0.0
        return {"v": va - vb, "i": 0.0}

    def _companion(self, state, dt: float, method: str) -> tuple[float, float]:
        if method == "trapezoidal":
            geq = self.value / (TRAP_THETA * dt)
            ieq = geq * state["v"] + (1.0 - TRAP_THETA) / TRAP_THETA * state["i"]
        else:  # backward Euler
            geq = self.value / dt
            ieq = geq * state["v"]
        return geq, ieq

    def stamp_dynamic(self, sys, x, idx: DeviceIndex, state, dt: float, method: str) -> None:
        a, b = idx.nodes
        geq, ieq = self._companion(state, dt, method)
        va = x[a] if a >= 0 else 0.0
        vb = x[b] if b >= 0 else 0.0
        current = geq * (va - vb) - ieq
        sys.add_res(a, current)
        sys.add_res(b, -current)
        sys.add_jac(a, a, geq)
        sys.add_jac(a, b, -geq)
        sys.add_jac(b, a, -geq)
        sys.add_jac(b, b, geq)

    def update_state(self, x, idx: DeviceIndex, state, dt: float, method: str):
        a, b = idx.nodes
        va = x[a] if a >= 0 else 0.0
        vb = x[b] if b >= 0 else 0.0
        v_new = va - vb
        geq, ieq = self._companion(state, dt, method)
        i_new = geq * v_new - ieq
        return {"v": v_new, "i": i_new}

    def stamp_smallsignal(self, sys, xop, idx: DeviceIndex) -> None:
        a, b = idx.nodes
        sys.stamp_C_pair(a, b, self.value)


class Inductor(Device):
    """Linear inductor; short in DC via its branch-current unknown."""

    dynamic = True
    num_branches = 1

    def __init__(self, name: str, a: str, b: str, value, ic: float | None = None):
        super().__init__(name, (a, b))
        self.value = parse_value(value)
        if self.value <= 0:
            raise ValueError(f"inductor {name}: value must be positive")
        #: optional initial branch current for ``uic`` transients
        self.ic = ic

    def stamp_static(self, sys, x, idx: DeviceIndex) -> None:
        # DC: behaves as a 0 V source (short).  Branch equation: va - vb = 0.
        a, b = idx.nodes
        (br,) = idx.branches
        ib = x[br]
        sys.add_res(a, ib)
        sys.add_res(b, -ib)
        sys.add_jac(a, br, 1.0)
        sys.add_jac(b, br, -1.0)
        va = x[a] if a >= 0 else 0.0
        vb = x[b] if b >= 0 else 0.0
        sys.add_res(br, va - vb)
        sys.add_jac(br, a, 1.0)
        sys.add_jac(br, b, -1.0)

    def init_state(self, x, idx: DeviceIndex):
        (br,) = idx.branches
        return {"i": x[br], "v": 0.0}

    def stamp_dynamic(self, sys, x, idx: DeviceIndex, state, dt: float, method: str) -> None:
        # Replaces the DC short: branch eq becomes va - vb - req*ib + veq = 0.
        (br,) = idx.branches
        ib = x[br]
        if method == "trapezoidal":
            req = self.value / (TRAP_THETA * dt)
            veq = req * state["i"] + (1.0 - TRAP_THETA) / TRAP_THETA * state["v"]
        else:
            req = self.value / dt
            veq = req * state["i"]
        sys.add_res(br, -req * ib + veq)
        sys.add_jac(br, br, -req)

    def update_state(self, x, idx: DeviceIndex, state, dt: float, method: str):
        a, b = idx.nodes
        (br,) = idx.branches
        va = x[a] if a >= 0 else 0.0
        vb = x[b] if b >= 0 else 0.0
        return {"i": x[br], "v": va - vb}

    def stamp_smallsignal(self, sys, xop, idx: DeviceIndex) -> None:
        a, b = idx.nodes
        (br,) = idx.branches
        sys.add_G(a, br, 1.0)
        sys.add_G(b, br, -1.0)
        sys.add_G(br, a, 1.0)
        sys.add_G(br, b, -1.0)
        sys.add_C(br, br, -self.value)
