"""Independent sources and their time-domain waveforms."""

from __future__ import annotations

import math

import numpy as np

from ..units import parse_value
from .base import Device, DeviceIndex

__all__ = ["Waveform", "DC", "Pulse", "Sin", "PWL", "VoltageSource", "CurrentSource"]


class Waveform:
    """Time-domain stimulus description."""

    def value(self, t: float) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def dc_value(self) -> float:
        return self.value(0.0)

    def breakpoints(self, tstop: float) -> list[float]:
        """Times where the waveform has slope discontinuities (for the
        transient stepper to land on exactly)."""
        return []


class DC(Waveform):
    """Constant value."""

    def __init__(self, value):
        self.level = parse_value(value)

    def value(self, t: float) -> float:
        return self.level


class Pulse(Waveform):
    """SPICE PULSE(v1 v2 td tr tf pw period)."""

    def __init__(self, v1, v2, delay=0.0, rise=1e-12, fall=1e-12, width=1e-6, period=None):
        self.v1 = parse_value(v1)
        self.v2 = parse_value(v2)
        self.delay = parse_value(delay)
        self.rise = max(parse_value(rise), 1e-15)
        self.fall = max(parse_value(fall), 1e-15)
        self.width = parse_value(width)
        if period is None:
            period = self.delay + self.rise + self.fall + 2.0 * self.width
        self.period = parse_value(period)

    def value(self, t: float) -> float:
        if t < self.delay:
            return self.v1
        tau = (t - self.delay) % self.period
        if tau < self.rise:
            return self.v1 + (self.v2 - self.v1) * tau / self.rise
        if tau < self.rise + self.width:
            return self.v2
        if tau < self.rise + self.width + self.fall:
            frac = (tau - self.rise - self.width) / self.fall
            return self.v2 + (self.v1 - self.v2) * frac
        return self.v1

    def breakpoints(self, tstop: float) -> list[float]:
        points = []
        start = self.delay
        while start < tstop:
            for offset in (0.0, self.rise, self.rise + self.width,
                           self.rise + self.width + self.fall):
                instant = start + offset
                if instant <= tstop:
                    points.append(instant)
            start += self.period
            if self.period <= 0:
                break
        return points


class Sin(Waveform):
    """SPICE SIN(vo va freq td theta)."""

    def __init__(self, offset, amplitude, freq, delay=0.0, damping=0.0):
        self.offset = parse_value(offset)
        self.amplitude = parse_value(amplitude)
        self.freq = parse_value(freq)
        self.delay = parse_value(delay)
        self.damping = parse_value(damping)

    def value(self, t: float) -> float:
        if t < self.delay:
            return self.offset
        dt = t - self.delay
        return self.offset + self.amplitude * math.exp(-self.damping * dt) * math.sin(
            2.0 * math.pi * self.freq * dt)


class PWL(Waveform):
    """Piecewise-linear waveform from (time, value) points."""

    def __init__(self, points):
        if len(points) < 1:
            raise ValueError("PWL needs at least one point")
        times = [parse_value(t) for t, _ in points]
        values = [parse_value(v) for _, v in points]
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            raise ValueError("PWL times must be strictly increasing")
        self.times = np.asarray(times)
        self.values = np.asarray(values)

    def value(self, t: float) -> float:
        return float(np.interp(t, self.times, self.values))

    def breakpoints(self, tstop: float) -> list[float]:
        return [float(t) for t in self.times if t <= tstop]


def _as_waveform(value) -> Waveform:
    if isinstance(value, Waveform):
        return value
    return DC(value)


class VoltageSource(Device):
    """Independent voltage source with a branch-current unknown.

    The branch current is defined as flowing from the ``+`` node through the
    source to the ``-`` node, so a positive supply delivering power has a
    negative branch current (current exits the ``+`` terminal into the
    circuit).  ``ac`` sets the small-signal stimulus magnitude.
    """

    num_branches = 1

    def __init__(self, name: str, plus: str, minus: str, value=0.0, ac: float = 0.0):
        super().__init__(name, (plus, minus))
        self.waveform = _as_waveform(value)
        self.ac = float(ac)

    def voltage_at(self, t: float | None) -> float:
        if t is None:
            return self.waveform.dc_value()
        return self.waveform.value(t)

    def stamp_static(self, sys, x, idx: DeviceIndex) -> None:
        a, b = idx.nodes
        (br,) = idx.branches
        ib = x[br]
        sys.add_res(a, ib)
        sys.add_res(b, -ib)
        sys.add_jac(a, br, 1.0)
        sys.add_jac(b, br, -1.0)
        va = x[a] if a >= 0 else 0.0
        vb = x[b] if b >= 0 else 0.0
        target = sys.source_scale * self.voltage_at(sys.time)
        sys.add_res(br, va - vb - target)
        sys.add_jac(br, a, 1.0)
        sys.add_jac(br, b, -1.0)

    def stamp_smallsignal(self, sys, xop, idx: DeviceIndex) -> None:
        a, b = idx.nodes
        (br,) = idx.branches
        sys.add_G(a, br, 1.0)
        sys.add_G(b, br, -1.0)
        sys.add_G(br, a, 1.0)
        sys.add_G(br, b, -1.0)

    def stamp_ac_rhs(self, sys, idx: DeviceIndex) -> None:
        if self.ac:
            (br,) = idx.branches
            sys.add_rhs(br, self.ac)


class CurrentSource(Device):
    """Independent current source; current flows from ``+`` through the
    source to ``-`` (i.e. it is pushed into the ``-`` node's circuit side)."""

    def __init__(self, name: str, plus: str, minus: str, value=0.0, ac: float = 0.0):
        super().__init__(name, (plus, minus))
        self.waveform = _as_waveform(value)
        self.ac = float(ac)

    def current_at(self, t: float | None) -> float:
        if t is None:
            return self.waveform.dc_value()
        return self.waveform.value(t)

    def stamp_static(self, sys, x, idx: DeviceIndex) -> None:
        a, b = idx.nodes
        current = sys.source_scale * self.current_at(sys.time)
        sys.add_res(a, current)
        sys.add_res(b, -current)

    def stamp_ac_rhs(self, sys, idx: DeviceIndex) -> None:
        if self.ac:
            a, b = idx.nodes
            sys.add_rhs(a, -self.ac)
            sys.add_rhs(b, self.ac)
