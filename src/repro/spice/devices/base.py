"""Device interface for the MNA simulator.

Every device stamps its contribution into a shared system of equations.  The
convention throughout the package:

* Unknown vector ``x`` = node voltages (ground excluded) followed by branch
  currents (one per voltage-defined element: V sources, inductors, E/H
  sources).
* We solve the KCL residual ``F(x) = 0`` with Newton's method; devices add
  the current *leaving* each node to ``F`` and the corresponding partial
  derivatives to the Jacobian ``J``.  For linear devices the Jacobian is the
  familiar MNA stamp.
* Ground is node index ``-1``; :class:`repro.spice.mna.System` silently drops
  contributions to it.

Dynamic (charge/flux-storage) devices additionally implement transient
companion stamps and keep per-device integration state supplied by the
transient analysis.

Stamping-plan contract
----------------------
The compiled stamping plan (:mod:`repro.spice.plan`) bakes per-circuit
assembly programs instead of re-stamping every device each Newton
iteration.  Device authors must uphold:

* ``nonlinear = False`` promises that ``stamp_static`` is *affine in x with
  a constant Jacobian*: the plan captures the Jacobian (and any constant
  residual offset) once at ``x = 0`` and never calls ``stamp_static`` again.
  Such devices must not read ``sys.time``/``sys.source_scale`` — except
  independent sources (:class:`VoltageSource`/:class:`CurrentSource`), whose
  level terms the plan re-reads on every assembly (so ``dc_sweep`` waveform
  swaps and source-stepping homotopy keep working).
* ``stamp_dynamic`` must be affine in ``x`` for a fixed integration state:
  the plan captures it once per transient step (at ``x = 0``) and reuses the
  result for every Newton iteration within the step.  All companion models
  (conductance + history current) satisfy this by construction.
* ``nonlinear = True`` devices are re-evaluated every iteration.  The exact
  classes :class:`MOSFET` and :class:`Diode` run through vectorized batch
  evaluators; any other nonlinear class falls back to its per-device
  ``stamp_static`` (correct, just not vectorized).
* ``NoiseSource.psd`` must broadcast over an ndarray of frequencies
  (returning a scalar for a flat PSD is fine) — the batched noise analysis
  evaluates the whole grid in one call.

Mutating a compiled circuit's device *values* (geometry, R/C/L, gains)
invalidates the baked plan; add/remove devices through :class:`Circuit`,
which recompiles, or rebuild the netlist.

The affine/time-read/PSD clauses above are machine-checked: rule **RP03**
of the contract linter (``python -m repro.tools.lint src``, see README
"Static analysis & contracts") flags linear stamps that branch on ``x``,
non-source reads of ``sys.time``/``sys.source_scale``, and scalar
``math.*`` calls inside noise PSD closures.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Device", "DeviceIndex", "NoiseSource", "TRAP_THETA"]

#: implicitness of the "trapezoidal" companion (0.5 = pure trapezoidal).
#: Pure trapezoidal lets capacitor companion currents oscillate forever at
#: constant voltage (a classic artifact); a slightly implicit theta damps
#: them by (1-theta)/theta per step at negligible accuracy cost.
TRAP_THETA = 0.52


@dataclass(frozen=True)
class DeviceIndex:
    """Resolved matrix indices for one device instance in one circuit."""

    nodes: tuple[int, ...]
    branches: tuple[int, ...] = ()


@dataclass(frozen=True)
class NoiseSource:
    """A small-signal noise current source between two nodes.

    ``psd(f)`` returns the one-sided current power spectral density in
    A^2/Hz at frequency ``f``.
    """

    name: str
    node_plus: int
    node_minus: int
    psd: callable


class Device:
    """Base class for circuit elements."""

    #: number of auxiliary branch-current unknowns this device introduces
    num_branches = 0
    #: True if the static stamp depends on the solution vector
    nonlinear = False
    #: True if the device stores charge/flux (participates in transient/AC dynamics)
    dynamic = False

    def __init__(self, name: str, nodes: tuple[str, ...]):
        self.name = str(name)
        self.nodes = tuple(str(n) for n in nodes)

    # -- static (resistive) part ---------------------------------------
    def stamp_static(self, sys, x, idx: DeviceIndex) -> None:
        """Add memoryless contributions at solution ``x`` (DC and transient)."""

    # -- dynamic part ---------------------------------------------------
    def init_state(self, x, idx: DeviceIndex):
        """Return integration state at the initial solution (or None)."""
        return None

    def stamp_dynamic(self, sys, x, idx: DeviceIndex, state, dt: float, method: str) -> None:
        """Add companion-model contributions for one transient step."""

    def update_state(self, x, idx: DeviceIndex, state, dt: float, method: str):
        """Advance integration state after a converged transient step."""
        return state

    # -- small-signal part ----------------------------------------------
    def stamp_smallsignal(self, sys, xop, idx: DeviceIndex) -> None:
        """Stamp the linearization at the operating point into ``sys.G``/``sys.C``."""

    def stamp_ac_rhs(self, sys, idx: DeviceIndex) -> None:
        """Add the AC stimulus of independent sources to ``sys.rhs``."""

    # -- noise ------------------------------------------------------------
    def noise_sources(self, xop, idx: DeviceIndex) -> list[NoiseSource]:
        """Small-signal noise current sources evaluated at the OP."""
        return []

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, nodes={self.nodes})"
