"""Device library for the MNA simulator."""

from .base import Device, DeviceIndex, NoiseSource
from .controlled import CCCS, CCVS, VCCS, VCVS
from .diode import Diode
from .mosfet import MOSFET, MOSModel, NMOS_180, NMOS_7, PMOS_180, PMOS_7
from .passives import Capacitor, Inductor, Resistor
from .sources import DC, PWL, CurrentSource, Pulse, Sin, VoltageSource, Waveform

__all__ = [
    "Device",
    "DeviceIndex",
    "NoiseSource",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "Waveform",
    "DC",
    "Pulse",
    "Sin",
    "PWL",
    "VCVS",
    "VCCS",
    "CCCS",
    "CCVS",
    "Diode",
    "MOSFET",
    "MOSModel",
    "NMOS_180",
    "PMOS_180",
    "NMOS_7",
    "PMOS_7",
]
