"""Level-1 (square-law) MOSFET with smoothed transitions.

The classic Level-1 model has C0 discontinuities at the cutoff and
triode/saturation boundaries that stall Newton iterations.  This
implementation smooths both:

* the overdrive is ``vov_eff = (vov + sqrt(vov^2 + 4 delta^2)) / 2`` — a
  softplus-like function that keeps a tiny sub-threshold conduction and a
  non-zero gm everywhere;
* the effective drain-source voltage is ``vdse = vds / (1 + (vds/vdsat)^4)^(1/4)``,
  a smooth, monotonic saturation of ``vds`` at ``vdsat`` whose derivative has
  the closed form ``(1 + r^4)^(-5/4)``.

Channel-length modulation ``(1 + lambda vds)``, body effect
(``vth = vto + gamma (sqrt(2 phi + vsb) - sqrt(2 phi))``), source/drain
swapping for reverse operation and PMOS polarity folding are all supported.
Capacitances follow the Meyer piecewise model plus constant overlap and
junction terms; noise is channel thermal noise ``4kT (2/3) gm`` plus
``1/f`` flicker noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .base import TRAP_THETA, Device, DeviceIndex, NoiseSource
from .passives import BOLTZMANN, ROOM_TEMPERATURE

__all__ = ["MOSModel", "MOSFET", "NMOS_180", "PMOS_180", "NMOS_7", "PMOS_7"]


@dataclass(frozen=True)
class MOSModel:
    """Process parameters for a MOSFET flavour."""

    name: str
    polarity: str  # 'n' or 'p'
    kp: float = 200e-6       # transconductance parameter mu*Cox [A/V^2]
    vto: float = 0.5         # zero-bias threshold [V] (positive for both polarities)
    lam: float = 0.05        # channel-length modulation [1/V] at L = lref
    lref: float = 1e-6       # reference length for lambda scaling [m]
    gamma: float = 0.0       # body-effect coefficient [sqrt(V)]
    phi: float = 0.7         # surface potential 2*phi_F [V]
    cox: float = 8e-3        # gate-oxide capacitance [F/m^2]
    cgso: float = 3e-10      # G-S overlap capacitance [F/m]
    cgdo: float = 3e-10      # G-D overlap capacitance [F/m]
    cj: float = 1e-3         # junction capacitance per area for D/S diffusions [F/m^2]
    kf: float = 1e-27        # flicker-noise coefficient (SPICE2 form)
    af: float = 1.0          # flicker-noise current exponent
    smooth: float = 2e-3     # transition smoothing voltage delta [V]

    def __post_init__(self):
        if self.polarity not in ("n", "p"):
            raise ValueError(f"polarity must be 'n' or 'p', got {self.polarity!r}")


# Representative 180 nm-class models (used by the paper's building blocks).
NMOS_180 = MOSModel("nmos180", "n", kp=300e-6, vto=0.45, lam=0.06, lref=0.5e-6,
                    gamma=0.4, phi=0.8, cox=8.5e-3, cgso=3.5e-10, cgdo=3.5e-10)
PMOS_180 = MOSModel("pmos180", "p", kp=100e-6, vto=0.45, lam=0.08, lref=0.5e-6,
                    gamma=0.4, phi=0.8, cox=8.5e-3, cgso=3.5e-10, cgdo=3.5e-10)

# Representative advanced-node models (used by the industrial circuits; the
# absolute values are generic, only the qualitative behaviour matters).
NMOS_7 = MOSModel("nmos7", "n", kp=450e-6, vto=0.30, lam=0.15, lref=0.05e-6,
                  gamma=0.25, phi=0.7, cox=18e-3, cgso=2e-10, cgdo=2e-10)
PMOS_7 = MOSModel("pmos7", "p", kp=300e-6, vto=0.30, lam=0.18, lref=0.05e-6,
                  gamma=0.25, phi=0.7, cox=18e-3, cgso=2e-10, cgdo=2e-10)


@dataclass
class _Operating:
    """Small-signal quantities at one bias point (normalized orientation)."""

    ids: float = 0.0
    vgs: float = 0.0
    vds: float = 0.0
    vsb: float = 0.0
    vth: float = 0.0
    vdsat: float = 0.0
    gm: float = 0.0
    gds: float = 0.0
    gmb: float = 0.0
    reverse: bool = False
    region: str = "cutoff"

    @property
    def saturation_margin(self) -> float:
        """``vds - vdsat`` in the conducting orientation (negative = triode)."""
        return self.vds - self.vdsat


class MOSFET(Device):
    """Four-terminal MOSFET: nodes (drain, gate, source, bulk)."""

    nonlinear = True
    dynamic = True

    def __init__(self, name: str, drain: str, gate: str, source: str, bulk: str,
                 model: MOSModel, w: float, l: float, m: int = 1):
        super().__init__(name, (drain, gate, source, bulk))
        if w <= 0 or l <= 0:
            raise ValueError(f"MOSFET {name}: W and L must be positive")
        if m < 1:
            raise ValueError(f"MOSFET {name}: multiplier must be >= 1")
        self.model = model
        self.w = float(w)
        self.l = float(l)
        self.m = int(m)

    # ------------------------------------------------------------------
    # Core I-V in the normalized (NMOS, vds >= 0) orientation
    # ------------------------------------------------------------------
    @property
    def _k(self) -> float:
        return self.model.kp * (self.w / self.l) * self.m

    @property
    def _lam(self) -> float:
        # Lambda weakens with longer channels: lam ~ lam0 * lref / L.
        return self.model.lam * self.model.lref / self.l

    def _vth(self, vsb: float) -> tuple[float, float]:
        """Threshold voltage and its derivative d(vth)/d(vsb)."""
        model = self.model
        if model.gamma == 0.0:
            return model.vto, 0.0
        arg = model.phi + vsb
        if arg < 0.05:
            # Deep forward body bias: clamp vth flat (derivative zero) so the
            # Jacobian stays consistent with the clamped value.
            sq = math.sqrt(0.05)
            return model.vto + model.gamma * (sq - math.sqrt(model.phi)), 0.0
        sq = math.sqrt(arg)
        vth = model.vto + model.gamma * (sq - math.sqrt(model.phi))
        return vth, model.gamma / (2.0 * sq)

    def _ids(self, vgs: float, vds: float, vsb: float):
        """Drain current and partials wrt (vgs, vds, vsb); requires vds >= 0."""
        delta = self.model.smooth
        vth, dvth_dvsb = self._vth(vsb)
        vov = vgs - vth
        s = math.sqrt(vov * vov + 4.0 * delta * delta)
        vov_eff = 0.5 * (vov + s)
        dvov_eff = 0.5 * (1.0 + vov / s)

        vdsat = vov_eff
        r = vds / vdsat
        r4 = r**4
        u = (1.0 + r4) ** 0.25
        vdse = vds / u
        dvdse_dvds = (1.0 + r4) ** -1.25
        dvdse_dvdsat = (r**5) * (1.0 + r4) ** -1.25

        k = self._k
        lam = self._lam
        clm = 1.0 + lam * vds
        f = vov_eff * vdse - 0.5 * vdse * vdse
        ids = k * f * clm

        did_dvdse = k * clm * (vov_eff - vdse)
        did_dvov = k * clm * vdse + did_dvdse * dvdse_dvdsat
        did_dvgs = did_dvov * dvov_eff
        did_dvds = k * lam * f + did_dvdse * dvdse_dvds
        did_dvsb = -did_dvov * dvov_eff * dvth_dvsb

        op = _Operating(ids=ids, vgs=vgs, vds=vds, vsb=vsb, vth=vth, vdsat=vdsat,
                        gm=did_dvgs, gds=did_dvds, gmb=-did_dvsb)
        if vov < 0:
            op.region = "cutoff"
        elif vds < vdsat:
            op.region = "triode"
        else:
            op.region = "saturation"
        return ids, did_dvgs, did_dvds, did_dvsb, op

    # ------------------------------------------------------------------
    # Terminal currents in actual polarity/orientation
    # ------------------------------------------------------------------
    def terminal_current(self, vd: float, vg: float, vs: float, vb: float):
        """Current into the drain terminal and its partials wrt (vd, vg, vs, vb)."""
        sign = 1.0 if self.model.polarity == "n" else -1.0
        nvd, nvg, nvs, nvb = sign * vd, sign * vg, sign * vs, sign * vb
        if nvd >= nvs:
            ids, dg, dd, db, op = self._ids(nvg - nvs, nvd - nvs, nvs - nvb)
            op.reverse = False
            current = sign * ids
            derivs = (dd, dg, -dg - dd + db, -db)
        else:
            ids, dg, dd, db, op = self._ids(nvg - nvd, nvs - nvd, nvd - nvb)
            op.reverse = True
            current = -sign * ids
            # vgs_r = vg-vd, vds_r = vs-vd, vsb_r = vd-vb; I_drain = -ids_r
            derivs = (dg + dd - db, -dg, -dd, db)
        return current, derivs, op

    def operating_point(self, x, idx: DeviceIndex) -> _Operating:
        """Small-signal operating data at the solution ``x``."""
        vd, vg, vs, vb = (x[i] if i >= 0 else 0.0 for i in idx.nodes)
        _, _, op = self.terminal_current(vd, vg, vs, vb)
        return op

    # ------------------------------------------------------------------
    # Stamps
    # ------------------------------------------------------------------
    def stamp_static(self, sys, x, idx: DeviceIndex) -> None:
        d, g, s, b = idx.nodes
        vd, vg, vs, vb = (x[i] if i >= 0 else 0.0 for i in idx.nodes)
        current, derivs, _ = self.terminal_current(vd, vg, vs, vb)
        sys.add_res(d, current)
        sys.add_res(s, -current)
        for col, deriv in zip((d, g, s, b), derivs):
            sys.add_jac(d, col, deriv)
            sys.add_jac(s, col, -deriv)

    def stamp_smallsignal(self, sys, xop, idx: DeviceIndex) -> None:
        d, g, s, b = idx.nodes
        vd, vg, vs, vb = (xop[i] if i >= 0 else 0.0 for i in idx.nodes)
        _, derivs, _ = self.terminal_current(vd, vg, vs, vb)
        for col, deriv in zip((d, g, s, b), derivs):
            sys.add_G(d, col, deriv)
            sys.add_G(s, col, -deriv)
        cgs, cgd, cgb, cdb, csb = self._capacitances(vd, vg, vs, vb)
        sys.stamp_C_pair(g, s, cgs)
        sys.stamp_C_pair(g, d, cgd)
        sys.stamp_C_pair(g, b, cgb)
        sys.stamp_C_pair(d, b, cdb)
        sys.stamp_C_pair(s, b, csb)

    # ------------------------------------------------------------------
    # Meyer capacitances
    # ------------------------------------------------------------------
    def _capacitances(self, vd, vg, vs, vb):
        model = self.model
        cox_total = model.cox * self.w * self.l * self.m
        ovl_s = model.cgso * self.w * self.m
        ovl_d = model.cgdo * self.w * self.m
        # Junction (diffusion) capacitance: assume diffusion area ~ W * 3*lref.
        cj_diff = model.cj * self.w * 3.0 * model.lref * self.m
        _, _, op = self.terminal_current(vd, vg, vs, vb)
        if op.region == "cutoff":
            cgs, cgd, cgb = ovl_s, ovl_d, cox_total
        elif op.region == "saturation":
            cgs, cgd, cgb = (2.0 / 3.0) * cox_total + ovl_s, ovl_d, 0.0
        else:
            cgs = 0.5 * cox_total + ovl_s
            cgd = 0.5 * cox_total + ovl_d
            cgb = 0.0
        if op.reverse:
            cgs, cgd = cgd, cgs
        return cgs, cgd, cgb, cj_diff, cj_diff

    # Transient: Meyer caps held at start-of-step voltages (linear within step).
    def init_state(self, x, idx: DeviceIndex):
        voltages = tuple(x[i] if i >= 0 else 0.0 for i in idx.nodes)
        caps = self._capacitances(*voltages)
        vd, vg, vs, vb = voltages
        pairs = ((vg, vs), (vg, vd), (vg, vb), (vd, vb), (vs, vb))
        return {"caps": caps, "v": [p - q for p, q in pairs], "i": [0.0] * 5}

    _CAP_PAIRS = ((1, 2), (1, 0), (1, 3), (0, 3), (2, 3))  # (g,s) (g,d) (g,b) (d,b) (s,b)

    def stamp_dynamic(self, sys, x, idx: DeviceIndex, state, dt: float, method: str) -> None:
        for pair_index, (ia, ib) in enumerate(self._CAP_PAIRS):
            a, b = idx.nodes[ia], idx.nodes[ib]
            cap = state["caps"][pair_index]
            if cap <= 0.0:
                continue
            if method == "trapezoidal":
                geq = cap / (TRAP_THETA * dt)
                ieq = (geq * state["v"][pair_index]
                       + (1.0 - TRAP_THETA) / TRAP_THETA * state["i"][pair_index])
            else:
                geq = cap / dt
                ieq = geq * state["v"][pair_index]
            va = x[a] if a >= 0 else 0.0
            vb = x[b] if b >= 0 else 0.0
            current = geq * (va - vb) - ieq
            sys.add_res(a, current)
            sys.add_res(b, -current)
            sys.add_jac(a, a, geq)
            sys.add_jac(a, b, -geq)
            sys.add_jac(b, a, -geq)
            sys.add_jac(b, b, geq)

    def update_state(self, x, idx: DeviceIndex, state, dt: float, method: str):
        voltages = tuple(x[i] if i >= 0 else 0.0 for i in idx.nodes)
        new_v = []
        new_i = []
        for pair_index, (ia, ib) in enumerate(self._CAP_PAIRS):
            a, b = idx.nodes[ia], idx.nodes[ib]
            va = voltages[ia]
            vb = voltages[ib]
            v_new = va - vb
            cap = state["caps"][pair_index]
            if cap <= 0.0:
                i_new = 0.0
            elif method == "trapezoidal":
                geq = cap / (TRAP_THETA * dt)
                i_new = (geq * (v_new - state["v"][pair_index])
                         - (1.0 - TRAP_THETA) / TRAP_THETA * state["i"][pair_index])
            else:
                i_new = cap / dt * (v_new - state["v"][pair_index])
            new_v.append(v_new)
            new_i.append(i_new)
        return {"caps": self._capacitances(*voltages), "v": new_v, "i": new_i}

    # ------------------------------------------------------------------
    # Noise
    # ------------------------------------------------------------------
    def noise_sources(self, xop, idx: DeviceIndex) -> list[NoiseSource]:
        d, _, s, _ = idx.nodes
        op = self.operating_point(xop, idx)
        thermal = 4.0 * BOLTZMANN * ROOM_TEMPERATURE * (2.0 / 3.0) * max(op.gm, 0.0)
        # SPICE2 flicker form: KF * Id^AF / (COX * L^2 * f), COX per unit area.
        flicker_num = self.model.kf * abs(op.ids) ** self.model.af
        flicker_den = self.model.cox * self.l * self.l

        def psd(freq):
            # np.maximum keeps the PSD broadcastable over a frequency grid
            # (the batched noise analysis evaluates all frequencies at once).
            flicker = flicker_num / (flicker_den * np.maximum(freq, 1e-3))
            return thermal + flicker

        return [NoiseSource(f"{self.name}:channel", d, s, psd)]
