"""Compiled stamping plans: the vectorized MNA hot path.

The legacy inner loop allocates a fresh :class:`~repro.spice.mna.System`
every Newton iteration and re-stamps *every* device through per-entry Python
``add_jac``/``add_res`` calls.  A :class:`StampPlan` — built once per
:class:`~repro.spice.netlist.CompiledCircuit` and cached on it — replaces
that with:

* **Baked linear part.**  Devices are partitioned into linear and nonlinear
  sets at plan build.  The linear devices' constant Jacobian is stamped once
  into ``J_lin``; each iteration then starts from ``J[:] = J_lin`` and gets
  the linear residual from one matvec ``J_lin @ x``.  Independent-source
  values are re-read from the device every assembly (so ``dc_sweep``'s
  waveform swapping keeps working) and scattered through precomputed rows.
* **Vectorized nonlinear stamps.**  All exact-class :class:`MOSFET`\\ s (and
  :class:`Diode`\\ s) in a circuit are evaluated as one numpy batch per
  iteration and scattered into the Jacobian/residual with a single
  ``np.add.at`` per array, using flat index vectors resolved at plan build.
  Other nonlinear device classes fall back to their per-device
  ``stamp_static`` — the generic path of the stamping-plan contract.
* **Per-step affine transient companions.**  Companion stamps are affine in
  ``x`` for a fixed integration state (see the contract notes in
  ``devices/base.py``), so each transient step bakes ``J_step``/``c_step``
  once — vectorized for MOSFET Meyer capacitors and linear capacitors,
  captured at ``x = 0`` for any other dynamic device — and Newton iterations
  inside the step touch no Python device code at all.
* **Reused workspaces.**  One preallocated :class:`System` (plus the baked
  matrices) serves every assembly; gmin stepping lands on a precomputed
  diagonal index vector.

Numerical equivalence with the legacy path (same stamps, different summation
order) is pinned by ``tests/spice/test_stamp_plan.py``.  The legacy path
stays available through :func:`set_stamping_mode`/:func:`stamping` (or the
``REPRO_SPICE_STAMPING=legacy`` environment variable) and is what the
hot-path benchmark reports as "before".
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from time import perf_counter

import numpy as np

from . import profile
from .devices.base import TRAP_THETA
from .devices.diode import Diode
from .devices.mosfet import MOSFET
from .devices.passives import Capacitor
from .devices.sources import CurrentSource, VoltageSource
from .mna import System

__all__ = ["StampPlan", "stamping_mode", "set_stamping_mode", "stamping"]

_MODES = ("plan", "legacy")
_MODE = os.environ.get("REPRO_SPICE_STAMPING", "plan")
if _MODE not in _MODES:  # pragma: no cover - env misconfiguration
    _MODE = "plan"

_THETA_DT = TRAP_THETA  # alias: companion theta shared with the devices
_PAIR_SIGNS = np.array([1.0, -1.0, -1.0, 1.0])
_RES_SIGNS = np.array([-1.0, 1.0])


def stamping_mode() -> str:
    """Current assembly mode: ``"plan"`` (default) or ``"legacy"``."""
    return _MODE


def set_stamping_mode(mode: str) -> None:
    """Select the assembly implementation used by the analyses."""
    global _MODE
    if mode not in _MODES:
        raise ValueError(f"stamping mode must be one of {_MODES}, got {mode!r}")
    _MODE = mode


@contextmanager
def stamping(mode: str):
    """Temporarily switch the stamping mode (used by tests and benchmarks)."""
    previous = _MODE
    set_stamping_mode(mode)
    try:
        yield
    finally:
        set_stamping_mode(previous)


def _flat_scatter(rows: np.ndarray, cols: np.ndarray, size: int):
    """Precompute a ground-dropping scatter: value positions + flat indices.

    ``rows``/``cols`` may contain ``-1`` (ground); those entries are removed.
    Returns ``(sel, idx)`` such that ``np.add.at(J.ravel(), idx,
    values.ravel()[sel])`` reproduces per-entry ``add_jac`` calls in order.
    """
    keep = (rows >= 0) & (cols >= 0)
    sel = np.flatnonzero(keep.ravel())
    idx = (rows * size + cols).ravel()[sel]
    return sel, idx


def _flat_res_scatter(rows: np.ndarray):
    keep = rows >= 0
    sel = np.flatnonzero(keep.ravel())
    idx = rows.ravel()[sel]
    return sel, idx


class _MOSFETBatch:
    """Vectorized square-law model + stamps for the exact-class MOSFETs.

    Mirrors ``MOSFET._ids``/``terminal_current``/``_capacitances`` term by
    term so plan and legacy paths agree to summation-order rounding.
    """

    def __init__(self, entries, size: int):
        self.n = len(entries)
        devices = [dev for dev, _ in entries]
        idx = np.array([e.nodes for _, e in entries], dtype=np.intp)  # (n, 4)
        self.idx = idx
        self.gather = np.where(idx < 0, size, idx)  # -1 -> augmented zero slot
        models = [dev.model for dev in devices]
        self.sign = np.array([1.0 if m.polarity == "n" else -1.0 for m in models])
        self.k = np.array([dev._k for dev in devices])
        self.lam = np.array([dev._lam for dev in devices])
        self.vto = np.array([m.vto for m in models])
        self.gamma = np.array([m.gamma for m in models])
        self.phi = np.array([m.phi for m in models])
        self.sqrt_phi = np.sqrt(self.phi)
        self.smooth = np.array([m.smooth for m in models])
        # Capacitance building blocks (constant per device).
        self.cox_total = np.array([m.cox * d.w * d.l * d.m for m, d in zip(models, devices)])
        self.ovl_s = np.array([m.cgso * d.w * d.m for m, d in zip(models, devices)])
        self.ovl_d = np.array([m.cgdo * d.w * d.m for m, d in zip(models, devices)])
        self.cj_diff = np.array([m.cj * d.w * 3.0 * m.lref * d.m
                                 for m, d in zip(models, devices)])

        # Static scatter: rows (d, s) x cols (d, g, s, b), then residual (d, s).
        rows = np.repeat(idx[:, [0, 2]], 4, axis=1)            # d d d d s s s s
        cols = np.tile(idx, (1, 2))                            # d g s b d g s b
        self.jac_sel, self.jac_idx = _flat_scatter(rows, cols, size)
        self.res_sel, self.res_idx = _flat_res_scatter(idx[:, [0, 2]])

        # Meyer capacitor pairs (g,s) (g,d) (g,b) (d,b) (s,b).
        pairs = MOSFET._CAP_PAIRS
        self.pair_a_cols = np.array([p[0] for p in pairs])
        self.pair_b_cols = np.array([p[1] for p in pairs])
        pa = idx[:, self.pair_a_cols]                          # (n, 5)
        pb = idx[:, self.pair_b_cols]
        prow = np.stack([pa, pa, pb, pb], axis=2)              # (n, 5, 4)
        pcol = np.stack([pa, pb, pa, pb], axis=2)
        self.pjac_sel, self.pjac_idx = _flat_scatter(prow, pcol, size)
        self.pres_sel, self.pres_idx = _flat_res_scatter(np.stack([pa, pb], axis=2))

    # -- model evaluation ------------------------------------------------
    def evaluate(self, xg: np.ndarray):
        """Terminal currents, derivatives, and region data for every device."""
        v = xg[self.gather]                                    # (n, 4)
        nv = self.sign[:, None] * v
        nvd, nvg, nvs, nvb = nv[:, 0], nv[:, 1], nv[:, 2], nv[:, 3]
        fwd = nvd >= nvs
        vgs = np.where(fwd, nvg - nvs, nvg - nvd)
        vds = np.where(fwd, nvd - nvs, nvs - nvd)
        vsb = np.where(fwd, nvs - nvb, nvd - nvb)

        arg = np.maximum(self.phi + vsb, 0.05)
        sq = np.sqrt(arg)
        vth = self.vto + self.gamma * (sq - self.sqrt_phi)
        dvth = np.where((self.phi + vsb < 0.05) | (self.gamma == 0.0),
                        0.0, self.gamma / (2.0 * sq))

        delta = self.smooth
        vov = vgs - vth
        s = np.sqrt(vov * vov + 4.0 * delta * delta)
        vov_eff = 0.5 * (vov + s)
        dvov_eff = 0.5 * (1.0 + vov / s)

        vdsat = vov_eff
        r = vds / vdsat
        r4 = r ** 4
        one_p = 1.0 + r4
        u = one_p ** 0.25
        vdse = vds / u
        dvdse_dvds = one_p ** -1.25
        dvdse_dvdsat = (r ** 5) * dvdse_dvds

        clm = 1.0 + self.lam * vds
        f = vov_eff * vdse - 0.5 * vdse * vdse
        ids = self.k * f * clm

        did_dvdse = self.k * clm * (vov_eff - vdse)
        did_dvov = self.k * clm * vdse + did_dvdse * dvdse_dvdsat
        did_dvgs = did_dvov * dvov_eff
        did_dvds = self.k * self.lam * f + did_dvdse * dvdse_dvds
        did_dvsb = -did_dvov * dvov_eff * dvth

        signed = self.sign * ids
        current = np.where(fwd, signed, -signed)
        # Terminal derivatives wrt (vd, vg, vs, vb); polarity signs cancel.
        # The reverse orientation is a signed permutation of the forward one:
        # (dg+dd-db, -dg, -dd, db) == -(fwd[2], fwd[1], fwd[0], fwd[3]).
        forward = np.stack([did_dvds, did_dvgs,
                            -did_dvgs - did_dvds + did_dvsb, -did_dvsb], axis=1)
        derivs = np.where(fwd[:, None], forward, -forward[:, [2, 1, 0, 3]])
        return current, derivs, vov, vds, vdsat, ~fwd

    def static_values(self, xg: np.ndarray):
        current, derivs, *_ = self.evaluate(xg)
        jac = np.concatenate([derivs, -derivs], axis=1).ravel()[self.jac_sel]
        res = np.stack([current, -current], axis=1).ravel()[self.res_sel]
        return jac, res

    def capacitances(self, xg: np.ndarray) -> np.ndarray:
        """Meyer capacitances (n, 5) at the given node voltages."""
        _, _, vov, vds, vdsat, reverse = self.evaluate(xg)
        cutoff = vov < 0.0
        saturation = ~cutoff & (vds >= vdsat)
        cgs = np.where(cutoff, self.ovl_s,
                       np.where(saturation, (2.0 / 3.0) * self.cox_total + self.ovl_s,
                                0.5 * self.cox_total + self.ovl_s))
        cgd = np.where(cutoff | saturation, self.ovl_d,
                       0.5 * self.cox_total + self.ovl_d)
        cgb = np.where(cutoff, self.cox_total, 0.0)
        cgs, cgd = (np.where(reverse, cgd, cgs), np.where(reverse, cgs, cgd))
        return np.stack([cgs, cgd, cgb, self.cj_diff, self.cj_diff], axis=1)

    def pair_voltages(self, xg: np.ndarray) -> np.ndarray:
        v = xg[self.gather]
        return v[:, self.pair_a_cols] - v[:, self.pair_b_cols]

    def companions(self, caps, v, i, dt: float, method: str):
        """Companion conductances/currents for the state (start of step)."""
        if method == "trapezoidal":
            geq = caps / (_THETA_DT * dt)
            ieq = geq * v + (1.0 - _THETA_DT) / _THETA_DT * i
        else:
            geq = caps / dt
            ieq = geq * v
        live = caps > 0.0
        return np.where(live, geq, 0.0), np.where(live, ieq, 0.0)

    def updated_currents(self, caps, v_old, i_old, v_new, dt: float, method: str):
        if method == "trapezoidal":
            geq = caps / (_THETA_DT * dt)
            i_new = geq * (v_new - v_old) - (1.0 - _THETA_DT) / _THETA_DT * i_old
        else:
            i_new = caps / dt * (v_new - v_old)
        return np.where(caps > 0.0, i_new, 0.0)


class _DiodeBatch:
    """Vectorized Shockley diode with the same pnjlim-style linearization."""

    def __init__(self, entries, size: int):
        self.n = len(entries)
        idx = np.array([e.nodes for _, e in entries], dtype=np.intp)  # (n, 2)
        self.gather = np.where(idx < 0, size, idx)
        self.isat = np.array([dev.i_s for dev, _ in entries])
        self.vte = np.array([dev._vte for dev, _ in entries])
        self.vcrit = np.array([dev._vcrit for dev, _ in entries])
        exp_crit = np.exp(self.vcrit / self.vte)
        self.g0 = self.isat / self.vte * exp_crit
        self.i0 = self.isat * (exp_crit - 1.0)

        a, b = idx[:, 0], idx[:, 1]
        rows = np.stack([a, a, b, b], axis=1)
        cols = np.stack([a, b, a, b], axis=1)
        self.jac_sel, self.jac_idx = _flat_scatter(rows, cols, size)
        self.res_sel, self.res_idx = _flat_res_scatter(idx)

    def static_values(self, xg: np.ndarray):
        v = xg[self.gather]
        vd = v[:, 0] - v[:, 1]
        lin = vd > self.vcrit
        neg = vd < -20.0 * self.vte
        safe = np.where(lin | neg, 0.0, vd)
        expv = np.exp(safe / self.vte)
        current = np.where(lin, self.i0 + self.g0 * (vd - self.vcrit),
                           np.where(neg, -self.isat, self.isat * (expv - 1.0)))
        g = np.where(lin, self.g0,
                     np.where(neg, 1e-15, self.isat / self.vte * expv))
        jac = (g[:, None] * _PAIR_SIGNS).ravel()[self.jac_sel]
        res = np.stack([current, -current], axis=1).ravel()[self.res_sel]
        return jac, res


class _CapacitorBatch:
    """Vectorized companion stamps for exact-class linear capacitors."""

    def __init__(self, entries, size: int):
        self.n = len(entries)
        idx = np.array([e.nodes for _, e in entries], dtype=np.intp)  # (n, 2)
        self.gather = np.where(idx < 0, size, idx)
        self.value = np.array([dev.value for dev, _ in entries])
        a, b = idx[:, 0], idx[:, 1]
        rows = np.stack([a, a, b, b], axis=1)
        cols = np.stack([a, b, a, b], axis=1)
        self.jac_sel, self.jac_idx = _flat_scatter(rows, cols, size)
        self.res_sel, self.res_idx = _flat_res_scatter(idx)

    def voltages(self, xg: np.ndarray) -> np.ndarray:
        v = xg[self.gather]
        return v[:, 0] - v[:, 1]

    def companions(self, v, i, dt: float, method: str):
        if method == "trapezoidal":
            geq = self.value / (_THETA_DT * dt)
            ieq = geq * v + (1.0 - _THETA_DT) / _THETA_DT * i
        else:
            geq = self.value / dt
            ieq = geq * v
        return geq, ieq

    def updated_currents(self, v_old, i_old, v_new, dt: float, method: str):
        geq, ieq = self.companions(v_old, i_old, dt, method)
        return geq * v_new - ieq


class _TransientState:
    """Integration state owned by the plan during one transient run."""

    __slots__ = ("mos_caps", "mos_v", "mos_i", "cap_v", "cap_i", "generic")

    def __init__(self, mos_caps, mos_v, mos_i, cap_v, cap_i, generic):
        self.mos_caps = mos_caps
        self.mos_v = mos_v
        self.mos_i = mos_i
        self.cap_v = cap_v
        self.cap_i = cap_i
        self.generic = generic


class StampPlan:
    """Precompiled assembly program for one :class:`CompiledCircuit`."""

    def __init__(self, compiled):
        self.compiled = compiled
        size = compiled.size
        self.size = size
        self._num_nodes = compiled.num_nodes
        self._sys = System(size)
        self._xg = np.zeros(size + 1)  # x augmented with a trailing ground zero
        self._x0 = np.zeros(size)
        self._diag_flat = np.arange(self._num_nodes, dtype=np.intp) * (size + 1)

        mos_entries, diode_entries, cap_entries = [], [], []
        self._generic_nonlinear = []   # (device, idx): per-iteration fallback
        self._generic_dynamic = []     # (device, idx): per-step affine capture
        linear = []
        for device, idx in compiled.devices_with_indices():
            if device.nonlinear:
                if type(device) is MOSFET:
                    mos_entries.append((device, idx))
                elif type(device) is Diode:
                    diode_entries.append((device, idx))
                else:
                    self._generic_nonlinear.append((device, idx))
            else:
                linear.append((device, idx))
            if device.dynamic:
                if type(device) is MOSFET:
                    pass  # Meyer caps handled by the MOSFET batch
                elif type(device) is Capacitor:
                    cap_entries.append((device, idx))
                else:
                    self._generic_dynamic.append((device, idx))

        self._mos = _MOSFETBatch(mos_entries, size) if mos_entries else None
        self._diodes = _DiodeBatch(diode_entries, size) if diode_entries else None
        self._caps = _CapacitorBatch(cap_entries, size) if cap_entries else None

        # Bake the linear devices once: constant Jacobian + constant residual
        # offset, captured at x = 0 with source_scale = 0 so independent-source
        # values stay out of the bake (they are re-read every assembly).
        scratch = System(size)
        scratch.source_scale = 0.0
        scratch.time = None
        for device, idx in linear:
            device.stamp_static(scratch, self._x0, idx)
        self._J_lin = scratch.J.copy()
        self._c_lin = scratch.f.copy()

        self._vsources = [(device, idx.branches[0])
                          for device, idx in compiled.devices_with_indices()
                          if isinstance(device, VoltageSource)]
        self._isources = [(device, idx.nodes[0], idx.nodes[1])
                          for device, idx in compiled.devices_with_indices()
                          if isinstance(device, CurrentSource)]

        # Per-step transient bake targets.
        self._J_step = np.zeros((size, size))
        self._c_step = np.zeros(size)
        self._step_time: float | None = None
        self._dyn_scratch = System(size) if self._generic_dynamic else None

    # ------------------------------------------------------------------
    # Shared pieces
    # ------------------------------------------------------------------
    def _apply_sources(self, f: np.ndarray, scale: float, time: float | None) -> None:
        """Independent-source residual terms, read fresh from the devices."""
        for device, branch in self._vsources:
            f[branch] -= scale * device.voltage_at(time)
        for device, a, b in self._isources:
            current = scale * device.current_at(time)
            if a >= 0:
                f[a] += current
            if b >= 0:
                f[b] -= current

    def _stamp_nonlinear(self, sys: System, x: np.ndarray, xg: np.ndarray) -> None:
        J_flat = sys.J.ravel()
        f = sys.f
        if self._mos is not None:
            jac, res = self._mos.static_values(xg)
            np.add.at(J_flat, self._mos.jac_idx, jac)
            np.add.at(f, self._mos.res_idx, res)
        if self._diodes is not None:
            jac, res = self._diodes.static_values(xg)
            np.add.at(J_flat, self._diodes.jac_idx, jac)
            np.add.at(f, self._diodes.res_idx, res)
        for device, idx in self._generic_nonlinear:
            device.stamp_static(sys, x, idx)

    def _gather(self, x: np.ndarray) -> np.ndarray:
        xg = self._xg
        xg[:-1] = x
        return xg

    # ------------------------------------------------------------------
    # DC / operating-point assembly
    # ------------------------------------------------------------------
    def assemble_static(self, x: np.ndarray, *, gmin: float = 0.0,
                        source_scale: float = 1.0,
                        time: float | None = None) -> System:
        """One Newton assembly: ``J[:] = J_lin`` + vectorized nonlinear scatter."""
        sys = self._sys
        sys.source_scale = source_scale
        sys.time = time
        J, f = sys.J, sys.f
        J[:] = self._J_lin
        np.matmul(self._J_lin, x, out=f)
        f += self._c_lin
        self._apply_sources(f, source_scale, time)
        self._stamp_nonlinear(sys, x, self._gather(x))
        if gmin:
            nn = self._num_nodes
            J.ravel()[self._diag_flat] += gmin
            f[:nn] += gmin * x[:nn]
        return sys

    # ------------------------------------------------------------------
    # Transient stepping
    # ------------------------------------------------------------------
    def init_transient(self, x: np.ndarray) -> _TransientState:
        """Integration state at the initial solution (mirrors ``init_state``)."""
        xg = self._gather(x)
        mos_caps = mos_v = mos_i = None
        if self._mos is not None:
            mos_caps = self._mos.capacitances(xg)
            mos_v = self._mos.pair_voltages(xg)
            mos_i = np.zeros_like(mos_v)
        cap_v = cap_i = None
        if self._caps is not None:
            cap_v = self._caps.voltages(xg)
            cap_i = np.zeros_like(cap_v)
        generic = [device.init_state(x, idx) for device, idx in self._generic_dynamic]
        return _TransientState(mos_caps, mos_v, mos_i, cap_v, cap_i, generic)

    def begin_step(self, state: _TransientState, time: float, dt: float,
                   method: str, *, gmin: float = 1e-12) -> None:
        """Bake the affine (linear + companion) part of one transient step."""
        t0 = perf_counter()
        J = self._J_step
        c = self._c_step
        J[:] = self._J_lin
        c[:] = self._c_lin
        # The floating-node gmin rides in J_step, so J_step @ x carries its
        # residual term too.
        J.ravel()[self._diag_flat] += gmin
        J_flat = J.ravel()
        if self._mos is not None:
            geq, ieq = self._mos.companions(state.mos_caps, state.mos_v,
                                            state.mos_i, dt, method)
            np.add.at(J_flat, self._mos.pjac_idx,
                      (geq[:, :, None] * _PAIR_SIGNS).ravel()[self._mos.pjac_sel])
            np.add.at(c, self._mos.pres_idx,
                      (ieq[:, :, None] * _RES_SIGNS).ravel()[self._mos.pres_sel])
        if self._caps is not None:
            geq, ieq = self._caps.companions(state.cap_v, state.cap_i, dt, method)
            np.add.at(J_flat, self._caps.jac_idx,
                      (geq[:, None] * _PAIR_SIGNS).ravel()[self._caps.jac_sel])
            np.add.at(c, self._caps.res_idx,
                      (ieq[:, None] * _RES_SIGNS).ravel()[self._caps.res_sel])
        if self._generic_dynamic:
            scratch = self._dyn_scratch
            scratch.reset()
            for (device, idx), dev_state in zip(self._generic_dynamic, state.generic):
                if dev_state is not None:
                    device.stamp_dynamic(scratch, self._x0, idx, dev_state, dt, method)
            J += scratch.J
            c += scratch.f
        self._step_time = time
        profile.add("assemble_s", perf_counter() - t0)

    def assemble_transient(self, x: np.ndarray) -> System:
        """Newton assembly within the step prepared by :meth:`begin_step`."""
        sys = self._sys
        sys.source_scale = 1.0
        sys.time = self._step_time
        J, f = sys.J, sys.f
        J[:] = self._J_step
        np.matmul(self._J_step, x, out=f)
        f += self._c_step
        self._apply_sources(f, 1.0, self._step_time)
        self._stamp_nonlinear(sys, x, self._gather(x))
        return sys

    def advance(self, state: _TransientState, x_new: np.ndarray, dt: float,
                method: str) -> None:
        """Advance integration state after a converged step."""
        xg = self._gather(x_new)
        if self._mos is not None:
            v_new = self._mos.pair_voltages(xg)
            state.mos_i = self._mos.updated_currents(
                state.mos_caps, state.mos_v, state.mos_i, v_new, dt, method)
            state.mos_v = v_new
            state.mos_caps = self._mos.capacitances(xg)
        if self._caps is not None:
            v_new = self._caps.voltages(xg)
            state.cap_i = self._caps.updated_currents(
                state.cap_v, state.cap_i, v_new, dt, method)
            state.cap_v = v_new
        for pos, (device, idx) in enumerate(self._generic_dynamic):
            if state.generic[pos] is not None:
                state.generic[pos] = device.update_state(
                    x_new, idx, state.generic[pos], dt, method)
