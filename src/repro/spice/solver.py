"""Newton-Raphson solver with the homotopy fallbacks used by the analyses.

The solver works on assembled :class:`~repro.spice.mna.System` objects: a
``build(x)`` callback re-stamps the Jacobian/residual at the current iterate.
Robustness features mirror production SPICE engines:

* per-iteration step limiting (node voltages move at most ``vlimit`` volts),
* ``gmin`` stepping — a shrinking conductance from every node to ground,
* source stepping — ramping all independent sources from zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from . import profile
from .errors import ConvergenceError

__all__ = ["NewtonResult", "newton_solve", "solve_dc"]

_GMIN_SEQUENCE = (1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10, 1e-11, 1e-12)
_SOURCE_STEPS = (0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 1.0)


@dataclass
class NewtonResult:
    x: np.ndarray
    converged: bool
    iterations: int
    residual: float


def newton_solve(build, x0: np.ndarray, *, max_iter: int = 100, abstol: float = 1e-9,
                 reltol: float = 1e-6, vlimit: float = 0.4) -> NewtonResult:
    """Damped Newton iteration on ``F(x) = 0``.

    ``build(x)`` must return an assembled :class:`System`.  Convergence is
    declared when the (un-damped) update is below ``abstol + reltol * |x|``
    component-wise.
    """
    x = np.array(x0, dtype=np.float64, copy=True)
    iterations = 0
    residual = np.inf
    profile.add("newton_solves", 1)
    for iterations in range(1, max_iter + 1):
        profile.add("newton_iterations", 1)
        t0 = perf_counter()
        sys = build(x)
        t1 = perf_counter()
        profile.add("assemble_s", t1 - t0)
        residual = float(np.max(np.abs(sys.f))) if sys.f.size else 0.0
        try:
            dx = np.linalg.solve(sys.J, -sys.f)
        except np.linalg.LinAlgError:
            # Singular Jacobian: fall back to least squares with tiny ridge.
            ridge = sys.J + 1e-12 * np.eye(sys.size)
            dx, *_ = np.linalg.lstsq(ridge, -sys.f, rcond=None)
        profile.add("solve_s", perf_counter() - t1)
        if not np.all(np.isfinite(dx)):
            return NewtonResult(x, False, iterations, residual)
        step = float(np.max(np.abs(dx))) if dx.size else 0.0
        tol = abstol + reltol * np.abs(x)
        if np.all(np.abs(dx) <= tol):
            x = x + dx
            return NewtonResult(x, True, iterations, residual)
        # Damping: scale the whole update so no component moves more than vlimit.
        if step > vlimit:
            dx = dx * (vlimit / step)
        x = x + dx
    return NewtonResult(x, False, iterations, residual)


def solve_dc(compiled, assemble, x0: np.ndarray | None = None, *,
             max_iter: int = 100, vlimit: float = 0.4) -> np.ndarray:
    """DC solve with gmin and source stepping fallbacks.

    ``assemble(x, gmin, source_scale)`` must return an assembled
    :class:`System` (the analyses provide this closure).  Raises
    :class:`ConvergenceError` when every strategy fails.
    """
    x = np.zeros(compiled.size) if x0 is None else np.array(x0, dtype=np.float64)

    def attempt(x_start, gmin, scale, max_iter_local=max_iter):
        return newton_solve(lambda xx: assemble(xx, gmin, scale), x_start,
                            max_iter=max_iter_local, vlimit=vlimit)

    # Plain Newton from the provided initial guess.
    result = attempt(x, 1e-12, 1.0)
    if result.converged:
        return result.x

    # Gmin stepping, warm-started along the sequence.
    x_path = np.array(x, copy=True)
    ok = True
    for gmin in _GMIN_SEQUENCE:
        result = attempt(x_path, gmin, 1.0)
        if not result.converged:
            ok = False
            break
        x_path = result.x
    if ok:
        return x_path

    # Source stepping with a mild gmin floor, then release the gmin.
    x_path = np.zeros(compiled.size)
    ok = True
    for scale in _SOURCE_STEPS:
        result = attempt(x_path, 1e-9, scale, max_iter_local=150)
        if not result.converged:
            ok = False
            break
        x_path = result.x
    if ok:
        for gmin in (1e-10, 1e-11, 1e-12):
            result = attempt(x_path, gmin, 1.0)
            if not result.converged:
                ok = False
                break
            x_path = result.x
        if ok:
            return x_path

    raise ConvergenceError(
        f"DC solve failed for {compiled.circuit.title!r} "
        f"(best residual {result.residual:.3e} after {result.iterations} iterations)")
