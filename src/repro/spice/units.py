"""SPICE-style engineering-unit parsing and formatting.

Supports the classic suffixes (``f p n u m k meg g t``) plus ``mil`` is not
needed for this project.  Parsing is case-insensitive, as in SPICE, which is
why ``m`` is milli and ``meg`` is mega.
"""

from __future__ import annotations

import re

__all__ = ["parse_value", "format_eng", "SUFFIXES"]

SUFFIXES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
    "a": 1e-18,
}

_VALUE_RE = re.compile(
    r"^\s*([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)\s*(meg|[tgkmunpfa])?[a-z]*\s*$",
    re.IGNORECASE,
)


def parse_value(text: str | float | int) -> float:
    """Parse ``"2.5k"``, ``"100n"``, ``"3meg"`` ... into a float.

    Numbers pass through unchanged; trailing unit letters after the suffix
    (e.g. ``"100nF"``) are ignored, as in SPICE.
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _VALUE_RE.match(text)
    if not match:
        raise ValueError(f"cannot parse value: {text!r}")
    base = float(match.group(1))
    suffix = match.group(2)
    if suffix:
        base *= SUFFIXES[suffix.lower()]
    return base


def format_eng(value: float, unit: str = "", digits: int = 4) -> str:
    """Format a value with engineering notation, e.g. ``format_eng(2.5e-9, 's')``."""
    if value == 0:
        return f"0 {unit}".strip()
    magnitude = abs(value)
    for suffix, scale in (("T", 1e12), ("G", 1e9), ("M", 1e6), ("k", 1e3), ("", 1.0),
                          ("m", 1e-3), ("u", 1e-6), ("n", 1e-9), ("p", 1e-12), ("f", 1e-15)):
        if magnitude >= scale:
            return f"{value / scale:.{digits}g} {suffix}{unit}".strip()
    return f"{value:.{digits}g} {unit}".strip()
