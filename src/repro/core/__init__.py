"""DNN-Opt core: FoM, pseudo-samples, actor-critic networks, Algorithm 1,
the ask/tell optimizer protocol and the :class:`Study` run driver."""

from .actor import Actor
from .critic import Critic
from .dnn_opt import DNNOpt
from .engine import EvalEngine, EvalHandle, default_workers
from .fom import fom_from_raw, fom_normalized, fom_tensor
from .history import BudgetExhausted, OptimizationHistory, Optimizer
from .pseudo import generate_pseudo_samples
from .study import Study
from .warmstart import WarmStart

__all__ = [
    "DNNOpt",
    "Actor",
    "Critic",
    "DiskCache",
    "EvalEngine",
    "EvalHandle",
    "default_workers",
    "Optimizer",
    "OptimizationHistory",
    "BudgetExhausted",
    "FleetCoordinator",
    "RegistryServer",
    "ServiceError",
    "DeadlineExceeded",
    "FaultPlan",
    "FaultSpec",
    "ChaosProxy",
    "Study",
    "WorkerRegistry",
    "WarmStart",
    "fom_normalized",
    "fom_from_raw",
    "fom_tensor",
    "generate_pseudo_samples",
]


def __getattr__(name):
    # Lazy: ``python -m repro.core.service`` / ``python -m
    # repro.core.diskcache`` must not find those modules pre-imported by
    # this package init (runpy would warn and run a second copy), so the
    # service/fleet surface resolves on first touch instead.
    if name in ("ServiceError", "DeadlineExceeded"):
        from . import service
        return getattr(service, name)
    if name == "DiskCache":
        from .diskcache import DiskCache
        return DiskCache
    if name in ("FleetCoordinator", "RegistryServer", "WorkerRegistry"):
        from . import fleet
        return getattr(fleet, name)
    if name in ("FaultPlan", "FaultSpec", "ChaosProxy"):
        from . import chaos
        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
