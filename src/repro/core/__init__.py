"""DNN-Opt core: FoM, pseudo-samples, actor-critic networks, Algorithm 1."""

from .actor import Actor
from .critic import Critic
from .dnn_opt import DNNOpt
from .engine import EvalEngine, default_workers
from .fom import fom_from_raw, fom_normalized, fom_tensor
from .history import OptimizationHistory, Optimizer
from .pseudo import generate_pseudo_samples

__all__ = [
    "DNNOpt",
    "Actor",
    "Critic",
    "EvalEngine",
    "default_workers",
    "Optimizer",
    "OptimizationHistory",
    "fom_normalized",
    "fom_from_raw",
    "fom_tensor",
    "generate_pseudo_samples",
]
