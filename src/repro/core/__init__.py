"""DNN-Opt core: FoM, pseudo-samples, actor-critic networks, Algorithm 1,
the ask/tell optimizer protocol and the :class:`Study` run driver."""

from .actor import Actor
from .critic import Critic
from .dnn_opt import DNNOpt
from .engine import EvalEngine, EvalHandle, default_workers
from .fom import fom_from_raw, fom_normalized, fom_tensor
from .history import BudgetExhausted, OptimizationHistory, Optimizer
from .pseudo import generate_pseudo_samples
from .study import Study

__all__ = [
    "DNNOpt",
    "Actor",
    "Critic",
    "EvalEngine",
    "EvalHandle",
    "default_workers",
    "Optimizer",
    "OptimizationHistory",
    "BudgetExhausted",
    "Study",
    "fom_normalized",
    "fom_from_raw",
    "fom_tensor",
    "generate_pseudo_samples",
]
