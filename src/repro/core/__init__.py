"""DNN-Opt core: FoM, pseudo-samples, actor-critic networks, Algorithm 1,
the ask/tell optimizer protocol and the :class:`Study` run driver."""

from .actor import Actor
from .critic import Critic
from .diskcache import DiskCache
from .dnn_opt import DNNOpt
from .engine import EvalEngine, EvalHandle, default_workers
from .fom import fom_from_raw, fom_normalized, fom_tensor
from .history import BudgetExhausted, OptimizationHistory, Optimizer
from .pseudo import generate_pseudo_samples
from .study import Study
from .warmstart import WarmStart

__all__ = [
    "DNNOpt",
    "Actor",
    "Critic",
    "DiskCache",
    "EvalEngine",
    "EvalHandle",
    "default_workers",
    "Optimizer",
    "OptimizationHistory",
    "BudgetExhausted",
    "ServiceError",
    "Study",
    "WarmStart",
    "fom_normalized",
    "fom_from_raw",
    "fom_tensor",
    "generate_pseudo_samples",
]


def __getattr__(name):
    # Lazy: ``python -m repro.core.service`` must not find the service
    # module pre-imported by this package init (runpy would warn and run a
    # second copy).
    if name == "ServiceError":
        from .service import ServiceError
        return ServiceError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
