"""Pseudo-sample generation — Eq. 2 of the paper.

From ``N`` simulated designs the critic's training set is expanded to (up
to) ``N^2`` *pseudo-samples*: for every ordered pair ``(i, j)``

    input  = [x_i, x_j - x_i]          (dimension 2d)
    target = f(x_j)                     (the already-simulated specs of x_j)

so the critic learns the *effect of moving* from any anchor design by any
archive displacement — the property the actor exploits.  Because ``N^2``
grows quadratically, pairs are uniformly subsampled beyond ``max_pairs``;
the ``N`` self-pairs ``(x_i, 0) -> f(x_i)`` are always included so the
critic stays anchored on the raw data.
"""

from __future__ import annotations

import numpy as np

__all__ = ["generate_pseudo_samples"]


def generate_pseudo_samples(X: np.ndarray, Y: np.ndarray, *,
                            rng: np.random.Generator,
                            max_pairs: int = 20_000,
                            include_self_pairs: bool = True) -> tuple[np.ndarray, np.ndarray]:
    """Build the critic training set.

    Parameters
    ----------
    X:
        Simulated designs, shape ``(N, d)`` (any consistent coordinates; the
        optimizer passes normalized designs).
    Y:
        Corresponding targets, shape ``(N, m+1)``.
    max_pairs:
        Cap on the number of generated pairs (the paper's full ``N^2`` is
        used whenever it fits under the cap).
    include_self_pairs:
        Always include the ``(x_i, 0)`` pairs (recommended).

    Returns
    -------
    inputs, targets:
        Arrays of shape ``(P, 2d)`` and ``(P, m+1)``.
    """
    X = np.atleast_2d(np.asarray(X, dtype=np.float64))
    Y = np.atleast_2d(np.asarray(Y, dtype=np.float64))
    n, d = X.shape
    if len(Y) != n:
        raise ValueError(f"X has {n} rows but Y has {len(Y)}")
    if max_pairs < 1:
        raise ValueError("max_pairs must be >= 1")

    if n * n <= max_pairs:
        anchor = np.repeat(np.arange(n), n)
        target = np.tile(np.arange(n), n)
    else:
        budget = max_pairs
        parts = []
        if include_self_pairs and n <= budget:
            self_idx = np.arange(n)
            parts.append((self_idx, self_idx))
            budget -= n
        anchor_rand = rng.integers(0, n, size=budget)
        target_rand = rng.integers(0, n, size=budget)
        parts.append((anchor_rand, target_rand))
        anchor = np.concatenate([p[0] for p in parts])
        target = np.concatenate([p[1] for p in parts])

    inputs = np.concatenate([X[anchor], X[target] - X[anchor]], axis=1)
    targets = Y[target]
    return inputs, targets
