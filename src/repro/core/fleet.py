"""Multi-tenant evaluation control plane: registry, fair scheduler, fleet.

:mod:`repro.core.service` gives one Study a static list of worker hosts.
This module is the control plane above it — the piece that lets *many*
concurrent Studies (tenants) share one *elastic* worker fleet, the
industrial pattern behind DNN-Opt's deployment story (many sizing runs
against one simulator farm):

* :class:`WorkerRegistry` — a heartbeat-refreshed table of live worker
  addresses.  Workers started with ``python -m repro.core.service
  --register HOST:PORT`` announce themselves and keep a heartbeat alive;
  an address whose heartbeats stop **ages out** and its in-flight chunks
  are re-queued.  Addresses may also be pinned statically (the old
  ``hosts=`` behaviour) for fixed deployments.
* :class:`RegistryServer` — the TCP endpoint workers register against,
  speaking the same length-prefixed JSON frames as the evaluation
  protocol.  It doubles as the fleet's **metrics endpoint**: a ``stats``
  op returns queue depth, per-tenant sims/sec and cache hit-rate,
  in-flight chunks and per-worker totals.
* :class:`FleetCoordinator` — the job/queue layer.  Each tenant gets a
  standard :class:`~repro.core.engine.EvalEngine` from
  :meth:`FleetCoordinator.engine` (so Studies, the runner, warm-starts and
  the cache tiers all work unchanged); the engine's cache-missed designs
  flow into a per-tenant chunk queue, and per-host pump threads pull
  chunks through a **weighted deficit round-robin** scheduler — every
  queued tenant is served at chunk granularity in cyclic order, credits
  refilled in proportion to its ``priority``, so no tenant can starve
  another no matter how large its batches are.  Chunks ride
  :class:`~repro.core.service.MultiplexedConnection`, so one worker
  connection interleaves many tenants' requests.

Elasticity and failure semantics follow the service's bounded-failover
contract: a transport error (or a heartbeat age-out) drops the host,
re-queues its chunks for the survivors, and counts against a bounded
per-chunk requeue budget — so losing a worker mid-run is absorbed with
bit-identical results, while losing *every* worker surfaces as a prompt
:class:`~repro.core.service.ServiceError` with the failure trail.  A
worker's own *rejection* of a well-formed request (the evaluation raised)
aborts only the affected dispatch — deterministic failures are never
retried onto other shards.

On top of that contract this module hardens the failure domain:
``chunk_timeout`` arms a per-chunk deadline (a worker that accepts a chunk
and never replies is a retryable transport failure, not a hang);
``hedge_factor`` re-dispatches straggling chunks speculatively to another
host (first reply wins, duplicates discarded — harmless because evals are
deterministic and cache-deduped); failed hosts are quarantined under
capped exponential backoff with deterministic jitter instead of a fixed
retry-after; and a tenant created with ``degraded="local"`` falls back to
bounded in-process evaluation when the fleet has zero live workers for
``degraded_after`` seconds.  All recovery paths preserve the bit-identity
contract below and are pinned under seeded fault injection by
:mod:`repro.core.chaos` (``tests/core/test_chaos.py``).

Typical wiring::

    fleet = FleetCoordinator()           # own registry
    fleet.listen(port=9100)              # registry + metrics endpoint
    # workers (any machine):  python -m repro.core.service \
    #                           --register coordinator:9100
    eng_a = fleet.engine("study-a", priority=2.0)
    eng_b = fleet.engine("study-b")
    # drive Studies on eng_a/eng_b concurrently; fleet.stats() any time
    fleet.close()

Determinism: chunk results are written back by batch index and every
design is evaluated by an unchanged serial engine on *some* worker, so a
tenant's optimizer history is bit-identical to a serial run regardless of
scheduling, host churn, or what the other tenants are doing — pinned by
``tests/core/test_fleet.py``.

Concurrency checking: this module's lock nesting (``FleetCoordinator._cond``
over ``_DispatchState._lock``, the pump's engine-lock handoffs) is part of
the static lock-order graph (``python -m repro.tools.flow src --check``,
rules RP06/RP07) and is validated at runtime by the lock sanitizer
(``REPRO_SANITIZE=1``; classes listed in
``repro.tools.protocol_schema.SANITIZED_CLASSES``).  When adding or nesting
a lock here, follow the "Adding a lock" checklist in the README.
"""

from __future__ import annotations

import logging
import threading
import time
import weakref
from collections import deque
from itertools import count

import numpy as np

from .history import BudgetExhausted
from .service import (PROTOCOL_VERSION, MultiplexedConnection, RemoteDispatcher,
                      ServiceError, _chunk_ranges, backoff_delay, parse_host,
                      recv_msg, send_msg)

__all__ = ["WorkerRegistry", "RegistryServer", "FleetCoordinator"]

_log = logging.getLogger("repro.core.fleet")

#: cap on the deadline-pressure credit multiplier: an expired (or nearly
#: expired) deadline boosts a tenant's refill rate by at most this factor,
#: so urgent tenants dominate without ever starving the others (the
#: deficit round-robin still serves every queued tenant each ring cycle).
DEADLINE_BOOST_CAP = 16.0

_EvalRejected = RemoteDispatcher._EvalRejected


# ----------------------------------------------------------------------
# worker registry
# ----------------------------------------------------------------------
class WorkerRegistry:
    """Heartbeat-refreshed table of live worker addresses (thread-safe).

    A worker that registers (or heartbeats — the two are the same refresh)
    stays *live* until ``timeout`` seconds pass without another beat, then
    ages out.  Addresses registered with ``static=True`` never age out —
    the fixed-deployment escape hatch; :meth:`deregister` removes either
    kind explicitly.
    """

    def __init__(self, *, timeout: float = 10.0):
        self.timeout = float(timeout)
        self._lock = threading.Lock()
        self._seen: dict[str, float] = {}   # address -> last heartbeat; guarded by: _lock
        self._static: set[str] = set()      # guarded by: _lock
        self.n_joins = 0                    # guarded by: _lock
        self.n_drops = 0  # age-outs (explicit deregisters not counted); guarded by: _lock

    def register(self, address: str, *, static: bool = False) -> None:
        address = str(address)
        with self._lock:
            if address not in self._seen and address not in self._static:
                self.n_joins += 1
            if static:
                self._static.add(address)
            else:
                self._seen[address] = time.monotonic()

    def heartbeat(self, address: str) -> None:
        """Alias of :meth:`register` — a heartbeat is a freshness refresh."""
        self.register(address)

    def deregister(self, address: str) -> None:
        with self._lock:
            self._seen.pop(address, None)
            self._static.discard(address)

    def live(self) -> list[str]:
        """Sorted live addresses; prunes (and counts) aged-out entries."""
        now = time.monotonic()
        with self._lock:
            stale = [a for a, ts in self._seen.items()
                     if now - ts > self.timeout]
            for address in stale:
                del self._seen[address]
                self.n_drops += 1
            return sorted(self._static | set(self._seen))

    def counters(self) -> dict[str, int]:
        """Join/age-out counters, read under the lock (bare attribute reads
        from another object would race :meth:`register`/:meth:`live`)."""
        with self._lock:
            return {"joins": self.n_joins, "ageouts": self.n_drops}

    def __len__(self) -> int:
        return len(self.live())

    def __repr__(self) -> str:
        return (f"WorkerRegistry(live={self.live()!r}, "
                f"timeout={self.timeout:g})")


class RegistryServer:
    """TCP endpoint for worker registration, heartbeats and fleet metrics.

    Speaks the service's length-prefixed JSON frames.  Ops: ``hello``,
    ``register``/``heartbeat``/``deregister`` (worker lifecycle),
    ``workers`` (live addresses) and ``stats`` — the metrics endpoint,
    answering with :meth:`FleetCoordinator.stats` when a coordinator is
    attached (``stats_source``).  Serving starts immediately on a
    background thread.
    """

    def __init__(self, registry: WorkerRegistry, host: str = "127.0.0.1",
                 port: int = 0, *, stats_source=None):
        import socket
        self.registry = registry
        self.stats_source = stats_source
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]
        self._shutdown = threading.Event()
        self._thread = threading.Thread(target=self._serve,
                                        name=f"registry-{self.port}",
                                        daemon=True)
        self._thread.start()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def _serve(self) -> None:
        import socket
        self._listener.settimeout(0.2)
        while not self._shutdown.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(target=self._serve_connection, args=(conn,),
                             daemon=True).start()
        try:
            self._listener.close()
        except OSError:
            pass

    def _serve_connection(self, conn) -> None:
        with conn:
            while not self._shutdown.is_set():
                try:
                    msg = recv_msg(conn)
                except (ConnectionError, OSError, ValueError):
                    return
                if msg is None:
                    return
                try:
                    reply = self._handle(msg)
                except Exception as exc:
                    reply = {"ok": False,
                             "error": f"{type(exc).__name__}: {exc}"}
                if msg.get("id") is not None:
                    reply["id"] = msg["id"]
                try:
                    send_msg(conn, reply)
                except OSError:
                    return

    def _handle(self, msg: dict) -> dict:
        op = msg.get("op")
        if op == "hello":
            return {"ok": True, "protocol": PROTOCOL_VERSION,
                    "role": "registry"}
        if op in ("register", "heartbeat"):
            self.registry.register(msg["address"])
            return {"ok": True}
        if op == "deregister":
            self.registry.deregister(msg["address"])
            return {"ok": True}
        if op == "workers":
            return {"ok": True, "workers": self.registry.live()}
        if op == "stats":
            if self.stats_source is not None:
                return {"ok": True, "stats": self.stats_source.stats()}
            return {"ok": True, "stats": {"workers": self.registry.live()}}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def close(self) -> None:
        self._shutdown.set()
        try:
            self._listener.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# dispatch bookkeeping
# ----------------------------------------------------------------------
class _DispatchState:
    """One tenant dispatch: its rows, chunk countdown, and failure flag."""

    __slots__ = ("problem", "token_hex", "X", "out", "remaining", "counters",
                 "n_sims", "error", "event", "_lock", "_blob")

    def __init__(self, problem, token_hex: str, X: np.ndarray):
        self.problem = problem
        self.token_hex = token_hex
        self.X = X
        self.out: list = [None] * len(X)
        self.remaining = 0           # outstanding chunk count, set at enqueue
        self.counters: dict[str, float] = {}
        self.n_sims = 0
        self.error: str | None = None
        self.event = threading.Event()
        self._lock = threading.Lock()
        self._blob: str | None = None

    def blob(self) -> str:
        """Base64 problem pickle, encoded lazily once per dispatch."""
        with self._lock:
            if self._blob is None:
                self._blob = RemoteDispatcher._encode_problem(self.problem)
            return self._blob

    def aborted(self) -> bool:
        return self.error is not None

    def complete(self, start: int, stop: int, rows, counters: dict,
                 n_sims: int) -> None:
        with self._lock:
            self.out[start:stop] = [np.asarray(r, dtype=np.float64)
                                    for r in rows]
            for name, value in counters.items():
                self.counters[name] = self.counters.get(name, 0.0) + value
            self.n_sims += int(n_sims)
            self.remaining -= 1
            if self.remaining <= 0 and self.error is None:
                self.event.set()

    def abort(self, message: str) -> None:
        with self._lock:
            if self.error is None:
                self.error = message
            self.event.set()


class _Job:
    """One chunk of one tenant's dispatch, as queued for the fleet.

    A job may be *speculatively duplicated* by the hedge sweep: the same
    object is queued again and picked by a second host, ``inflight`` counts
    the live copies, and ``completed`` makes completion first-wins — the
    losing copy's reply (or failure) is discarded, never double-written.
    All hedge/duplicate fields are guarded by the coordinator's lock.
    """

    __slots__ = ("tenant", "state", "start", "stop", "requeues", "trail",
                 "hosts", "started", "inflight", "completed", "hedged",
                 "hedge_pending")

    def __init__(self, tenant: str, state: _DispatchState, start: int,
                 stop: int):
        self.tenant = tenant
        self.state = state
        self.start = start
        self.stop = stop
        self.requeues = 0
        self.trail: list[str] = []  # per-host failure history
        self.hosts: set[str] = set()   # addresses that picked this job
        self.started: float | None = None  # monotonic ts of first pick
        self.inflight = 0              # copies currently on some worker
        self.completed = False         # first reply already written back
        self.hedged = False            # a speculative copy was issued
        self.hedge_pending = False     # speculative copy queued, not picked


class _Tenant:
    """Per-study scheduler state and accounting."""

    __slots__ = ("name", "priority", "credit", "queue", "closed", "inflight",
                 "n_dispatches", "n_chunks", "n_designs", "worker_sims",
                 "t_first", "t_last", "engine_ref", "degraded", "n_degraded",
                 "quota", "deadline_s", "t_deadline")

    def __init__(self, name: str, priority: float, degraded: str | None = None,
                 quota: int | None = None, deadline_s: float | None = None):
        self.name = name
        self.priority = priority
        self.credit = 0.0
        self.queue: deque[_Job] = deque()
        self.closed = False
        self.inflight = 0      # chunk copies currently on some worker
        self.n_dispatches = 0
        self.n_chunks = 0
        self.n_designs = 0     # designs entering the fleet (post engine-cache)
        self.worker_sims = 0   # simulations the workers reported running
        self.t_first: float | None = None
        self.t_last: float | None = None
        self.engine_ref = None
        self.degraded = degraded   # "local" opts into zero-worker fallback
        self.n_degraded = 0        # designs evaluated by that fallback
        self.quota = quota         # cap on total dispatched designs
        self.deadline_s = deadline_s          # soft deadline length [s]
        #: absolute monotonic deadline (anchored when the tenant attaches)
        self.t_deadline = (time.monotonic() + deadline_s
                           if deadline_s is not None else None)


def _deadline_boost(record: _Tenant, now: float) -> float:
    """Credit-refill multiplier for a tenant's deadline pressure.

    1.0 for deadline-free tenants and at attach time, rising as the
    fraction of the deadline remaining shrinks (``deadline_s / remaining``)
    and capped at :data:`DEADLINE_BOOST_CAP` once the deadline is (nearly)
    spent.  Applied at refill time, so over a window a tenant's service
    share is ``priority * boost`` relative to its peers — earliest-deadline
    tenants win a growing share as T approaches without starving anyone.
    """
    if record.t_deadline is None:
        return 1.0
    remaining = record.t_deadline - now
    if remaining <= 0:
        return DEADLINE_BOOST_CAP
    return min(DEADLINE_BOOST_CAP, max(1.0, record.deadline_s / remaining))


class _TenantDispatcher:
    """The remote-style dispatcher injected into a tenant's engine."""

    def __init__(self, coordinator: "FleetCoordinator", tenant: str):
        self._coordinator = coordinator
        self.tenant = tenant

    def dispatch(self, problem, token: bytes, X: np.ndarray):
        return self._coordinator._dispatch(self.tenant, problem, token, X)

    def close(self) -> None:
        """Detach the tenant; the shared fleet stays up."""
        self._coordinator._detach(self.tenant)


# ----------------------------------------------------------------------
# per-host pump
# ----------------------------------------------------------------------
class _HostPump:
    """Feeds one worker: ``slots`` threads pulling scheduled chunks onto a
    shared multiplexed connection, so the worker's queue never drains dry
    between a reply landing and the next chunk arriving."""

    def __init__(self, coordinator: "FleetCoordinator", address: str,
                 slots: int):
        self.coordinator = coordinator
        self.address = address
        self.addr = parse_host(address)
        self.stop = threading.Event()
        self.n_chunks = 0
        self.n_sims = 0
        self.inflight = 0
        self._conn: MultiplexedConnection | None = None  # guarded by: _conn_lock
        self._conn_lock = threading.Lock()
        # Intentionally lock-free (not annotated): slot threads race on the
        # shipped-token set, but set ops are GIL-atomic and the worst case
        # is a redundant idempotent put_problem re-ship — never corruption.
        self._shipped: set[str] = set()
        self._threads = [
            threading.Thread(target=self._run,
                             name=f"fleet-pump-{address}-{i}", daemon=True)
            for i in range(max(1, int(slots)))]

    def start(self) -> None:
        for thread in self._threads:
            thread.start()

    def close(self) -> None:
        """Stop the pump; in-flight requests fail over to other hosts."""
        self.stop.set()
        with self._conn_lock:
            conn, self._conn = self._conn, None
        if conn is not None:
            conn.close()

    def _connection(self) -> MultiplexedConnection:
        with self._conn_lock:
            if self.stop.is_set():
                raise ConnectionError("pump stopped")
            if self._conn is None:
                self._conn = MultiplexedConnection(
                    self.addr,
                    connect_timeout=self.coordinator.connect_timeout)
            return self._conn

    def _run(self) -> None:
        coord = self.coordinator
        try:
            conn = self._connection()
        except Exception as exc:
            coord._pump_failed(self, exc)
            return
        while not self.stop.is_set():
            job = coord._next_job(self.stop, self.address)
            if job is None:
                return
            try:
                reply = self._eval(conn, job)
            except _EvalRejected as exc:
                # Deterministic rejection: abort only this dispatch, keep
                # serving — the connection (and the worker) are healthy.
                coord._job_failed(self, job, f"{self.address}: {exc}",
                                  fatal=True)
                continue
            except Exception as exc:
                coord._job_failed(self, job, f"{self.address}: {exc}",
                                  fatal=False)
                coord._pump_failed(self, exc)
                return
            coord._job_done(self, job, reply)

    def _eval(self, conn: MultiplexedConnection, job: _Job) -> dict:
        state = job.state
        if state.token_hex not in self._shipped:
            self._ship(conn, state)
        request = {"op": "eval", "token": state.token_hex,
                   "X": state.X[job.start:job.stop].tolist()}
        chunk_timeout = self.coordinator.chunk_timeout
        deadline = (None if chunk_timeout is None
                    else chunk_timeout * max(1, job.stop - job.start))
        for attempt in (0, 1):
            reply = conn.request(request, timeout=deadline)
            if reply.get("ok"):
                return reply
            if reply.get("need_problem") and attempt == 0:
                # Worker restarted / LRU-evicted the problem: re-ship once.
                self._shipped.discard(state.token_hex)
                self._ship(conn, state)
                continue
            raise _EvalRejected(reply.get("error", "request rejected"))
        raise ConnectionError("unreachable")  # pragma: no cover

    def _ship(self, conn: MultiplexedConnection, state: _DispatchState) -> None:
        chunk_timeout = self.coordinator.chunk_timeout
        timeout = (None if chunk_timeout is None
                   else max(self.coordinator.connect_timeout, chunk_timeout))
        reply = conn.request({"op": "put_problem", "token": state.token_hex,
                              "blob": state.blob()}, timeout=timeout)
        if not reply.get("ok"):
            raise _EvalRejected(
                f"put_problem rejected: {reply.get('error', reply)}")
        self._shipped.add(state.token_hex)


# ----------------------------------------------------------------------
# the coordinator
# ----------------------------------------------------------------------
class FleetCoordinator:
    """Serve many concurrent Studies over one elastic worker fleet.

    Parameters
    ----------
    registry:
        A :class:`WorkerRegistry` to watch (default: a fresh one).  Start a
        :class:`RegistryServer` for it with :meth:`listen` so workers can
        ``--register`` themselves.
    hosts:
        Optional static ``["host:port", ...]`` seed (pinned in the
        registry; no heartbeats required) — the PR-5 fixed-fleet setup.
    heartbeat_timeout:
        Seconds without a heartbeat before a (non-static) worker ages out.
    slots_per_host:
        Concurrent chunks kept in flight per worker.  ``2`` (default)
        pipelines the wire round-trip behind the worker's current
        evaluation; the worker itself still evaluates serially.
    poll_interval:
        How often the watcher reconciles pumps against the registry.
    max_chunk_requeues:
        Failover budget per chunk (default: ``2 ×`` the live host count at
        requeue time, minimum 2) before the owning dispatch fails with
        :class:`ServiceError`.
    connect_timeout:
        TCP connect timeout towards workers.
    chunk_timeout:
        Per-design eval deadline in seconds (a chunk of ``n`` designs must
        be answered within ``chunk_timeout * n`` seconds).  A worker that
        accepts a chunk and never replies then counts as a retryable
        transport failure — dropped, quarantined, its chunk re-queued under
        the bounded budget — instead of hanging the dispatch.  ``None``
        (default) means no deadline.
    hedge_factor:
        Straggler threshold multiplier: once at least
        ``HEDGE_MIN_SAMPLES`` chunk latencies have been observed, a chunk
        in flight for longer than ``max(hedge_min_s, hedge_factor * p50)``
        is speculatively re-queued for a *different* host (at most once per
        chunk, and only when the fleet has spare slots).  First reply wins;
        the loser is discarded by the job's completion flag (the wire layer
        already discards late replies by request id).  Safe because evals
        are deterministic and cache-deduped — histories stay bit-identical.
        ``None`` (default) disables hedging.
    hedge_min_s:
        Floor for the straggler threshold, so sub-millisecond p50s don't
        hedge every scheduling hiccup (default 0.25 s).
    degraded_after:
        Seconds a dispatch from a ``degraded="local"`` tenant may sit with
        *zero* live workers before its queued chunks are evaluated
        in-process (default 2.0 s).  Tenants opt in per engine:
        ``fleet.engine(name, degraded="local")``.

    Tenants are created with :meth:`engine`; scheduling is weighted deficit
    round-robin at chunk granularity (see module docstring).  The
    coordinator is in-process: Studies in *this* process share it directly
    (threads), remote observers read :meth:`stats` through the registry
    server's ``stats`` op.
    """

    #: completed-chunk latencies required before hedging arms itself.
    HEDGE_MIN_SAMPLES = 5

    #: cap (seconds) on the exponential quarantine backoff of a failed host.
    QUARANTINE_CAP_S = 30.0

    def __init__(self, *, registry: WorkerRegistry | None = None, hosts=(),
                 heartbeat_timeout: float = 10.0, slots_per_host: int = 2,
                 poll_interval: float = 0.2,
                 max_chunk_requeues: int | None = None,
                 connect_timeout: float = 10.0,
                 chunk_timeout: float | None = None,
                 hedge_factor: float | None = None,
                 hedge_min_s: float = 0.25,
                 degraded_after: float = 2.0):
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise ValueError("chunk_timeout must be > 0 seconds")
        if hedge_factor is not None and hedge_factor <= 1.0:
            raise ValueError("hedge_factor must be > 1.0")
        self.registry = registry or WorkerRegistry(timeout=heartbeat_timeout)
        for host in hosts:
            self.registry.register(host, static=True)
        self.slots_per_host = max(1, int(slots_per_host))
        self.poll_interval = max(0.02, float(poll_interval))
        self.max_chunk_requeues = max_chunk_requeues
        self.connect_timeout = float(connect_timeout)
        self.chunk_timeout = (None if chunk_timeout is None
                              else float(chunk_timeout))
        self.hedge_factor = (None if hedge_factor is None
                             else float(hedge_factor))
        self.hedge_min_s = float(hedge_min_s)
        self.degraded_after = max(0.0, float(degraded_after))
        self._cond = threading.Condition()
        self._tenants: dict[str, _Tenant] = {}   # guarded by: _cond
        self._order: list[str] = []   # round-robin ring; guarded by: _cond
        self._rr = -1                 # guarded by: _cond
        self._pumps: dict[str, _HostPump] = {}   # guarded by: _cond
        self._quarantine: dict[str, float] = {}  # retry-after per host; guarded by: _cond
        self._failures: dict[str, int] = {}      # failure streaks; guarded by: _cond
        self._running: set[_Job] = set()         # live jobs; guarded by: _cond
        self._latencies: deque[float] = deque(maxlen=512)  # guarded by: _cond
        self._ids = count(1)
        self._closed = False                     # guarded by: _cond
        self._server: RegistryServer | None = None
        self.n_requeues = 0        # guarded by: _cond
        self.n_hedges = 0          # speculative duplicates; guarded by: _cond
        self.n_hedge_discards = 0  # losing copies dropped; guarded by: _cond
        self.n_degraded = 0        # degraded-local answers; guarded by: _cond
        self._sync_pumps()  # static hosts get pumps before the first dispatch
        self._watcher = threading.Thread(target=self._watch,
                                         name="fleet-watcher", daemon=True)
        self._watcher.start()

    # -- public surface ----------------------------------------------------
    def listen(self, host: str = "127.0.0.1", port: int = 0) -> RegistryServer:
        """Start the registry/metrics endpoint; workers ``--register`` here."""
        if self._server is None:
            self._server = RegistryServer(self.registry, host, port,
                                          stats_source=self)
        return self._server

    @property
    def registry_address(self) -> str | None:
        return self._server.address if self._server is not None else None

    def add_host(self, address: str) -> None:
        """Pin a static worker address (and forgive an earlier failure)."""
        with self._cond:
            self._quarantine.pop(address, None)
        self.registry.register(address, static=True)

    def engine(self, tenant: str | None = None, *, priority: float = 1.0,
               degraded: str | None = None, quota: int | None = None,
               deadline_s: float | None = None, **engine_kwargs):
        """A standard :class:`~repro.core.engine.EvalEngine` whose misses are
        scheduled on the fleet under ``tenant``'s fair-share ``priority``.

        The engine owns its own cache tiers (``cache_size``/``cache_dir``
        and friends pass through), so per-tenant hit-rates stay separable;
        closing it detaches the tenant without touching the fleet.
        ``degraded="local"`` opts this tenant into the zero-worker fallback:
        a dispatch stuck ``degraded_after`` seconds with no live workers is
        evaluated in-process (logged, counted) instead of waiting forever.

        ``quota=N`` caps the tenant's *total dispatched designs* (cache
        hits and dedups are free): a dispatch that would exceed it raises
        :class:`~repro.core.history.BudgetExhausted` through the engine
        seam before anything is queued — :meth:`repro.core.Study.run`
        catches it and ends the run gracefully with the partial history.
        ``deadline_s=T`` declares a soft deadline: as ``T`` approaches,
        the scheduler multiplies the tenant's credit refill by up to
        :data:`DEADLINE_BOOST_CAP` (earliest-deadline tenants get a
        growing share; nobody starves).  Both are visible per tenant in
        :meth:`stats`.
        """
        from .engine import EvalEngine
        if priority <= 0:
            raise ValueError("priority must be > 0")
        if degraded not in (None, "local"):
            raise ValueError(f"degraded must be None or 'local', got {degraded!r}")
        if quota is not None and quota < 1:
            raise ValueError("quota must be >= 1")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be > 0")
        with self._cond:
            if self._closed:
                raise ServiceError("fleet coordinator is closed")
            name = tenant or f"tenant-{next(self._ids)}"
            existing = self._tenants.get(name)
            if existing is not None and not existing.closed:
                raise ValueError(f"tenant {name!r} is already attached")
            record = _Tenant(name, float(priority), degraded,
                             quota=None if quota is None else int(quota),
                             deadline_s=(None if deadline_s is None
                                         else float(deadline_s)))
            self._tenants[name] = record
            if name not in self._order:
                self._order.append(name)
        engine = EvalEngine(dispatcher=_TenantDispatcher(self, name),
                            **engine_kwargs)
        record.engine_ref = weakref.ref(engine)
        return engine

    def stats(self) -> dict:
        """Control-plane metrics: queue depth, per-tenant rates, workers."""
        now = time.monotonic()
        with self._cond:
            tenants = {}
            engines = {}
            for name in self._order:
                record = self._tenants[name]
                engine = (record.engine_ref()
                          if record.engine_ref is not None else None)
                elapsed = None
                if record.t_first is not None and record.t_last is not None:
                    elapsed = record.t_last - record.t_first
                entry = {
                    "priority": record.priority,
                    "queued_chunks": len(record.queue),
                    "inflight_chunks": record.inflight,
                    "dispatches": record.n_dispatches,
                    "chunks": record.n_chunks,
                    "designs": record.n_designs,
                    "worker_sims": record.worker_sims,
                    "sims_per_sec": (round(record.worker_sims / elapsed, 3)
                                     if elapsed and elapsed > 0 else 0.0),
                    "closed": record.closed,
                    "degraded": record.degraded,
                    "degraded_designs": record.n_degraded,
                    "quota": record.quota,
                    "quota_remaining": (None if record.quota is None else
                                        max(0, record.quota - record.n_designs)),
                    "deadline_s": record.deadline_s,
                    "deadline_remaining_s": (
                        None if record.t_deadline is None
                        else round(record.t_deadline - now, 3)),
                    "deadline_boost": round(_deadline_boost(record, now), 3),
                }
                if engine is not None:
                    engines[name] = engine
                tenants[name] = entry
            workers = {address: {"chunks": pump.n_chunks,
                                 "sims": pump.n_sims,
                                 "inflight": pump.inflight,
                                 "slots": self.slots_per_host}
                       for address, pump in self._pumps.items()}
            queue_depth = sum(len(t.queue) for t in self._tenants.values())
            inflight = sum(t.inflight for t in self._tenants.values())
            latencies = sorted(self._latencies)
            requeues = self.n_requeues
            hedges = self.n_hedges
            hedge_discards = self.n_hedge_discards
            degraded_designs = self.n_degraded
        # Engine counters come from each engine's own lock — taken *after*
        # _cond is released so the two locks never nest.
        for name, engine in engines.items():
            counters = engine.counters_snapshot()
            hits = counters["n_cache_hits"]
            total = hits + counters["n_sim_calls"]
            tenants[name]["cache_hits"] = hits
            tenants[name]["cache_hit_rate"] = (round(hits / total, 4)
                                               if total else 0.0)
            tenants[name]["engine_sims"] = counters["n_sim_calls"]
        latency = {"n": len(latencies)}
        if latencies:
            latency["p50"] = round(float(np.percentile(latencies, 50)), 6)
            latency["p99"] = round(float(np.percentile(latencies, 99)), 6)
        return {"queue_depth": queue_depth, "inflight_chunks": inflight,
                "n_workers": len(workers), "workers": workers,
                "tenants": tenants, "requeues": requeues,
                "hedges": hedges,
                "hedge_discards": hedge_discards,
                "degraded_designs": degraded_designs,
                "chunk_latency": latency,
                "registry": {"live": self.registry.live(),
                             **self.registry.counters()}}

    def chunk_latencies(self) -> list[float]:
        """Recent completed-chunk wall latencies (first pick → first reply)."""
        with self._cond:
            return list(self._latencies)

    def close(self) -> None:
        """Stop pumps and watcher; abort queued/in-flight dispatches."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            pumps = list(self._pumps.values())
            self._pumps.clear()
            orphans: list[_Job] = []
            for record in self._tenants.values():
                orphans.extend(record.queue)
                record.queue.clear()
            self._cond.notify_all()
        for job in orphans:
            job.state.abort("fleet coordinator closed")
        for pump in pumps:
            pump.close()
        if self._server is not None:
            self._server.close()
        self._watcher.join(timeout=2.0)

    def __enter__(self) -> "FleetCoordinator":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        with self._cond:
            return (f"FleetCoordinator(workers={len(self._pumps)}, "
                    f"tenants={len(self._tenants)}, "
                    f"closed={self._closed})")

    # -- tenant dispatch ---------------------------------------------------
    def _dispatch(self, tenant: str, problem, token: bytes, X: np.ndarray):
        state = _DispatchState(problem, token.hex(), np.asarray(X))
        with self._cond:
            if self._closed:
                raise ServiceError("fleet coordinator is closed")
            record = self._tenants.get(tenant)
            if record is None or record.closed:
                raise ServiceError(f"tenant {tenant!r} is detached")
            if (record.quota is not None
                    and record.n_designs + len(X) > record.quota):
                # Refused *before* anything is queued, so a quota-capped
                # tenant stops at exactly the designs already dispatched —
                # no partial batch ever reaches the workers.
                raise BudgetExhausted(
                    f"tenant {tenant!r} quota exhausted: "
                    f"{record.n_designs}/{record.quota} designs dispatched, "
                    f"+{len(X)} requested")
            n_consumers = max(1, len(self._pumps)) * self.slots_per_host
            jobs = [_Job(tenant, state, start, stop)
                    for start, stop in _chunk_ranges(len(X), n_consumers)]
            state.remaining = len(jobs)
            record.queue.extend(jobs)
            record.n_dispatches += 1
            record.n_designs += len(X)
            if record.t_first is None:
                record.t_first = time.monotonic()
            self._cond.notify_all()
        # Elastic by design: with zero live workers the chunks wait for one
        # to register; close() (or a requeue-budget blowout) aborts them.
        # A degraded="local" tenant additionally falls back to bounded
        # in-process evaluation once no worker has shown up (or survived)
        # for ``degraded_after`` seconds.
        idle_since: float | None = None
        while not state.event.wait(0.1):
            # Unlocked peek at the monotonic closed flag: a stale False only
            # delays the abort by one 0.1 s poll tick.  # lint: disable=RP02
            if self._closed:
                state.abort("fleet coordinator closed")
                continue
            if record.degraded != "local":
                continue
            with self._cond:
                have_workers = bool(self._pumps)
            if have_workers:
                idle_since = None
                continue
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            elif now - idle_since >= self.degraded_after:
                self._degrade_locally(record, state)
        if state.error is not None:
            raise ServiceError(state.error)
        rows = np.vstack(state.out)
        return rows, dict(state.counters), state.n_sims

    def _degrade_locally(self, record: _Tenant, state: _DispatchState) -> None:
        """Evaluate this dispatch's *queued* chunks in-process (fallback).

        Only chunks still in the tenant queue are taken — anything in
        flight keeps its normal completion/failover path, and the wait loop
        sweeps again 0.1 s later for chunks a dying pump requeued.  Rows
        come from the same deterministic ``problem.evaluate`` a worker's
        serial engine would have run, so histories stay bit-identical.
        """
        with self._cond:
            if self._pumps or self._closed:
                return  # a worker joined after all — let it serve
            taken = [job for job in record.queue if job.state is state]
            if not taken:
                return
            record.queue = deque(job for job in record.queue
                                 if job.state is not state)
        n_designs = sum(job.stop - job.start for job in taken)
        _log.warning(
            "fleet degraded to local evaluation for tenant %r: %d design(s) "
            "in %d chunk(s), no live workers for %.1fs",
            record.name, n_designs, len(taken), self.degraded_after)
        for job in taken:
            if job.state.aborted() or job.completed:
                continue
            rows = [np.asarray(state.problem.evaluate(x), dtype=np.float64)
                    for x in state.X[job.start:job.stop]]
            with self._cond:
                job.completed = True
                record.n_degraded += len(rows)
                self.n_degraded += len(rows)
                record.worker_sims += len(rows)
                record.t_last = time.monotonic()
            state.complete(job.start, job.stop, rows, {}, len(rows))

    def _detach(self, tenant: str) -> None:
        with self._cond:
            record = self._tenants.get(tenant)
            if record is None or record.closed:
                return
            record.closed = True
            orphans = list(record.queue)
            record.queue.clear()
        for job in orphans:
            job.state.abort(f"tenant {tenant!r} engine closed mid-dispatch")

    # -- scheduler ---------------------------------------------------------
    def _next_job(self, stop: threading.Event,
                  address: str | None = None) -> _Job | None:
        """Block until a chunk is scheduled for this pump (or it stops)."""
        with self._cond:
            while True:
                if self._closed or stop.is_set():
                    return None
                job = self._pick_locked(address)
                if job is not None:
                    return job
                self._cond.wait(0.1)

    def _pick_locked(self, address: str | None = None) -> _Job | None:  # holds: _cond
        """Weighted deficit round-robin over the queued tenants.

        Serving a chunk costs one credit; when no queued tenant can afford
        one, every queued tenant's credit is topped up by its priority —
        so over time tenant A receives ``priority_A / priority_B`` times
        tenant B's chunks, and a tenant with *any* queue always gets a
        turn within one ring cycle (starvation-free).

        A *speculative* copy (hedge) is deferred when the asking pump's
        ``address`` already ran the original — hedging only pays when the
        duplicate lands on a different host — unless this host is the only
        one alive.  Deferrals are bounded by the total queue length, so a
        pump that can serve nothing simply waits instead of spinning.
        """
        deferred = 0
        while True:
            ready = [name for name in self._order
                     if self._tenants[name].queue]
            if not ready:
                return None
            while not any(self._tenants[name].credit >= 1.0
                          for name in ready):
                now = time.monotonic()
                for name in ready:
                    record = self._tenants[name]
                    # Deadline-aware refill: pressure multiplies the rate,
                    # so an urgent tenant's share grows as T approaches
                    # while the ring scan still serves every queued tenant
                    # within one cycle (starvation-free).
                    record.credit += record.priority * _deadline_boost(record, now)
            ring = len(self._order)
            picked = None
            for step in range(1, ring + 1):
                idx = (self._rr + step) % ring
                record = self._tenants[self._order[idx]]
                if record.queue and record.credit >= 1.0:
                    self._rr = idx
                    picked = record
                    break
            if picked is None:  # pragma: no cover - refill guarantees one
                return None
            picked.credit -= 1.0
            job = picked.queue.popleft()
            if job.state.aborted() or job.completed:
                picked.credit += 1.0  # discarded, not served
                if job.completed and job.hedge_pending:
                    # speculative copy answered before it was even picked
                    self.n_hedge_discards += 1
                job.hedge_pending = False
                continue
            if (job.hedge_pending and address is not None
                    and address in job.hosts and len(self._pumps) > 1):
                picked.queue.append(job)
                picked.credit += 1.0
                deferred += 1
                if deferred >= sum(len(t.queue)
                                   for t in self._tenants.values()):
                    return None
                continue
            job.hedge_pending = False
            if address is not None:
                job.hosts.add(address)
            if job.started is None:
                job.started = time.monotonic()
            job.inflight += 1
            self._running.add(job)
            picked.n_chunks += 1
            picked.inflight += 1
            return job

    # -- pump callbacks ----------------------------------------------------
    def _job_done(self, pump: _HostPump, job: _Job, reply: dict) -> None:
        rows = reply["F"]
        n_sims = int(reply.get("n_sims", len(rows)))
        now = time.monotonic()
        with self._cond:
            first = not job.completed
            job.completed = True
            job.inflight -= 1
            if job.inflight <= 0:
                self._running.discard(job)
            record = self._tenants.get(job.tenant)
            if record is not None:
                record.inflight -= 1
                record.t_last = now
                if first:
                    record.worker_sims += n_sims
            pump.n_chunks += 1
            pump.n_sims += n_sims
            if first:
                if job.started is not None:
                    self._latencies.append(now - job.started)
                self._failures.pop(pump.address, None)  # host is healthy
            else:
                # A hedge twin (or a late original) already wrote the rows:
                # discard this reply.  Determinism makes both bit-identical.
                self.n_hedge_discards += 1
        if first:
            job.state.complete(job.start, job.stop, rows,
                               reply.get("counters", {}), n_sims)

    def _job_failed(self, pump: _HostPump, job: _Job, message: str, *,
                    fatal: bool) -> None:
        with self._cond:
            record = self._tenants.get(job.tenant)
            if record is not None:
                record.inflight -= 1
            job.inflight -= 1
            if job.inflight <= 0 and not job.hedge_pending:
                self._running.discard(job)
            if job.completed:
                return  # a speculative twin already answered this chunk
            if fatal or job.state.aborted():
                if fatal:
                    job.state.abort(message)
                self._running.discard(job)
                return
            job.requeues += 1
            job.trail.append(message)
            self.n_requeues += 1
            if job.inflight > 0 or job.hedge_pending:
                # A twin copy is still running (or queued): it owns the
                # chunk now.  If it fails too, *its* _job_failed requeues.
                return
            budget = (self.max_chunk_requeues
                      if self.max_chunk_requeues is not None
                      else 2 * max(1, len(self._pumps)))
            budget = max(2, budget)
            if job.requeues > budget:
                job.state.abort(
                    f"chunk [{job.start}:{job.stop}] abandoned after "
                    f"{job.requeues - 1} failovers: " + "; ".join(job.trail))
                return
            if self._closed or record is None or record.closed:
                job.state.abort("fleet coordinator closed with chunk in flight")
                return
            record.queue.appendleft(job)  # keep index order roughly intact
            self._cond.notify_all()

    def _pump_failed(self, pump: _HostPump, exc: Exception) -> None:
        """Drop a host after a transport failure (idempotent).

        The address is quarantined under capped exponential backoff with
        deterministic jitter — consecutive failures double the retry-after
        (up to :attr:`QUARANTINE_CAP_S`), a success resets it — and
        deregistered: a *live* heartbeating worker re-registers itself on
        its next beat, while a genuinely dead one stays gone.  Static hosts
        need :meth:`add_host` to come back.
        """
        with self._cond:
            if self._pumps.get(pump.address) is pump:
                del self._pumps[pump.address]
            attempt = self._failures.get(pump.address, 0)
            self._failures[pump.address] = attempt + 1
            self._quarantine[pump.address] = (
                time.monotonic() + backoff_delay(
                    attempt, base=2 * self.poll_interval,
                    cap=self.QUARANTINE_CAP_S, key=pump.address))
            self._cond.notify_all()
        pump.close()
        self.registry.deregister(pump.address)

    # -- hedged re-dispatch ------------------------------------------------
    def _hedge_sweep(self) -> None:
        """Speculatively re-queue straggling in-flight chunks (at most once
        each) for a different host — first reply wins, the loser is
        discarded by the job's completion flag."""
        if self.hedge_factor is None:
            return
        now = time.monotonic()
        with self._cond:
            if len(self._pumps) < 2:
                return  # nowhere different to send a duplicate
            if len(self._latencies) < self.HEDGE_MIN_SAMPLES:
                return
            p50 = float(np.percentile(self._latencies, 50))
            threshold = max(self.hedge_min_s, self.hedge_factor * p50)
            # Only burn *spare* capacity on speculation: never let hedges
            # displace first-copy work already queued.
            capacity = len(self._pumps) * self.slots_per_host
            backlog = sum(t.inflight + len(t.queue)
                          for t in self._tenants.values())
            spare = capacity - backlog
            hedged_any = False
            for job in list(self._running):
                if spare <= 0:
                    break
                if (job.completed or job.hedged or job.started is None
                        or job.state.aborted()):
                    continue
                if now - job.started < threshold:
                    continue
                record = self._tenants.get(job.tenant)
                if record is None or record.closed:
                    continue
                job.hedged = True
                job.hedge_pending = True
                record.queue.appendleft(job)
                self.n_hedges += 1
                spare -= 1
                hedged_any = True
            if hedged_any:
                self._cond.notify_all()

    # -- registry watcher --------------------------------------------------
    def _watch(self) -> None:
        # Unlocked peek at the monotonic closed flag: close() joins this
        # thread with a timeout, a stale read costs one poll interval at
        # most.  # lint: disable=RP02
        while not self._closed:
            try:
                self._sync_pumps()
                self._hedge_sweep()
            except Exception:  # pragma: no cover - watcher must survive
                pass
            time.sleep(self.poll_interval)

    def _sync_pumps(self) -> None:
        """Reconcile pumps with the registry: start joiners, drop age-outs."""
        live = set(self.registry.live())
        now = time.monotonic()
        to_start: list[_HostPump] = []
        to_stop: list[_HostPump] = []
        with self._cond:
            if self._closed:
                return
            for address in sorted(live):
                if address in self._pumps:
                    continue
                if self._quarantine.get(address, 0.0) > now:
                    continue
                pump = _HostPump(self, address, self.slots_per_host)
                self._pumps[address] = pump
                to_start.append(pump)
            for address in list(self._pumps):
                if address not in live:
                    to_stop.append(self._pumps.pop(address))
            if to_start or to_stop:
                self._cond.notify_all()
        for pump in to_stop:
            # In-flight chunks fail over: closing the connection raises in
            # the pump threads, whose requeue puts the chunks back for the
            # surviving hosts.
            pump.close()
        for pump in to_start:
            pump.start()
