"""Warm-starting and cross-run transfer on the ask/tell seam.

A finished sizing run leaves two reusable artifacts: its archive of
``(design, performance)`` rows and — for DNN-Opt — everything the
actor/critic learned from that archive.  Because DNN-Opt retrains its
networks from the archive every iteration (Algorithm 1 line 3), *the
archive is the model state*: seeding a new run's archive with donor rows
is exactly "pre-training the critic and actor on the donor run".
:class:`WarmStart` packages a donor archive so any
:class:`~repro.core.Study` can start from it::

    ws = WarmStart.from_checkpoint("donor.ckpt.json")   # or .from_history(h)
    Study(DNNOpt(problem, budget=200), warm_start=ws).run()

Two transfer modes, resolved per target problem:

* **tell** (same problem — the donor's content fingerprint matches): the
  donor rows are *told* to the optimizer before its first ask, becoming a
  cost-free warm prefix of the history (``history.n_warm``); the engine
  cache is seeded with the same rows so even a re-proposed donor design
  never reaches the simulator.  Model-based optimizers (DNN-Opt, BO-wEI,
  GASPAD) condition on the donor archive from their first proposal and
  shrink their LHS init block accordingly; DE seeds its initial population
  and SA its starting point from the best donor designs.
* **designs** (different problem — cross-circuit transfer a la GCN-RL /
  RoSE-Opt's knowledge-infused starting points): donor *designs* are
  mapped into the target's :class:`~repro.problems.base.DesignSpace` —
  variables matched **by name**, values transferred in normalized
  ``[0, 1]`` coordinates, target dimensions with no donor counterpart
  resampled (seed-deterministically), donor-only dimensions dropped — and
  the Study simulates the best-FoM mapped designs as its first batch,
  replacing the space-filling start with donor-informed points.  Donor
  performance rows cannot transfer across problems and are discarded.

``mode="auto"`` (default) picks ``tell`` exactly when the donor problem
fingerprint matches the target's; force ``mode="designs"`` to treat even a
same-problem donor as starting points only.

Everything here is plain data (arrays + the donor space description), so a
:class:`WarmStart` pickles cleanly into ``run_trials(workers=N)`` worker
processes, and :meth:`from_checkpoint` needs no live donor problem.
"""

from __future__ import annotations

import json
import os

import numpy as np

__all__ = ["WarmStart"]

#: mixed into the resampling RNG seed so warm-start draws never collide
#: with the optimizer's own stream
_RESAMPLE_SALT = 0x5741524D  # "WARM"


class WarmStart:
    """A donor archive prepared for transfer into a new run.

    Parameters
    ----------
    X, F:
        Donor designs (physical units, donor space) and their raw
        performance rows, aligned.
    names, lower, upper:
        The donor design space description (variable names and box
        bounds), required for cross-problem mapping.  Taken from
        ``space=`` when given.  Without names, only a same-dimension
        positional transfer is possible.
    fom:
        Donor FoM per row (used to rank designs in ``designs`` mode);
        falls back to the raw objective column when absent.
    fingerprint:
        Hex content fingerprint of the donor problem — what ``auto`` mode
        compares against the target problem to recognize a same-problem
        transfer.
    mode:
        ``"auto"`` | ``"tell"`` | ``"designs"`` (see module docstring).
    max_designs:
        In ``designs`` mode, how many donor designs to carry over (the
        best by donor FoM; default 16).  ``tell`` mode always transfers
        the full archive — the models want all of it.
    source:
        Free-form provenance label for reports.
    """

    def __init__(self, X, F, *, space=None, names=None, lower=None, upper=None,
                 fom=None, fingerprint: str | None = None, mode: str = "auto",
                 max_designs: int | None = 16, source: str = ""):
        if mode not in ("auto", "tell", "designs"):
            raise ValueError(f"mode must be auto|tell|designs, got {mode!r}")
        self.X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        self.F = np.atleast_2d(np.asarray(F, dtype=np.float64))
        if len(self.X) != len(self.F):
            raise ValueError(f"donor X has {len(self.X)} rows, F has {len(self.F)}")
        if len(self.X) == 0:
            raise ValueError("warm start needs at least one donor row")
        if space is not None:
            names = list(space.names)
            lower, upper = space.lower, space.upper
        self.names = None if names is None else [str(n) for n in names]
        self.lower = None if lower is None else np.asarray(lower, dtype=np.float64)
        self.upper = None if upper is None else np.asarray(upper, dtype=np.float64)
        if (self.lower is None) != (self.upper is None):
            raise ValueError("donor bounds need both lower and upper")
        if self.names is not None and self.lower is not None \
                and len(self.names) != len(self.lower):
            raise ValueError("donor names and bounds disagree on dimension")
        self.fom = (np.asarray(fom, dtype=np.float64) if fom is not None
                    else self.F[:, 0].copy())
        if len(self.fom) != len(self.X):
            raise ValueError("donor fom length must match the rows")
        self.fingerprint = fingerprint
        self.mode = mode
        self.max_designs = None if max_designs is None else int(max_designs)
        self.source = source

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_history(cls, history, **kwargs) -> "WarmStart":
        """Donor = a live :class:`OptimizationHistory` (problem attached)."""
        from .engine import EvalEngine
        token = EvalEngine._fingerprint(history.problem)
        kwargs.setdefault("source", f"history:{history.problem.name}"
                                    f"/{history.optimizer_name}/seed{history.seed}")
        return cls(history.X, history.F, space=history.problem.space,
                   fom=history.fom,
                   fingerprint=token.hex() if token is not None else None,
                   **kwargs)

    @classmethod
    def from_checkpoint(cls, path: str | os.PathLike, **kwargs) -> "WarmStart":
        """Donor = a :meth:`repro.core.Study.save` checkpoint file.

        Self-contained: the checkpoint carries the donor space description
        and problem fingerprint, so no donor problem instance is needed.
        """
        with open(os.fspath(path), encoding="utf-8") as fh:
            data = json.load(fh)
        history = data.get("history", data)  # tolerate a bare to_dict payload
        problem = data.get("problem", {})
        space = problem.get("space") or {}
        kwargs.setdefault("source", f"checkpoint:{os.fspath(path)}")
        return cls(history["X"], history["F"],
                   names=space.get("names"),
                   lower=space.get("lower"), upper=space.get("upper"),
                   fom=history.get("fom"),
                   fingerprint=problem.get("fingerprint"),
                   **kwargs)

    # -- cross-space mapping ------------------------------------------------
    def map_designs(self, target_space, *, rng: np.random.Generator,
                    X: np.ndarray | None = None):
        """Map donor designs into ``target_space``.

        Variables are matched by name and transferred in normalized
        ``[0, 1]`` coordinates (a device that sat at 30% of its donor range
        starts at 30% of its target range, whatever the physical bounds).
        Target variables absent from the donor are resampled uniformly from
        ``rng``; donor variables absent from the target are dropped.  When
        either side lacks names — or no names match but the dimensions
        agree — the transfer falls back to positional identity.

        Returns ``(X_mapped, report)`` where ``report`` lists the
        ``matched``, ``resampled`` and ``dropped`` variable names.
        """
        X = self.X if X is None else np.atleast_2d(np.asarray(X, dtype=np.float64))
        if self.names is None or self.lower is None:
            if X.shape[1] != target_space.dim:
                raise ValueError(
                    f"donor has no space description and its dimension "
                    f"{X.shape[1]} != target dimension {target_space.dim}; "
                    f"name-based mapping needs donor names/bounds")
            return (target_space.canonical(X),
                    {"matched": list(target_space.names), "resampled": [],
                     "dropped": []})
        if (self.names == list(target_space.names)
                and np.array_equal(self.lower, target_space.lower)
                and np.array_equal(self.upper, target_space.upper)):
            # Identical space: skip the normalize/denormalize round trip so
            # the transferred designs keep the donor's exact bytes (and so
            # their cache keys match a donor-side engine's).
            return (target_space.canonical(X),
                    {"matched": list(target_space.names), "resampled": [],
                     "dropped": []})
        span = self.upper - self.lower
        U = (X - self.lower) / span
        donor_index = {name: i for i, name in enumerate(self.names)}
        matched = [n for n in target_space.names if n in donor_index]
        if not matched:
            if X.shape[1] == target_space.dim:
                # Same shape, disjoint names: positional identity.
                return (target_space.canonical(
                            target_space.denormalize(np.clip(U, 0.0, 1.0))),
                        {"matched": [], "positional": list(target_space.names),
                         "resampled": [], "dropped": []})
            raise ValueError(
                f"no donor variable names match the target space "
                f"(donor: {self.names}, target: {target_space.names}) and "
                f"the dimensions differ — nothing to transfer")
        out = rng.uniform(size=(len(X), target_space.dim))
        resampled = []
        for j, name in enumerate(target_space.names):
            i = donor_index.get(name)
            if i is None:
                resampled.append(name)
                continue
            out[:, j] = np.clip(U[:, i], 0.0, 1.0)
        dropped = [n for n in self.names if n not in set(target_space.names)]
        return (target_space.canonical(target_space.denormalize(out)),
                {"matched": matched, "resampled": resampled, "dropped": dropped})

    # -- application ---------------------------------------------------------
    def resolve_mode(self, problem) -> str:
        """Which transfer applies to ``problem`` (resolves ``"auto"``)."""
        width_ok = self.F.shape[1] == 1 + problem.num_constraints
        if self.mode == "tell":
            if not width_ok:
                raise ValueError(
                    f"mode='tell' needs donor rows of width "
                    f"{1 + problem.num_constraints} (got {self.F.shape[1]}): "
                    f"performance rows do not transfer across problems — "
                    f"use mode='designs'")
            return "tell"
        if self.mode == "designs":
            return "designs"
        from .engine import EvalEngine
        token = EvalEngine._fingerprint(problem)
        same = (self.fingerprint is not None and token is not None
                and self.fingerprint == token.hex())
        return "tell" if (same and width_ok) else "designs"

    def apply(self, optimizer) -> dict:
        """Arm ``optimizer`` with the donor knowledge (idempotence guarded
        by the caller; the optimizer must be fresh).

        * ``tell`` mode: tells the donor archive (mapped into the target
          space) as the history's warm prefix and seeds the engine cache —
          fully applied on return.
        * ``designs`` mode: returns the mapped donor designs under
          ``"designs"``; the :class:`~repro.core.Study` driver simulates
          them as its first batch.

        Returns a report dict (``mode``, ``n_rows``, mapping detail,
        ``source``).
        """
        problem = optimizer.problem
        if optimizer.history.n_total:
            raise ValueError("warm start needs a fresh (untold) optimizer")
        mode = self.resolve_mode(problem)
        rng = np.random.default_rng([_RESAMPLE_SALT, optimizer.seed])
        report = {"mode": mode, "source": self.source,
                  "donor_best_fom": float(np.min(self.fom))}
        if mode == "tell":
            # A told row asserts "this exact design measured these exact
            # values", so the transfer must be lossless: the donor space
            # must equal the target space (auto mode guarantees this via
            # the fingerprint; a forced tell is validated here).  Any
            # rescaling, dropping or resampling would attach donor F rows
            # to designs they never described — and seed the (possibly
            # persistent) cache with wrong answers.
            target = problem.space
            space_known = self.names is not None and self.lower is not None
            same_space = (not space_known
                          or (self.names == list(target.names)
                              and np.array_equal(self.lower, target.lower)
                              and np.array_equal(self.upper, target.upper)))
            if not same_space:
                raise ValueError(
                    "mode='tell' requires the donor design space to match "
                    "the target exactly (same variable names and bounds): "
                    "donor rows describe donor-space designs — use "
                    "mode='designs' for cross-space transfer")
            Xm, mapping = self.map_designs(target, rng=rng)
            optimizer.tell(Xm, self.F)
            optimizer.history.n_warm = len(Xm)
            report["n_rows"] = len(Xm)
            report["cache_seeded"] = optimizer.engine.seed_cache(
                problem, Xm, self.F)
        else:
            order = np.argsort(self.fom, kind="stable")
            if self.max_designs is not None:
                order = order[:self.max_designs]
            Xm, mapping = self.map_designs(problem.space, rng=rng,
                                           X=self.X[order])
            # Mapping can collapse distinct donor designs (dropped dims);
            # keep first (best-FoM) occurrences only.
            _, unique = np.unique(Xm, axis=0, return_index=True)
            Xm = Xm[np.sort(unique)]
            report["n_rows"] = len(Xm)
            report["designs"] = Xm
        report["mapping"] = mapping
        return report

    def __repr__(self) -> str:
        return (f"WarmStart(rows={len(self.X)}, dim={self.X.shape[1]}, "
                f"mode={self.mode!r}, source={self.source!r})")
