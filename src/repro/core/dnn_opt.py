"""DNN-Opt — Algorithm 1 of the paper.

Each iteration (after ``n_init`` space-filling simulations):

1. fresh actor and critic networks are initialized (line 3);
2. pseudo-samples are generated from the whole archive (line 4, Eq. 2);
3. the critic is trained as a simulator proxy (line 5, Eq. 3);
4. the actor is trained through the frozen critic with the elite-region
   boundary penalty (line 6, Eq. 5-6);
5. the elite population — the ``n_elite`` lowest-FoM designs — defines the
   restricted region (lines 7-8);
6. every elite design is pushed through the actor, exploration noise is
   added, and the candidate with the best critic-predicted FoM is the next
   SPICE query (line 9, Eq. 8);
7. the chosen candidate is simulated and appended (lines 10-14).

With ``batch_size=k`` the per-iteration query of line 9 generalizes from the
argmin of Eq. 8 to the *top-k* non-duplicate critic-scored candidates, all
simulated in one :class:`~repro.core.engine.EvalEngine` dispatch — the
actor/critic retraining cost is then amortized over ``k`` simulator queries
and the batch can run on a parallel engine backend.

All learning happens in normalized coordinates: designs in the unit cube,
specs in the ``fi <= 0`` violation form.
"""

from __future__ import annotations

import numpy as np

from .actor import Actor
from .critic import Critic
from .fom import fom_normalized
from .history import Optimizer
from .pseudo import generate_pseudo_samples

__all__ = ["DNNOpt"]


class DNNOpt(Optimizer):
    """RL-inspired two-stage DNN black-box optimizer.

    Parameters mirror the paper where stated and use empirically robust
    defaults elsewhere (the paper notes its hyper-parameters were found
    empirically).

    Parameters
    ----------
    problem:
        The :class:`~repro.problems.base.OptimizationProblem` to solve.
    budget:
        Total number of simulator calls.
    n_init:
        Random (Latin hypercube) designs simulated before the loop starts.
    n_elite:
        Size of the elite population (paper's ``N_es``).
    exploration_noise:
        Std-dev of the candidate noise, as a fraction of the restricted
        region's span.
    boundary_penalty:
        The paper's ``lambda`` — weight of the quadratic boundary term.
    max_pseudo:
        Cap on pseudo-samples per iteration (the full ``N^2`` is used when
        it fits).
    use_pseudo_samples / use_delta_input:
        Ablation switches: disable Eq. 2 augmentation and/or train a plain
        d-input critic on raw samples (used by the critic ablation bench).
    batch_size:
        Simulator queries per iteration.  ``1`` (default) is the paper's
        Algorithm 1; ``k > 1`` selects the k best non-duplicate candidates
        under the critic score and simulates them as one engine batch.
    engine:
        Optional :class:`~repro.core.engine.EvalEngine` for the simulator
        dispatch (serial in-process by default).
    """

    name = "DNN-Opt"

    def __init__(self, problem, budget: int, seed: int = 0, *,
                 n_init: int = 20,
                 n_elite: int = 10,
                 exploration_noise: float = 0.1,
                 boundary_penalty: float = 100.0,
                 max_pseudo: int = 8000,
                 critic_hidden: tuple[int, ...] = (64, 64),
                 critic_epochs: int = 20,
                 critic_lr: float = 1e-3,
                 critic_batch: int = 128,
                 actor_hidden: tuple[int, ...] = (64, 64),
                 actor_epochs: int = 30,
                 actor_lr: float = 1e-3,
                 min_region_width: float = 0.02,
                 use_pseudo_samples: bool = True,
                 initial_designs: np.ndarray | None = None,
                 batch_size: int = 1,
                 engine=None,
                 stop_when_feasible: bool = False):
        super().__init__(problem, budget, seed, stop_when_feasible=stop_when_feasible,
                         engine=engine)
        if n_elite < 2:
            raise ValueError("n_elite must be >= 2")
        if n_init < 2:
            raise ValueError("n_init must be >= 2")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = int(batch_size)
        self.n_init = int(n_init)
        self.n_elite = int(n_elite)
        self.exploration_noise = float(exploration_noise)
        self.boundary_penalty = float(boundary_penalty)
        self.max_pseudo = int(max_pseudo)
        self.critic_hidden = tuple(critic_hidden)
        self.critic_epochs = int(critic_epochs)
        self.critic_lr = float(critic_lr)
        self.critic_batch = int(critic_batch)
        self.actor_hidden = tuple(actor_hidden)
        self.actor_epochs = int(actor_epochs)
        self.actor_lr = float(actor_lr)
        self.min_region_width = float(min_region_width)
        self.use_pseudo_samples = bool(use_pseudo_samples)
        self.initial_designs = (None if initial_designs is None
                                else np.atleast_2d(np.asarray(initial_designs, dtype=np.float64)))
        self._init_plan: np.ndarray | None = None
        self._init_served = 0

    # ------------------------------------------------------------------
    # ask/tell protocol
    # ------------------------------------------------------------------
    def _ask(self, k: int | None) -> np.ndarray:
        """Next proposals: the space-filling block first, then Eq. 8 batches.

        The initial block is the designer starting points (the paper's
        industrial fine-tuning setting — simulated first so they join the
        archive/elites) followed by the Latin-hypercube samples; afterwards
        each ask retrains the actor/critic on the told archive and returns
        the top-``batch_size`` candidates (fewer when the remaining budget
        is smaller, more/less when ``k`` is given).

        Archive rows told *before* the first ask — a warm start's donor
        prefix or starting designs (see :mod:`repro.core.warmstart`) —
        replace Latin-hypercube samples one for one: the critic/actor
        already have an archive to train on, so the space-filling block
        shrinks (to nothing, given a big enough donor) and the model-based
        loop starts immediately, pre-trained on the donor data.
        """
        if self._init_plan is None:
            blocks = []
            seeded = 0
            if self.initial_designs is not None:
                blocks.append(self.initial_designs[:self.budget])
                seeded = len(blocks[-1])
            warm = self.history.n_total  # rows told before the first ask
            n_random = max(0, min(self.n_init - seeded - warm,
                                  self.budget - seeded))
            blocks.append(self.problem.space.sample_lhs(self.rng, n_random))
            blocks = [b for b in blocks if len(b)]
            self._init_plan = (np.vstack(blocks) if blocks
                               else np.empty((0, self.problem.dim)))
        if self._init_served < len(self._init_plan):
            stop = (len(self._init_plan) if k is None
                    else min(len(self._init_plan), self._init_served + k))
            chunk = self._init_plan[self._init_served:stop]
            self._init_served = stop
            return chunk
        count = k
        if count is None:
            # In pipelined mode proposals may be outstanding (asked, not yet
            # told); discount them so the run never over-proposes.  With a
            # barrier driver ``outstanding`` is always 0 and this is exactly
            # the historic per-iteration count.
            outstanding = max(0, self._n_proposed - self.history.n_evals)
            count = min(self.batch_size,
                        self.budget - self.history.n_evals - outstanding)
        return self._next_candidates(count=max(1, int(count)))

    # ------------------------------------------------------------------
    def _next_candidate(self) -> np.ndarray:
        """Single next query (Algorithm 1 line 9) — ``batch_size=1`` view."""
        return self._next_candidates(count=1)[0]

    def _next_candidates(self, count: int | None = None) -> np.ndarray:
        """The next ``count`` simulator queries as a ``(count, d)`` batch.

        One actor/critic retraining selects all ``count`` candidates: the
        top-k critic-scored, mutually non-duplicate proposals (Eq. 8
        generalized from argmin to top-k).
        """
        if count is None:
            count = min(self.batch_size, self.budget - self.history.n_evals)
        count = max(1, int(count))
        space = self.problem.space
        with self.timed_modeling():
            Xn = space.normalize(self.history.X)
            Yn = self.problem.normalize(self.history.F)
            w0 = self.problem.objective.weight
            weights = self.problem.constraint_weights()

            # Lines 3-5: fresh critic trained on pseudo-samples.
            critic = Critic(space.dim, Yn.shape[1], hidden=self.critic_hidden,
                            lr=self.critic_lr, epochs=self.critic_epochs,
                            batch_size=self.critic_batch, rng=self.rng)
            if self.use_pseudo_samples:
                inputs, targets = generate_pseudo_samples(
                    Xn, Yn, rng=self.rng, max_pairs=self.max_pseudo)
            else:
                inputs = np.concatenate([Xn, np.zeros_like(Xn)], axis=1)
                targets = Yn
            critic.fit(inputs, targets)

            # Lines 7-8: elite population and restricted region.
            elites = self._elite_designs(Xn)
            lb_rest, ub_rest = self._restricted_bounds(elites)

            # Line 6: fresh actor trained through the frozen critic.
            actor = Actor(space.dim, hidden=self.actor_hidden, lr=self.actor_lr,
                          epochs=self.actor_epochs, rng=self.rng)
            actor.fit(critic, elites, lb_rest, ub_rest, w0=w0, weights=weights,
                      lam=self.boundary_penalty)

            # Line 9 / Eq. 8: per-elite candidates (with exploration noise, plus
            # the noiseless actor proposals), pick the critic-best.
            displacement = actor.propose(elites)
            noise = self.rng.normal(0.0, self.exploration_noise, size=elites.shape)
            noisy = elites + displacement + noise * (ub_rest - lb_rest)
            quiet = elites + displacement
            anchors = np.vstack([elites, elites])
            candidates = np.clip(np.vstack([noisy, quiet]), 0.0, 1.0)
            predictions = critic.predict(anchors, candidates - anchors)
            scores = fom_normalized(predictions, w0, weights)
            chosen = self._select_non_duplicate(candidates, scores, lb_rest, ub_rest,
                                                count=count)
        return space.denormalize(chosen)

    def _elite_designs(self, Xn: np.ndarray) -> np.ndarray:
        fom = self.history.fom
        count = min(self.n_elite, len(fom))
        order = np.argsort(fom)[:count]
        return Xn[order]

    def _restricted_bounds(self, elites: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Eq. 6 bounds: per-dimension elite min/max, widened to a floor so
        a collapsed elite population cannot freeze the search."""
        lb = elites.min(axis=0)
        ub = elites.max(axis=0)
        width = ub - lb
        shortfall = np.maximum(self.min_region_width - width, 0.0) / 2.0
        lb = np.clip(lb - shortfall, 0.0, 1.0)
        ub = np.clip(ub + shortfall, 0.0, 1.0)
        return lb, ub

    def _select_non_duplicate(self, candidates: np.ndarray, scores: np.ndarray,
                              lb_rest: np.ndarray, ub_rest: np.ndarray, *,
                              count: int = 1) -> np.ndarray:
        """The ``count`` best-scored candidates that duplicate neither the
        archive nor each other; shape ``(count, d)`` in normalized coords.

        Duplicates arise once the elite region tightens (and always for
        integer variables after rounding); re-simulating them wastes budget,
        so walk the score order first, then fall back to random draws — in
        the restricted region, and in the limit the whole space — until the
        batch is full.  The fallback keeps drawing until it has ``count``
        unique designs whenever the space allows it; only when the draw
        budget is exhausted (a space with fewer free designs than requested)
        does it pad with duplicates so callers always receive ``count`` rows.
        """
        space = self.problem.space
        existing = self.history.X
        chosen: list[np.ndarray] = []

        def is_new(raw: np.ndarray) -> bool:
            if self._is_duplicate(raw, existing):
                return False
            return not (chosen and self._is_duplicate(raw, np.asarray(chosen)))

        for index in np.argsort(scores):
            raw = space.round(space.denormalize(candidates[index]))
            if is_new(raw):
                chosen.append(raw)
                if len(chosen) == count:
                    break

        attempts, max_attempts = 0, 200 * count
        while len(chosen) < count and attempts < max_attempts:
            attempts += 1
            fallback = self.rng.uniform(lb_rest, ub_rest)
            raw = space.round(space.denormalize(fallback))
            if not is_new(raw):
                raw = space.sample(self.rng, 1)[0]
            if is_new(raw):
                chosen.append(raw)
        while len(chosen) < count:
            # Space genuinely exhausted: pad with random (duplicate) designs
            # so the budget still progresses.
            chosen.append(space.sample(self.rng, 1)[0])

        return space.normalize(np.asarray(chosen))

    @staticmethod
    def _is_duplicate(raw: np.ndarray, existing: np.ndarray, tol: float = 1e-10) -> bool:
        if len(existing) == 0:
            return False
        scale = 1.0 + np.abs(raw)
        return bool(np.any(np.all(np.abs(existing - raw) <= tol * scale, axis=1)))
