"""Async and multi-host evaluation dispatch for :class:`EvalEngine`.

This module is the sharding seam on top of the evaluation engine: it turns a
batch of pending (cache-missed, de-duplicated) designs into performance rows
using either

* :class:`AsyncDispatcher` — an in-process asyncio dispatcher with bounded
  concurrency and *work-stealing* chunking.  Instead of the rigid
  ``np.array_split`` fan-out (one fixed chunk per worker, wall-clock pinned
  to the slowest chunk), the batch is cut into many small chunks that idle
  workers pull from a shared deque, so a straggling simulation only delays
  its own chunk.  Backend name: ``"async"``.
* :class:`RemoteDispatcher` — a coordinator that speaks a small
  length-prefixed JSON protocol over TCP sockets to N worker server
  processes (:class:`EvalWorkerServer`, one per host/shard), each running
  the existing *serial* engine.  Backend name: ``"remote"``.

The multi-tenant fleet control plane (worker registry, heartbeats, fair
cross-study scheduling) lives in :mod:`repro.core.fleet` and is built on
the same wire protocol and :class:`MultiplexedConnection` primitive.

Wire protocol (version 2)
-------------------------

Every frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON::

    frame := uint32_be(len(payload)) + payload          # payload = JSON object

Requests carry an ``"op"`` key; every reply carries ``"ok"``.  Version 2
adds **request multiplexing**: a request MAY carry an integer ``"id"``, and
the reply to an id-carrying request echoes the same ``"id"`` — replies on
one connection may then arrive *out of order*, and several requests (from
several tenants, or overlapping ``submit()`` dispatches) can be in flight
on one shared per-host connection at once.  A request *without* an ``"id"``
is answered in version-1 mode: strictly in order, one reply per request,
before the next frame is read — so v1 coordinators keep working against v2
workers unchanged.  The ``hello`` exchange is always id-less (it happens
before either side turns multiplexing on) and carries the worker's protocol
version, which is how a coordinator learns whether it may send ids at all::

    -> {"op": "hello"}
    <- {"ok": true, "protocol": 2, "pid": 1234, "problems": 0}

    -> {"op": "put_problem", "token": "<hex>", "blob": "<base64 pickle>",
        "id": 7}
    <- {"ok": true, "id": 7}

    -> {"op": "eval", "token": "<hex>", "X": [[...], ...], "id": 8}
    <- {"ok": true, "F": [[...], ...], "counters": {"assemble_s": ...},
        "n_sims": 4, "id": 8}

    -> {"op": "stats", "id": 9}
    <- {"ok": true, "pid": 1234, "n_sims": 120, "cache_hits": 30,
        "disk_hits": 4, "cache_entries": 120, "problems": 2,
        "uptime_s": 17.2, "id": 9}

    -> {"op": "shutdown"}
    <- {"ok": true}                                     # then the server exits

``counters`` are the worker-side :mod:`repro.spice.profile` deltas for the
chunk, so the coordinator's :meth:`EvalEngine.hotpath_report` stays faithful
even though the simulation happened in another process on another host.
``n_sims`` is the number of designs the worker actually simulated (its own
serial engine may answer repeats from its per-process cache — and, with
``--cache-dir``, from its own persistent disk tier).

Determinism: every design is evaluated by the unchanged serial engine in
*some* worker, results are written back by original batch index, and JSON
round-trips Python floats exactly (``repr`` shortest round-trip), so
optimizer histories are bit-identical to ``backend="serial"`` no matter how
chunks land on hosts — pinned by ``tests/core/test_service.py``.

The coordinator-side engine owns the shared cache tier: it de-duplicates and
memoizes *before* dispatch, so a design repeated across shards, batches or
trials is simulated exactly once service-wide.

Problems travel as pickles, so run workers only on hosts/networks you trust
(same boundary as every multiprocessing-based tool).  Start a worker with::

    python -m repro.core.service --port 9101

``--port 0`` picks a free port; the worker prints
``repro-eval-worker listening on HOST:PORT`` on stdout when ready.  With
``--register HOST:PORT`` the worker announces itself to a fleet registry
(see :mod:`repro.core.fleet`) and keeps a heartbeat alive, so coordinators
discover it instead of being configured with a static host list; with
``--cache-dir DIR`` the worker's serial engine answers repeated designs
from its own persistent disk tier across restarts.

The op table above is normative and declared once, machine-readably, in
:mod:`repro.tools.protocol_schema`; rule **RP04** of the contract linter
(``python -m repro.tools.lint src``, see README "Static analysis &
contracts") cross-checks every literal frame and every handler dispatch in
the tree against it, so adding an op starts in the schema module.  The
same schema module's ``SANITIZED_CLASSES`` table drives the runtime lock
sanitizer (``REPRO_SANITIZE=1``), which cross-checks this module's lock
nesting (``_v1_lock`` over ``_lock``, ``_eval_lock`` over the engine's
``_state_lock``) against the static lock-order graph
(``python -m repro.tools.flow src --check``, rules RP06/RP07).
"""

from __future__ import annotations

import argparse
import asyncio
import base64
import json
import logging
import os
import pickle
import select
import socket
import struct
import threading
import time
import zlib
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from itertools import count
from queue import Empty, SimpleQueue

import numpy as np

__all__ = [
    "PROTOCOL_VERSION",
    "COMPAT_PROTOCOLS",
    "MAX_FRAME_BYTES",
    "AsyncDispatcher",
    "MultiplexedConnection",
    "RemoteDispatcher",
    "EvalWorkerServer",
    "ServiceError",
    "DeadlineExceeded",
    "backoff_delay",
    "send_msg",
    "recv_msg",
    "parse_host",
    "spawn_local_worker",
    "main",
]

_log = logging.getLogger("repro.core.service")

PROTOCOL_VERSION = 2

#: protocol versions a coordinator will talk to.  Version 1 peers are
#: served in strict request/reply order (no ids on the wire).
COMPAT_PROTOCOLS = (1, 2)


class ServiceError(RuntimeError):
    """The evaluation service could not complete a dispatch.

    Raised by the ``remote`` backend when a batch cannot be finished —
    every shard died or rejected its work, a chunk exhausted its bounded
    requeue budget, or the dispatcher was closed with work in flight.  The
    message carries the per-host failure trail so a dead service reads as
    an operational problem, not a mystery hang.
    """


class DeadlineExceeded(ConnectionError):
    """A request's per-chunk deadline elapsed with no reply.

    Subclasses :class:`ConnectionError` on purpose: a worker that accepted
    a chunk and went silent is indistinguishable from a dead transport, so
    the timeout rides the exact same bounded-failover path (drop the host,
    re-queue the chunk for the survivors) instead of hanging the dispatch.
    """


def backoff_delay(attempt: int, *, base: float = 0.1, cap: float = 30.0,
                  key: str = "") -> float:
    """Capped exponential backoff with deterministic jitter.

    ``attempt`` counts consecutive failures starting at 0.  The jitter is
    derived from ``crc32(key:attempt)`` — not a random source — so retry
    schedules are reproducible run-to-run (the chaos suite depends on it)
    while distinct hosts still decorrelate their retry storms.  The result
    is always in ``[base/2, cap]``.
    """
    raw = min(float(cap), float(base) * (2.0 ** max(0, int(attempt))))
    frac = zlib.crc32(f"{key}:{attempt}".encode("utf-8")) % 1000 / 1000.0
    return raw * (0.5 + 0.5 * frac)


#: refuse frames above this size — a longer length prefix means a corrupt
#: stream or a non-protocol peer, not a real request.
MAX_FRAME_BYTES = 1 << 29

_HEADER = struct.Struct(">I")


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def send_msg(sock: socket.socket, obj: dict) -> None:
    """Send one length-prefixed JSON frame."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {len(payload)} bytes exceeds protocol maximum")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_msg(sock: socket.socket) -> dict | None:
    """Receive one frame; ``None`` on clean EOF (peer closed between frames)."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"frame of {length} bytes exceeds protocol maximum")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ConnectionError("connection closed mid-frame")
    return json.loads(payload.decode("utf-8"))


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            if buf:
                raise ConnectionError("connection closed mid-frame")
            return None
        buf.extend(chunk)
    return bytes(buf)


def parse_host(spec: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)``."""
    host, sep, port = spec.strip().rpartition(":")
    if not sep or not host:
        raise ValueError(f"host must be 'host:port', got {spec!r}")
    return host, int(port)


def _chunk_ranges(n: int, n_consumers: int, granularity: int = 4):
    """Work-stealing chunk bounds: ~``granularity`` chunks per consumer."""
    size = max(1, n // max(1, n_consumers * granularity))
    return [(start, min(start + size, n)) for start in range(0, n, size)]


# ----------------------------------------------------------------------
# async (in-process) dispatcher
# ----------------------------------------------------------------------
class AsyncDispatcher:
    """Bounded-concurrency asyncio dispatch with work-stealing chunking.

    ``workers`` coroutines pull small chunks from a shared deque and run the
    blocking ``problem.evaluate`` calls on a thread pool, so a slow design
    only holds back its own chunk.  Rows are written back by batch index —
    output order never depends on scheduling.
    """

    def __init__(self, workers: int):
        self.workers = max(1, int(workers))
        self._pool = ThreadPoolExecutor(max_workers=self.workers)

    def dispatch(self, problem, X: np.ndarray) -> np.ndarray:
        out: list = [None] * len(X)
        chunks = deque(_chunk_ranges(len(X), self.workers))

        def eval_chunk(start: int, stop: int) -> list:
            return [problem.evaluate(x) for x in X[start:stop]]

        async def puller(loop) -> None:
            while chunks:
                start, stop = chunks.popleft()
                rows = await loop.run_in_executor(self._pool, eval_chunk, start, stop)
                out[start:stop] = rows

        async def drain() -> None:
            loop = asyncio.get_running_loop()
            pullers = min(self.workers, len(chunks))
            await asyncio.gather(*(puller(loop) for _ in range(pullers)))

        asyncio.run(drain())
        return np.vstack(out)

    def close(self) -> None:
        self._pool.shutdown(wait=True)


# ----------------------------------------------------------------------
# multiplexed per-host connection (protocol v2 client side)
# ----------------------------------------------------------------------
class MultiplexedConnection:
    """One persistent connection to a worker, shared by concurrent requesters.

    Against a protocol-2 peer, every request is stamped with a fresh integer
    ``id`` and a background reader thread routes replies back to their
    callers by that id — so overlapping dispatches (two studies' chunks, or
    two pipelined ``submit()`` batches) interleave on one socket instead of
    queueing behind each other.  Against a protocol-1 peer the connection
    degrades transparently to serialized request/reply (no ids on the
    wire), which keeps old workers usable.

    A transport failure (reader-thread death, socket EOF, a corrupt frame)
    fails *every* pending request with :class:`ConnectionError` — no waiter
    is ever left blocked; the connection is then unusable (callers drop and
    reconnect).  Per-request deadlines are available via
    ``request(msg, timeout=...)``: a worker that accepts a frame and never
    replies raises :class:`DeadlineExceeded` instead of hanging the caller.
    """

    def __init__(self, addr: tuple[str, int], *, connect_timeout: float = 10.0):
        self.addr = addr
        self._sock = socket.create_connection(addr, timeout=connect_timeout)
        try:
            # Handshake is id-less by definition: neither side multiplexes
            # until the worker's protocol version is known.  It runs under
            # connect_timeout — a peer that accepts the TCP connection but
            # never answers hello is as dead as one that refused it.
            send_msg(self._sock, {"op": "hello"})
            hello = recv_msg(self._sock)
        except OSError:
            self._sock.close()
            raise
        if (not hello or not hello.get("ok")
                or hello.get("protocol") not in COMPAT_PROTOCOLS):
            self._sock.close()
            raise ConnectionError(
                f"{addr[0]}:{addr[1]}: bad hello reply {hello!r}")
        # Steady state is unbounded: simulations may legitimately take
        # minutes.  Callers bound individual requests with the ``timeout``
        # argument of :meth:`request` (the per-chunk deadline), not with a
        # socket-wide timeout that would poison the shared reader.
        self._sock.settimeout(None)
        self.hello = hello
        self.protocol = int(hello["protocol"])
        self._lock = threading.Lock()        # pending table + broken flag
        self._send_lock = threading.Lock()   # one frame on the wire at a time
        self._v1_lock = threading.Lock()     # serialized mode for v1 peers
        self._pending: dict[int, SimpleQueue] = {}   # guarded by: _lock
        self._ids = count(1)
        self._broken: Exception | None = None        # guarded by: _lock
        self._reader = None
        if self.protocol >= 2:
            self._reader = threading.Thread(
                target=self._read_loop, name=f"mux-read-{addr[0]}:{addr[1]}",
                daemon=True)
            self._reader.start()

    @property
    def multiplexed(self) -> bool:
        return self.protocol >= 2

    def request(self, msg: dict, *, timeout: float | None = None) -> dict:
        """Send one request and block for its reply (thread-safe).

        Concurrent callers interleave on the socket when the peer speaks
        protocol 2; against a v1 peer they queue per *request* (still finer
        than queueing per whole dispatch).

        ``timeout`` bounds the wait for *this* reply: when it elapses the
        request's pending entry is withdrawn and :class:`DeadlineExceeded`
        is raised, so a hung worker surfaces as a retryable transport
        failure instead of blocking the caller forever.  A reply that
        arrives after its deadline (or a duplicate reply) finds no pending
        entry and is discarded — first reply wins, by request id.
        """
        if not self.multiplexed:
            with self._v1_lock:
                # _v1_lock only serializes the request/reply stream; the
                # broken flag is owned by _lock so v1 callers and the v2
                # reader/_fail path agree on it.
                with self._lock:
                    if self._broken is not None:
                        raise ConnectionError(str(self._broken))
                try:
                    self._sock.settimeout(timeout)
                    send_msg(self._sock, msg)
                    reply = recv_msg(self._sock)
                except TimeoutError as exc:
                    # The v1 stream is now desynced (a late reply would be
                    # matched to the *next* request), so the connection is
                    # done for — mark it broken before surfacing.
                    with self._lock:
                        if self._broken is None:
                            self._broken = exc
                    raise DeadlineExceeded(
                        f"{self.addr[0]}:{self.addr[1]}: no reply within "
                        f"{timeout:g}s (worker hung?)") from exc
                finally:
                    try:
                        self._sock.settimeout(None)
                    except OSError:
                        pass
                if reply is None:
                    raise ConnectionError("connection closed")
                return reply
        rid = next(self._ids)
        queue: SimpleQueue = SimpleQueue()
        with self._lock:
            if self._broken is not None:
                raise ConnectionError(str(self._broken))
            self._pending[rid] = queue
        try:
            with self._send_lock:
                send_msg(self._sock, {**msg, "id": rid})
        except BaseException:
            with self._lock:
                self._pending.pop(rid, None)
            raise
        try:
            reply = queue.get(timeout=timeout)
        except Empty:
            with self._lock:
                self._pending.pop(rid, None)
            raise DeadlineExceeded(
                f"{self.addr[0]}:{self.addr[1]}: no reply to request {rid} "
                f"within {timeout:g}s (worker hung?)") from None
        if isinstance(reply, Exception):
            raise ConnectionError(str(reply)) from reply
        return reply

    def _read_loop(self) -> None:
        try:
            while True:
                reply = recv_msg(self._sock)
                if reply is None:
                    raise ConnectionError("connection closed")
                rid = reply.get("id")
                if rid is None:
                    # A v2 peer must echo ids; an id-less frame here means
                    # the peer is broken or the stream is corrupt.
                    raise ConnectionError(
                        "protocol violation: reply without request id on a "
                        "multiplexed connection")
                with self._lock:
                    queue = self._pending.pop(rid, None)
                if queue is not None:
                    queue.put(reply)
        except Exception as exc:
            self._fail(exc)

    def _fail(self, exc: Exception) -> None:
        with self._lock:
            if self._broken is None:
                self._broken = exc
            pending, self._pending = self._pending, {}
        for queue in pending.values():
            queue.put(exc)

    def close(self) -> None:
        """Shut the socket down; every pending request raises promptly."""
        try:
            # Unblock any thread parked in recv on this socket before
            # releasing the fd — close() alone can leave a concurrent
            # reader waiting on a kernel buffer that never fills.
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._fail(ConnectionError("connection closed"))

    def __repr__(self) -> str:
        mode = "mux" if self.multiplexed else "v1"
        with self._lock:
            n_pending = len(self._pending)
        return (f"MultiplexedConnection({self.addr[0]}:{self.addr[1]}, {mode}, "
                f"pending={n_pending})")


# ----------------------------------------------------------------------
# worker server (one shard)
# ----------------------------------------------------------------------
class EvalWorkerServer:
    """One evaluation shard: a TCP server wrapping a serial :class:`EvalEngine`.

    Problems are installed once per server (``put_problem``) and referenced
    by their content token afterwards, so steady-state traffic is just design
    vectors and performance rows.  Evaluations are serialized by a lock (a
    worker *is* one serial engine) but protocol-2 requests are *accepted*
    concurrently: an id-carrying request is answered whenever its handler
    finishes, so control ops (``hello``/``stats``) and queued chunks from
    other tenants never wait behind a long evaluation's wire round-trip.
    Id-less requests keep the strict version-1 request/reply order.

    With ``cache_dir`` the worker's engine gets its own persistent disk
    tier, so a restarted shard answers repeated designs with zero
    simulations.
    """

    #: installed problems kept per worker (LRU); coordinators re-ship on a
    #: ``need_problem`` reply, so eviction is safe for long-lived shards.
    MAX_PROBLEMS = 32

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 cache_size: int = 100_000, cache_dir=None):
        from .engine import EvalEngine, _spice_counters
        _spice_counters()  # preload the simulator before "listening" prints,
        #                    so the first eval doesn't pay the import
        self._engine = EvalEngine("serial", cache_size=cache_size,
                                  cache_dir=cache_dir)
        # guarded by: _problems_lock
        self._problems: "OrderedDict[str, object]" = OrderedDict()
        self._problems_lock = threading.Lock()
        self._eval_lock = threading.Lock()
        self._shutdown = threading.Event()
        self._started = time.monotonic()
        self._listener = socket.create_server((host, port))
        self.host, self.port = self._listener.getsockname()[:2]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Accept connections until :meth:`close` (or a ``shutdown`` op)."""
        self._listener.settimeout(0.2)
        while not self._shutdown.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(target=self._serve_connection, args=(conn,),
                             daemon=True).start()
        try:
            self._listener.close()
        except OSError:
            pass

    def close(self) -> None:
        self._shutdown.set()
        try:
            self._listener.close()
        except OSError:
            pass

    # -- per-connection loop ----------------------------------------------
    def _serve_connection(self, conn: socket.socket) -> None:
        write_lock = threading.Lock()  # concurrent repliers share the socket
        with conn:
            while not self._shutdown.is_set():
                try:
                    msg = recv_msg(conn)
                except (ConnectionError, OSError, ValueError):
                    return
                if msg is None:
                    return
                rid = msg.get("id")
                if rid is None or msg.get("op") == "shutdown":
                    # v1 semantics: handle inline, reply in order.  shutdown
                    # is always inline so the final reply wins the race with
                    # the listener teardown.
                    if not self._reply(conn, write_lock, msg, rid):
                        return
                    if msg.get("op") == "shutdown":
                        self.close()
                        return
                else:
                    threading.Thread(target=self._reply,
                                     args=(conn, write_lock, msg, rid),
                                     daemon=True).start()

    def _reply(self, conn, write_lock, msg: dict, rid) -> bool:
        try:
            reply = self._handle(msg)
        except Exception as exc:  # a bad request must not kill the shard
            reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        if rid is not None:
            reply["id"] = rid
        try:
            with write_lock:
                send_msg(conn, reply)
        except OSError:
            return False
        return True

    def _handle(self, msg: dict) -> dict:
        op = msg.get("op")
        if op == "hello":
            with self._problems_lock:
                n_problems = len(self._problems)
            return {"ok": True, "protocol": PROTOCOL_VERSION, "pid": os.getpid(),
                    "problems": n_problems}
        if op == "put_problem":
            token = msg["token"]
            with self._problems_lock:
                if token not in self._problems:
                    self._problems[token] = pickle.loads(
                        base64.b64decode(msg["blob"]))
                self._problems.move_to_end(token)
                while len(self._problems) > self.MAX_PROBLEMS:
                    self._problems.popitem(last=False)
            return {"ok": True}
        if op == "eval":
            return self._eval(msg)
        if op == "stats":
            return self._stats()
        if op == "shutdown":
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _eval(self, msg: dict) -> dict:
        with self._problems_lock:
            problem = self._problems.get(msg["token"])
            if problem is not None:
                self._problems.move_to_end(msg["token"])
        if problem is None:
            return {"ok": False, "need_problem": True,
                    "error": "unknown problem token (send put_problem first)"}
        from .engine import _spice_counters
        X = np.asarray(msg["X"], dtype=np.float64)
        with self._eval_lock:
            profile = _spice_counters()
            before = profile.snapshot() if profile is not None else None
            # counters_snapshot() reads under the engine's _state_lock; a
            # bare self._engine.n_sim_calls would race dispatch threads
            # (cross-object access RP02 cannot see — the runtime sanitizer
            # flagged it).
            sims_before = self._engine.counters_snapshot()["n_sim_calls"]
            F = self._engine.evaluate_batch(problem, X)
            counters = profile.delta(before) if profile is not None else {}
            n_sims = (self._engine.counters_snapshot()["n_sim_calls"]
                      - sims_before)
        return {"ok": True, "F": F.tolist(),
                "counters": {k: v for k, v in counters.items() if v},
                "n_sims": n_sims}

    def _stats(self) -> dict:
        counters = self._engine.counters_snapshot()
        with self._problems_lock:
            n_problems = len(self._problems)
        return {"ok": True, "pid": os.getpid(),
                "n_sims": counters["n_sim_calls"],
                "cache_hits": counters["n_cache_hits"],
                "disk_hits": counters["n_disk_hits"],
                "cache_entries": counters["cache_entries"],
                "cache_dir": self._engine.cache_dir,
                "problems": n_problems,
                "uptime_s": round(time.monotonic() - self._started, 3)}


# ----------------------------------------------------------------------
# remote (multi-host) coordinator
# ----------------------------------------------------------------------
class RemoteDispatcher:
    """Coordinator for the ``"remote"`` backend.

    Keeps one persistent :class:`MultiplexedConnection` per host, ships each
    problem at most once per connection (re-shipping on a ``need_problem``
    reply, e.g. after a worker restart or LRU eviction), and feeds
    work-stealing chunks to hosts as they finish.  Overlapping
    :meth:`dispatch` calls — the engine's pipelined ``submit()`` batches —
    interleave their chunks on the shared per-host connections instead of
    queueing behind one another (against a protocol-1 worker, requests
    serialize per chunk, which is still finer than the old
    dispatch-at-a-time lock).  Failures are told apart: a *transport* error
    drops the host and re-queues its chunk for the survivors, while a
    worker's *rejection* of a well-delivered request (the evaluation itself
    raised) aborts the dispatch immediately — retrying a deterministic
    failure on another shard would just fail there too.

    Failover is *bounded*: a chunk is re-queued at most
    ``max_chunk_requeues`` times (default: twice per configured host), so
    the death of the final live host — or a chunk that kills every shard
    it lands on — surfaces as a prompt :class:`ServiceError` carrying the
    per-host failure trail instead of a requeue spin or an opaque hang.

    ``chunk_timeout`` (seconds per design) arms a per-chunk deadline: a
    chunk of ``n`` designs must be answered within ``chunk_timeout * n``
    seconds or its host is treated as hung — a retryable transport failure
    under the same bounded budget.  ``degraded="local"`` opts into
    graceful degradation: when every host has been exhausted, the missing
    rows are evaluated in-process (logged, counted in ``n_degraded``)
    instead of raising, so a fleet outage stalls a run rather than killing
    it.  Both default off to preserve exact legacy behaviour.
    """

    def __init__(self, hosts, *, connect_timeout: float = 10.0,
                 max_chunk_requeues: int | None = None,
                 chunk_timeout: float | None = None,
                 degraded: str | None = None):
        self.addresses = [parse_host(h) for h in hosts]
        if not self.addresses:
            raise ValueError("remote dispatch needs at least one host")
        if degraded not in (None, "local"):
            raise ValueError(f"degraded must be None or 'local', got {degraded!r}")
        self.connect_timeout = float(connect_timeout)
        self.chunk_timeout = (None if chunk_timeout is None
                              else float(chunk_timeout))
        self.degraded = degraded
        self.n_degraded = 0  # local-fallback answers; guarded by: _lock
        self.max_chunk_requeues = (2 * len(self.addresses)
                                   if max_chunk_requeues is None
                                   else int(max_chunk_requeues))
        self._conns: dict[tuple[str, int], MultiplexedConnection] = {}  # guarded by: _lock
        self._conn_locks: dict[tuple[str, int], threading.Lock] = {}    # guarded by: _lock
        self._shipped: dict[tuple[str, int], set[str]] = {}             # guarded by: _lock
        self._closed = False                                            # guarded by: _lock
        self._lock = threading.Lock()

    # -- connection management --------------------------------------------
    def _connection(self, addr: tuple[str, int]) -> MultiplexedConnection:
        with self._lock:
            if self._closed:
                raise ServiceError("remote dispatcher is closed")
            conn = self._conns.get(addr)
            if conn is not None:
                return conn
            setup = self._conn_locks.setdefault(addr, threading.Lock())
        # Per-address setup lock: concurrent dispatches agree on one
        # connection per host without serializing *different* hosts'
        # (possibly slow) connect attempts behind each other.
        with setup:
            with self._lock:
                conn = self._conns.get(addr)
                if conn is not None:
                    return conn
            conn = MultiplexedConnection(addr,
                                         connect_timeout=self.connect_timeout)
            with self._lock:
                if self._closed:
                    conn.close()
                    raise ServiceError("remote dispatcher is closed")
                self._conns[addr] = conn
                self._shipped.setdefault(addr, set())
            return conn

    def _drop_connection(self, addr: tuple[str, int]) -> None:
        with self._lock:
            conn = self._conns.pop(addr, None)
            self._shipped.pop(addr, None)
        if conn is not None:
            conn.close()

    def close(self) -> None:
        """Drop every connection; in-flight dispatches fail with
        :class:`ServiceError` instead of waiting on dead sockets."""
        with self._lock:
            self._closed = True
            addrs = list(self._conns)
        for addr in addrs:
            self._drop_connection(addr)

    # -- problem shipping --------------------------------------------------
    @staticmethod
    def _encode_problem(problem) -> str:
        try:
            return base64.b64encode(
                pickle.dumps(problem, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")
        except Exception as exc:
            raise TypeError(
                f"remote backend requires a picklable problem "
                f"({type(problem).__name__} failed to pickle: {exc})") from exc

    class _EvalRejected(Exception):
        """The shard is healthy but refused the request itself."""

    def _control_timeout(self) -> float | None:
        """Deadline for small control frames (``put_problem``), armed only
        when eval deadlines are on — shipping is quick relative to evals."""
        if self.chunk_timeout is None:
            return None
        return max(self.connect_timeout, self.chunk_timeout)

    def _ship_problem(self, conn, addr, token_hex: str, blob: str) -> None:
        reply = conn.request({"op": "put_problem", "token": token_hex,
                              "blob": blob}, timeout=self._control_timeout())
        if not reply.get("ok"):
            # e.g. the problem's class isn't importable on the worker host —
            # deterministic, so don't retry it against other shards.
            raise RemoteDispatcher._EvalRejected(
                f"put_problem rejected: {reply.get('error', reply)}")
        with self._lock:
            if addr in self._shipped:
                self._shipped[addr].add(token_hex)

    def _is_shipped(self, addr, token_hex: str) -> bool:
        with self._lock:
            return token_hex in self._shipped.get(addr, ())

    # -- dispatch ----------------------------------------------------------
    def dispatch(self, problem, token: bytes,
                 X: np.ndarray) -> tuple[np.ndarray, dict[str, float], int]:
        """Evaluate ``X`` across the hosts.

        Returns ``(rows, counters, n_worker_sims)`` where ``counters`` are
        the summed worker-side hot-path deltas and ``n_worker_sims`` the
        total simulations the shards actually ran.  Thread-safe: overlapping
        calls interleave chunks on the shared per-host connections.
        """
        token_hex = token.hex()
        # Encode the problem only when some host still needs it — the
        # steady state (every connection warm, problem shipped) pays no
        # per-dispatch pickling.
        with self._lock:
            need_ship = any(addr not in self._conns
                            or token_hex not in self._shipped.get(addr, ())
                            for addr in self.addresses)
        blob = self._encode_problem(problem) if need_ship else None

        out: list = [None] * len(X)
        # Each pending entry carries its requeue count; a chunk that has
        # already burned through ``max_chunk_requeues`` hosts is abandoned
        # (fatal) rather than re-queued forever while hosts keep dying.
        pending = deque((start, stop, 0)
                        for start, stop in _chunk_ranges(len(X), len(self.addresses)))
        counters_total: dict[str, float] = {}
        sims_total = 0
        errors: list[str] = []
        fatal: list[str] = []
        state_lock = threading.Lock()  # this dispatch's queue/results only

        def eval_chunk(conn, addr, start: int, stop: int) -> dict:
            request = {"op": "eval", "token": token_hex,
                       "X": X[start:stop].tolist()}
            deadline = (None if self.chunk_timeout is None
                        else self.chunk_timeout * max(1, stop - start))
            for attempt in (0, 1):
                reply = conn.request(request, timeout=deadline)
                if reply.get("ok"):
                    return reply
                if reply.get("need_problem") and attempt == 0:
                    # Worker restarted or LRU-evicted the problem: re-ship
                    # over the live connection and retry the chunk once.
                    with self._lock:
                        if addr in self._shipped:
                            self._shipped[addr].discard(token_hex)
                    self._ship_problem(conn, addr, token_hex,
                                       blob or self._encode_problem(problem))
                    continue
                raise RemoteDispatcher._EvalRejected(
                    reply.get("error", "request rejected"))
            raise ConnectionError("unreachable")  # pragma: no cover

        def run_host(addr: tuple[str, int]) -> None:
            nonlocal sims_total
            label = f"{addr[0]}:{addr[1]}"
            try:
                conn = self._connection(addr)
                if not self._is_shipped(addr, token_hex):
                    self._ship_problem(conn, addr, token_hex,
                                       blob or self._encode_problem(problem))
            except RemoteDispatcher._EvalRejected as exc:
                with state_lock:
                    fatal.append(f"{label}: {exc}")
                return
            except Exception as exc:
                with state_lock:
                    errors.append(f"{label}: {exc}")
                self._drop_connection(addr)
                return
            while True:
                with state_lock:
                    if fatal or not pending:
                        return
                    start, stop, requeues = pending.popleft()
                try:
                    reply = eval_chunk(conn, addr, start, stop)
                except RemoteDispatcher._EvalRejected as exc:
                    # Deterministic failure: another shard would reject it
                    # too.  Abort the dispatch, keep the connection.
                    with state_lock:
                        fatal.append(f"{label}: {exc}")
                    return
                except Exception as exc:
                    with state_lock:
                        errors.append(f"{label}: {exc}")
                        if requeues < self.max_chunk_requeues:
                            pending.append((start, stop, requeues + 1))
                        else:
                            fatal.append(
                                f"chunk [{start}:{stop}] abandoned after "
                                f"{requeues} failovers")
                    self._drop_connection(addr)
                    return
                rows = reply["F"]
                out[start:stop] = [np.asarray(r, dtype=np.float64) for r in rows]
                with state_lock:
                    for name, value in reply.get("counters", {}).items():
                        counters_total[name] = counters_total.get(name, 0.0) + value
                    sims_total += int(reply.get("n_sims", len(rows)))

        # Host threads exit once the queue drains — but a chunk held by a
        # host that *later* times out (or dies) is re-queued after the
        # others already left.  Re-fan-out the *surviving* connections (a
        # host dropped mid-dispatch stays dropped — the bounded-failover
        # contract) until the queue is truly empty, bounded by the requeue
        # budget, so a hung straggler at the tail of a dispatch fails over
        # instead of stranding its rows.
        candidates = list(self.addresses)
        for _round in range(1 + self.max_chunk_requeues):
            threads = [threading.Thread(target=run_host, args=(addr,),
                                        daemon=True)
                       for addr in candidates]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with state_lock:
                if fatal or not pending:
                    break
            with self._lock:
                candidates = [addr for addr in self.addresses
                              if addr in self._conns]
            if not candidates:
                break
        if fatal:
            raise ServiceError("remote evaluation rejected: " + "; ".join(fatal))
        if any(row is None for row in out):
            # Every thread has exited (the last live host died mid-chunk,
            # or the dispatcher was closed) with rows still missing.
            detail = "; ".join(errors) if errors else "dispatcher closed"
            with self._lock:
                closed = self._closed
            if self.degraded == "local" and not closed:
                # Graceful degradation: finish the batch in-process rather
                # than failing the Study.  Rows are the same deterministic
                # problem.evaluate answers a worker's serial engine would
                # have produced, so histories stay bit-identical.
                missing = [i for i, row in enumerate(out) if row is None]
                _log.warning(
                    "remote evaluation degraded to local for %d design(s) "
                    "(no live workers): %s", len(missing), detail)
                for i in missing:
                    out[i] = np.asarray(problem.evaluate(X[i]),
                                        dtype=np.float64)
                sims_total += len(missing)
                # Not state_lock: concurrent dispatches share this counter,
                # so it lives under the dispatcher-wide lock.
                with self._lock:
                    self.n_degraded += len(missing)
            else:
                raise ServiceError(
                    "remote evaluation failed on all hosts: " + detail)
        return np.vstack(out), counters_total, sims_total


# ----------------------------------------------------------------------
# worker entrypoint: python -m repro.core.service
# ----------------------------------------------------------------------
def spawn_local_worker(*, cache_size: int | None = None, cache_dir=None,
                       register: str | None = None,
                       heartbeat: float | None = None,
                       startup_timeout: float = 60.0):
    """Start a worker server subprocess on a free local port.

    Returns ``(Popen, "host:port")`` once the worker prints its readiness
    banner.  Interpreter startup noise (NumPy/deprecation warnings on the
    merged stderr) is skipped — the banner is searched for line by line
    until ``startup_timeout`` seconds, instead of killing a healthy worker
    whose *first* output line happens to be a warning.  Convenience for
    tests/benchmarks and quick local shards; for a long-lived deployment
    run ``python -m repro.core.service`` yourself.
    """
    import subprocess
    import sys
    from pathlib import Path
    src = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [sys.executable, "-m", "repro.core.service", "--port", "0"]
    if cache_size is not None:
        cmd += ["--cache-size", str(cache_size)]
    if cache_dir is not None:
        cmd += ["--cache-dir", os.fspath(cache_dir)]
    if register:
        cmd += ["--register", register]
    if heartbeat is not None:
        cmd += ["--heartbeat", str(heartbeat)]
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, env=env)
    fd = proc.stdout.fileno()
    deadline = time.monotonic() + float(startup_timeout)
    buf = b""
    noise: list[str] = []
    while True:
        while b"\n" in buf:
            raw, _, buf = buf.partition(b"\n")
            line = raw.decode("utf-8", "replace")
            if "listening on" in line:
                return proc, line.rsplit("listening on ", 1)[1].split()[0]
            noise.append(line)  # warnings/deprecations before the banner
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            proc.kill()
            raise RuntimeError(
                f"worker failed to start within {startup_timeout:g}s; "
                f"output so far: {noise[-5:]!r}")
        ready, _, _ = select.select([fd], [], [], min(remaining, 0.5))
        if not ready:
            if proc.poll() is not None:
                raise RuntimeError(
                    f"worker exited with {proc.returncode} before its "
                    f"readiness banner; output: {noise[-5:]!r}")
            continue
        chunk = os.read(fd, 65536)
        if not chunk:
            proc.wait(timeout=10)
            raise RuntimeError(
                f"worker exited with {proc.returncode} before its "
                f"readiness banner; output: {noise[-5:]!r}")
        buf += chunk


def _register_loop(registry: str, address: str, interval: float,
                   stop: threading.Event) -> None:
    """Keep a registration + heartbeat session alive against a registry.

    Reconnects (with the registration automatically re-sent) after any
    transport error, so a registry restart just re-discovers the worker on
    a later beat.  Consecutive failures back off exponentially (capped,
    deterministically jittered per worker address) instead of hammering a
    down registry at a fixed cadence — and the loop itself never dies; it
    keeps trying until the worker shuts down.
    """
    addr = parse_host(registry)
    failures = 0
    while not stop.is_set():
        try:
            with socket.create_connection(addr, timeout=5.0) as conn:
                conn.settimeout(10.0)
                send_msg(conn, {"op": "register", "address": address})
                if not (recv_msg(conn) or {}).get("ok"):
                    raise ConnectionError("registration rejected")
                failures = 0
                while not stop.wait(interval):
                    send_msg(conn, {"op": "heartbeat", "address": address})
                    reply = recv_msg(conn)
                    if reply is None or not reply.get("ok"):
                        raise ConnectionError("heartbeat rejected")
                if stop.is_set():
                    send_msg(conn, {"op": "deregister", "address": address})
                    recv_msg(conn)
                    return
        except (OSError, ConnectionError, ValueError):
            delay = backoff_delay(failures, base=min(interval, 0.5),
                                  cap=15.0, key=address)
            failures += 1
            stop.wait(delay)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.core.service",
        description="Start one evaluation-service worker (a serial EvalEngine "
                    "behind the length-prefixed JSON socket protocol).")
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 picks a free port, default)")
    parser.add_argument("--cache-size", type=int, default=100_000,
                        help="worker-local evaluation cache entries")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent disk cache directory for this "
                             "worker's engine (default: REPRO_CACHE_DIR)")
    parser.add_argument("--register", metavar="HOST:PORT", default=None,
                        help="announce this worker to a fleet registry and "
                             "keep a heartbeat alive (see repro.core.fleet)")
    parser.add_argument("--heartbeat", type=float, default=1.0,
                        help="seconds between registry heartbeats")
    parser.add_argument("--advertise", default=None,
                        help="address to register under (default: the bound "
                             "host:port — override behind NAT)")
    args = parser.parse_args(argv)

    server = EvalWorkerServer(args.host, args.port, cache_size=args.cache_size,
                              cache_dir=args.cache_dir)
    print(f"repro-eval-worker listening on {server.address} (pid {os.getpid()})",
          flush=True)
    stop_heartbeat = threading.Event()
    if args.register:
        threading.Thread(target=_register_loop,
                         args=(args.register, args.advertise or server.address,
                               max(0.05, args.heartbeat), stop_heartbeat),
                         daemon=True).start()
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive convenience
        server.close()
    finally:
        stop_heartbeat.set()


if __name__ == "__main__":
    main()
